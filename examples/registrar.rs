//! A registrar's office: authorization and data abstraction (paper §4.2.3).
//!
//! The paper's point: "one could choose to grant access to a given schema
//! type only via its EXCESS functions and procedures, effectively making
//! the schema type an abstract data type in its own right" — the System R
//! / IDM authorization machinery doubles as an encapsulation mechanism.
//!
//! Demonstrates: users, groups, the `all_users` group, grant/revoke,
//! procedures with `where`-bound parameters invoked per satisfying
//! binding, and function-only access to protected data.
//!
//! Run with: `cargo run --example registrar`

use extra_excess::{model::AdtRegistry, Database, DbError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory();
    let adts = AdtRegistry::with_builtins();

    // The registrar (admin) sets up the schema and the protection scheme.
    let mut registrar = db.session();
    registrar.run(
        r#"
        define type Student (
            sname: varchar,
            gpa: float8,
            credits: int4,
            probation: boolean
        );
        define type Course (
            title: varchar,
            units: int4,
            roster: { ref Student }
        );
        create { own ref Student } Students;
        create { own ref Course } Courses;

        append to Students (sname = "pat", gpa = 3.7, credits = 90, probation = false);
        append to Students (sname = "kim", gpa = 1.8, credits = 30, probation = false);
        append to Students (sname = "lee", gpa = 2.9, credits = 60, probation = false);

        append to Courses (title = "databases", units = 4);
        append to Courses (title = "compilers", units = 4);
    "#,
    )?;
    registrar.run(
        r#"
        range of S is Students;
        range of C is Courses;
        append to C.roster S where C.title = "databases" and S.gpa > 2.0;
        append to C.roster S where C.title = "compilers" and S.sname = "pat";
    "#,
    )?;

    // Users and groups.
    registrar.run(
        r#"
        create user dean;
        create user advisor;
        create group faculty;
        add user advisor to group faculty;
        grant read on Courses to all_users;
        grant read on Students to dean
    "#,
    )?;

    // The dean sees raw records.
    let mut dean = db.session_as("dean");
    let r = dean.query("retrieve (S.sname, S.gpa) from S in Students order by S.gpa desc")?;
    println!("dean's view (raw gpas):\n{}", r.render(&adts));

    // The advisor cannot read Students directly...
    let mut advisor = db.session_as("advisor");
    match advisor.query("retrieve (S.gpa) from S in Students") {
        Err(DbError::Auth(msg)) => println!("advisor blocked as expected: {msg}\n"),
        other => panic!("expected an authorization error, got {other:?}"),
    }

    // ...but the registrar exposes exactly one derived fact through a
    // function and a maintenance action through a procedure.
    registrar.run(
        r#"
        define function InGoodStanding (st: Student) returns boolean
            as retrieve (st.gpa >= 2.0);
        define procedure FlagProbation (threshold: float8) as
            range of S is Students;
            replace S (probation = true) where S.gpa < threshold
        end;
        grant execute on InGoodStanding to faculty;
        grant execute on FlagProbation to faculty;
        grant read on Students to faculty
    "#,
    )?;
    // NB: faculty got read on Students so the function's *host query* can
    // range over it; the interesting grant is execute on FlagProbation,
    // whose body writes data the advisor could never write directly.

    let r = advisor.query(
        "retrieve (S.sname, ok = S.InGoodStanding()) from S in Students order by S.sname asc",
    )?;
    println!(
        "advisor's view (derived standing only):\n{}",
        r.render(&adts)
    );

    // The advisor runs the maintenance procedure (definer's rights).
    advisor.run("execute FlagProbation(2.0)")?;
    let r = dean.query("retrieve (S.sname) from S in Students where S.probation = true")?;
    println!(
        "on probation after the advisor's sweep:\n{}",
        r.render(&adts)
    );

    // Procedures bind parameters per satisfying where-binding: one call
    // per course, threshold scaled by units.
    registrar.run(
        r#"
        define procedure NoteHeavyCourse (t: varchar) as
            range of C2 is Courses;
            replace C2 (title = t) where C2.title = t
        end
    "#,
    )?;
    registrar.run(
        "range of C is Courses; \
         execute NoteHeavyCourse(C.title) where C.units >= 4",
    )?;
    println!("NoteHeavyCourse executed once per 4-unit course (2 bindings)");

    // Revocation is immediate.
    registrar.run("revoke read on Students from faculty")?;
    match advisor.query("retrieve (S.sname) from S in Students") {
        Err(DbError::Auth(_)) => println!("advisor locked out again after revoke"),
        other => panic!("expected an authorization error, got {other:?}"),
    }

    Ok(())
}
