//! An interactive EXCESS shell.
//!
//! ```text
//! cargo run --example repl
//! excess> define type Person (name: varchar, age: int4)
//! type Person defined
//! excess> create { own ref Person } People key (age)
//! People created
//! excess> append to People (name = "ann", age = 30)
//! appended 1 to People
//! excess> retrieve (P.name) from P in People where P.age > 20
//! name = "ann"
//! ```
//!
//! Commands: `\q` quit, `\explain <query>` show the physical plan,
//! `\user <name>` switch user.

use std::io::{BufRead, Write};

use extra_excess::{model::AdtRegistry, Database, Observation, Response};

fn main() {
    let db = Database::in_memory();
    let mut session = db.session();
    let adts = AdtRegistry::with_builtins();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();

    println!("EXTRA/EXCESS shell — \\q to quit, \\explain <query> for plans");
    loop {
        print!("excess> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" {
            break;
        }
        if let Some(user) = line.strip_prefix("\\user ") {
            session = db.session_as(user.trim());
            println!("now acting as {}", session.user);
            continue;
        }
        if let Some(q) = line.strip_prefix("\\explain ") {
            match session.explain(q) {
                Ok(plan) => println!("{plan}"),
                Err(e) => eprintln!("error: {e}"),
            }
            continue;
        }
        match session.run(line) {
            Ok(responses) => {
                for r in responses {
                    print_response(r, &adts);
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Rows printed per flush: the shell drains the result through
/// `QueryResult::batches`, holding one engine-shaped batch at a time —
/// the same incremental path the wire-protocol server streams with.
const PRINT_BATCH_ROWS: usize = 256;

fn print_response(r: Response, adts: &AdtRegistry) {
    match r {
        Response::Done(msg) => println!("{msg}"),
        Response::Rows(rows) => {
            if rows.is_empty() {
                println!("(no rows)");
            } else {
                let mut out = std::io::stdout().lock();
                for batch in rows.batches(PRINT_BATCH_ROWS) {
                    for row in batch.into_rows() {
                        let mut line = String::new();
                        for (i, (c, v)) in rows.columns.iter().zip(row.iter()).enumerate() {
                            if i > 0 {
                                line.push_str(", ");
                            }
                            line.push_str(&format!("{c} = {}", v.render(adts)));
                        }
                        writeln!(out, "{line}").ok();
                    }
                    out.flush().ok();
                }
                drop(out);
                println!("({} rows)", rows.len());
            }
        }
        Response::Explained(e) => println!("{e}"),
        // `observe <stmt>`: the wrapped response, then what it cost.
        Response::Observed(Observation {
            response,
            elapsed_ns,
            counters,
        }) => {
            print_response(*response, adts);
            println!("elapsed: {:.3} ms", elapsed_ns as f64 / 1e6);
            for (name, delta) in counters {
                println!("{name}: +{delta}");
            }
        }
    }
}
