//! Engineering-design database: the application domain that motivated
//! EXODUS's extensibility (geometric data \[Kemp87\], design hierarchies,
//! and "queries such as those needed to compute design costs or to order
//! parts for assembling a design object" \[Ston87c\]).
//!
//! Demonstrates: the `Polygon` ADT with its registered `&&&` (overlaps)
//! operator, fixed-length arrays, `own ref` composition hierarchies with
//! cascade deletion, and cost-rollup aggregates.
//!
//! Run with: `cargo run --example engineering_design`

use extra_excess::{model::AdtRegistry, Database};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory();
    let mut s = db.session();
    let adts = AdtRegistry::with_builtins();

    // A design is composed of cells it exclusively owns (`own ref`:
    // deleting a design deletes its cells — ORION composite objects).
    // Cells reference a shared part library (`ref`).
    s.run(
        r#"
        define type Part (
            pname: varchar,
            unit_cost: float8,
            stock: int4
        );
        define type Cell (
            cname: varchar,
            outline: Polygon,
            part: ref Part,
            quantity: int4
        );
        define type Design (
            dname: varchar,
            revision: int4,
            cells: { own ref Cell },
            checkpoints: [4] varchar
        );
        create { own ref Part } Parts;
        create { own ref Design } Designs;
    "#,
    )?;

    s.run(
        r#"
        append to Parts (pname = "nand-gate", unit_cost = 0.12, stock = 5000);
        append to Parts (pname = "flip-flop", unit_cost = 0.45, stock = 1200);
        append to Parts (pname = "pad", unit_cost = 1.5, stock = 300);

        append to Designs (dname = "alu", revision = 3);
        append to Designs (dname = "uart", revision = 1);
    "#,
    )?;

    // Place cells: geometry via the Polygon ADT.
    s.run(r#"
        range of D is Designs;
        range of P is Parts;
        append to D.cells (cname = "alu-core", outline = Polygon("((0 0) (40 0) (40 30) (0 30))"), quantity = 64)
            where D.dname = "alu";
        append to D.cells (cname = "alu-pads", outline = Polygon("((35 0) (60 0) (60 30) (35 30))"), quantity = 8)
            where D.dname = "alu";
        append to D.cells (cname = "uart-core", outline = Polygon("((0 0) (20 0) (20 10) (0 10))"), quantity = 12)
            where D.dname = "uart";
    "#)?;
    // Wire cells to parts.
    s.run(
        r#"
        range of D is Designs;
        range of C is D.cells;
        range of P is Parts;
        replace C (part = P) where C.cname = "alu-core" and P.pname = "nand-gate";
        replace C (part = P) where C.cname = "alu-pads" and P.pname = "pad";
        replace C (part = P) where C.cname = "uart-core" and P.pname = "flip-flop";
    "#,
    )?;

    // --- Geometric queries through ADT functions and the &&& operator ----
    let r = s.query(
        "retrieve (C.cname, area = Area(C.outline)) from C in Designs.cells \
         order by Area(C.outline) desc",
    )?;
    println!(
        "cell areas (shoelace formula inside the ADT):\n{}",
        r.render(&adts)
    );

    // Design-rule check: cells of the *same* design that overlap. C and C2
    // share the implicit Designs member (the paper's shared-parent
    // semantics for nested-set paths), so pairs never cross designs.
    let r = s.query(
        "retrieve (a = C.cname, b = C2.cname) \
         from C in Designs.cells, C2 in Designs.cells \
         where C.outline &&& C2.outline and C.cname < C2.cname",
    )?;
    println!(
        "DRC violations — overlapping cells (registered &&& operator):\n{}",
        r.render(&adts)
    );

    // --- The design-cost query [Ston87c] -----------------------------------
    let r = s.query(
        "retrieve (D.dname, cost = sum(C.quantity * C.part.unit_cost over C where C in D.cells)) \
         from D in Designs order by D.dname asc",
    )?;
    println!("design cost rollup:\n{}", r.render(&adts));

    // --- Ordering parts: which parts are under-stocked for assembly? -------
    let r = s.query(
        "retrieve (P.pname, needed = sum(C.quantity over C where C.part is P), stock = P.stock) \
         from P in Parts",
    )?;
    println!("per-part demand vs stock:\n{}", r.render(&adts));

    // --- Revision bookkeeping through arrays --------------------------------
    s.run(
        r#"
        range of D is Designs;
        replace D (revision = D.revision + 1) where D.dname = "alu"
    "#,
    )?;
    let r = s.query(r#"retrieve (D.revision) from D in Designs where D.dname = "alu""#)?;
    println!("alu revision after bump:\n{}", r.render(&adts));

    // --- Composite deletion: a design takes its cells with it ---------------
    let before = s.query("retrieve (count(C over C)) from C in Designs.cells")?;
    s.run(r#"range of D is Designs; delete D where D.dname = "uart""#)?;
    let after = s.query("retrieve (count(C over C)) from C in Designs.cells")?;
    println!(
        "cells before deleting uart: {}, after: {} (own-ref cascade)",
        before.rows[0][0], after.rows[0][0]
    );
    // The shared part library is untouched (parts were `ref`, not owned).
    let parts = s.query("retrieve (count(P over P)) from P in Parts")?;
    println!("parts remaining: {}", parts.rows[0][0]);

    Ok(())
}
