//! Write-ahead logging and crash recovery, end to end.
//!
//! Part 1 opens a file-backed database through the builder, runs logged
//! statements, and checkpoints. Part 2 drops to the storage layer and
//! simulates a crash — committed units survive a reopen with *no* flush,
//! restored purely from the log's after-images.
//!
//! ```console
//! cargo run --example durability
//! ```

use extra_excess::storage::{StorageManager, Unit};
use extra_excess::{Database, Durability};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("excess-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // ---- Part 1: the database surface --------------------------------
    let db = Database::builder()
        .path(dir.join("univ.db"))
        .durability(Durability::Fsync)
        .build()?;
    let report = db.recovery().expect("file-backed open runs recovery");
    println!("opened univ.db: clean={} ({report:?})", report.was_clean());

    let mut session = db.session();
    session.run(
        r#"
        define type Person (name: varchar, age: int4);
        create { own ref Person } People;
        append to People (name = "ann", age = 40);
        append to People (name = "bob", age = 31);
    "#,
    )?;
    let rows = session.query("retrieve (P.name) from P in People order by P.name asc")?;
    println!("people: {:?}", rows.rows);
    // Each statement above was one crash-atomic logged unit; checkpoint
    // bounds recovery work and prunes the log.
    db.checkpoint()?;
    println!("checkpointed; durability = {:?}", db.durability());
    drop(db);

    // ---- Part 2: crash simulation at the storage layer ---------------
    let vol = dir.join("crash.db");
    let (sm, _) = StorageManager::open(&vol, 64, Durability::Fsync)?;
    let unit: Unit = sm.begin_unit()?;
    let file = sm.create_file()?;
    unit.commit()?;
    for i in 0..5 {
        let unit = sm.begin_unit()?;
        sm.insert(file, format!("record-{i}").as_bytes())?;
        unit.commit()?;
    }
    // "Crash": drop the manager without flushing a single page. The
    // dirty pages die with the process; only the log has the data.
    drop(sm);

    let (sm, report) = StorageManager::open(&vol, 64, Durability::Fsync)?;
    println!(
        "recovered crash.db: {} records scanned, {} pages restored, torn tail = {}",
        report.records_scanned, report.pages_restored, report.torn_tail
    );
    let survived: Vec<String> = sm
        .scan(file)
        .map(|r| Ok::<_, Box<dyn std::error::Error>>(String::from_utf8(r?.1)?))
        .collect::<Result<_, _>>()?;
    println!("survived: {survived:?}");
    assert_eq!(survived.len(), 5, "all committed units must survive");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
