//! Client/server demo: boot an `exodus-server` in this process, then
//! talk to it over a real loopback socket through [`RemoteSession`] —
//! the same `Client` trait the in-process session implements, so the
//! workload code is transport-agnostic.
//!
//! ```text
//! cargo run --example remote
//! ```

use exodus_server::{AdmissionConfig, RemoteSession, Server, TcpTransport};
use extra_excess::{Client, Database};

fn main() {
    let db = Database::in_memory();
    let server = Server::spawn(
        db,
        TcpTransport::bind("127.0.0.1:0").unwrap(),
        AdmissionConfig::default(),
    )
    .unwrap();
    println!("serving EXOD/1 and /metrics on {}\n", server.addr());

    // `workload` only knows the Client trait; hand it a remote session.
    let mut session = RemoteSession::connect(server.addr(), "admin").unwrap();
    workload(&mut session);

    // Pipelining: queue many statements, then collect all results.
    for n in 0..5 {
        session
            .send(&format!(
                r#"append to People (name = "bulk{n}", age = {})"#,
                50 + n
            ))
            .unwrap();
    }
    let results = session.drain().unwrap();
    println!(
        "pipelined {} appends in one round trip burst",
        results.len()
    );

    let seniors = session
        .query("retrieve (P.name, P.age) from P in People where P.age >= 50")
        .unwrap();
    println!("{} seniors after the bulk load", seniors.rows.len());

    // Errors keep their stable codes across the wire (docs/ERRORS.md).
    let err = session
        .run("retrieve (P.salary) from P in People")
        .unwrap_err();
    println!(
        "bad query → code {} (retryable: {})",
        err.code(),
        err.is_retryable()
    );
}

/// A transport-agnostic workload: works identically on a local
/// `Session` or a `RemoteSession`.
fn workload(client: &mut impl Client) {
    client
        .run(
            r#"
            define type Person (name: varchar, age: int4);
            create { own ref Person } People;
            append to People (name = "ann", age = 30);
            append to People (name = "bob", age = 40);
        "#,
        )
        .unwrap();
    let rows = client
        .query("retrieve (P.name) from P in People where P.age > 35")
        .unwrap();
    println!("over-35s: {} row(s)", rows.rows.len());
    let plan = client
        .explain("retrieve (P.name) from P in People")
        .unwrap();
    println!("plan:\n{}", plan.plan);
}
