//! The observability surface on a durable workload: metrics snapshot,
//! Prometheus exposition, tracing spans, and the slow-query log.
//!
//! Opens an `Fsync` file-backed database with tracing on, runs a small
//! university workload, and prints what the engine saw: the top slow
//! queries (with their annotated plans) and the formatted metrics
//! snapshot — WAL, buffer pool, executor, and statement counters.
//!
//! ```console
//! cargo run --release --example observability
//! ```

use extra_excess::{Database, Durability, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("excess-observability-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    let db = Database::builder()
        .path(dir.join("univ.db"))
        .durability(Durability::Fsync)
        .trace(TraceConfig {
            // Log every statement so the example has something to show;
            // production would keep the 10 ms default.
            slow_query_threshold_ns: 0,
            ..TraceConfig::default()
        })
        .build()?;

    let mut session = db.session();
    session.run(
        r#"
        define type Person (name: varchar, age: int4, salary: float8);
        create { own ref Person } Employees;
    "#,
    )?;
    for i in 0..500 {
        session.run(&format!(
            r#"append to Employees (name = "emp{i}", age = {}, salary = {}.0)"#,
            22 + i % 40,
            30_000 + 117 * i
        ))?;
    }
    session.query("retrieve (E.name, E.salary) from E in Employees where E.salary > 85000.0")?;
    session.query(
        "retrieve (E.age, a = avg(E.salary over E by E.age)) from E in Employees where E.age < 30",
    )?;

    // `observe <stmt>` shows one statement's cost inline.
    let observed = session
        .run("observe retrieve (E.name) from E in Employees where E.age = 25")?
        .into_iter()
        .next()
        .and_then(|r| r.observation())
        .expect("observe returns an observation");
    println!("== observe retrieve ... where E.age = 25 ==\n{observed}");

    // The slow-query log, slowest first: with a zero threshold this is
    // simply "the most expensive statements", profiles attached.
    println!("== top slow queries ==");
    for q in db.slow_queries().iter().take(3) {
        println!("{:>10.3} ms  {}", q.elapsed_ns as f64 / 1e6, q.statement);
        if let Some(profile) = &q.payload {
            for line in format!("{profile}").lines() {
                println!("              {line}");
            }
        }
    }

    // What the tracer recorded for the last statements.
    let spans = db.trace_spans();
    println!("== last trace spans ({} recorded) ==", spans.len());
    for s in spans.iter().rev().take(8).rev() {
        let parent = s.parent.map_or(String::from("-"), |p| p.to_string());
        println!(
            "  #{:<4} parent {:<4} {:<10} {:>9} ns  {}",
            s.id,
            parent,
            s.name,
            s.elapsed_ns,
            s.detail.chars().take(48).collect::<String>()
        );
    }

    // The full registry: every layer's counters in one snapshot. The
    // same data encodes as JSON (`to_json`) and Prometheus exposition
    // (`to_prometheus`).
    let snap = db.metrics_snapshot().expect("metrics are on by default");
    println!("== metrics snapshot ==");
    for m in &snap.metrics {
        use extra_excess::obs::SampleValue;
        match &m.value {
            SampleValue::Counter(v) => println!("  {:<40} {v}", m.name),
            SampleValue::Gauge(v) => println!("  {:<40} {v}", m.name),
            SampleValue::Histogram { sum, count, .. } => {
                let mean = if *count > 0 { sum / count } else { 0 };
                println!("  {:<40} count={count} mean={mean}", m.name)
            }
        }
    }
    let wal_fsyncs = snap.counter("storage_wal_fsyncs_total").unwrap_or(0);
    let appends = snap.counter("storage_wal_appends_total").unwrap_or(0);
    println!("\n{appends} WAL appends reached the log in {wal_fsyncs} fsyncs (group commit).");

    drop(session);
    drop(db);
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
