//! Quickstart: the paper's university schema, end to end.
//!
//! Run with: `cargo run --example quickstart`

use extra_excess::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Construction-time configuration through the builder; worker_threads(1)
    // keeps execution on the calling thread (and bit-deterministic).
    let db = Database::builder().worker_threads(1).build()?;
    let mut session = db.session();

    // -- Figure 1: schema definition (EXTRA DDL) ---------------------------
    session.run(
        r#"
        define type Person (
            name: varchar,
            ssnum: int4,
            birthday: Date,
            kids: { own ref Person }
        );
        define type Department (dname: varchar, floor: int4, budget: float8);
        define type Employee inherits Person (
            salary: float8,
            dept: ref Department
        );
    "#,
    )?;
    println!("schema defined: Person, Department, Employee (inherits Person)");

    // -- Separation of type and instance -----------------------------------
    session.run(
        r#"
        create { own ref Department } Departments;
        create { own ref Employee } Employees;
        create Employee StarEmployee;
        create [10] ref Employee TopTen;
    "#,
    )?;

    // -- Populate -----------------------------------------------------------
    session.run(r#"
        append to Departments (dname = "toy", floor = 2, budget = 100000.0);
        append to Departments (dname = "shoe", floor = 1, budget = 50000.0);
        append to Employees (name = "ann", ssnum = 1, birthday = Date("8/29/1953"), salary = 45000.0);
        append to Employees (name = "bob", ssnum = 2, birthday = Date("1/2/1961"), salary = 52000.0);
        append to Employees (name = "cal", ssnum = 3, birthday = Date("7/4/1949"), salary = 38000.0);
        range of E is Employees;
        range of D is Departments;
        replace E (dept = D) where E.name = "ann" and D.dname = "toy";
        replace E (dept = D) where E.name = "bob" and D.dname = "toy";
        replace E (dept = D) where E.name = "cal" and D.dname = "shoe";
        append to E.kids (name = "annjr", ssnum = 11, birthday = Date("3/3/1980")) where E.name = "ann";
        append to E.kids (name = "bobjr", ssnum = 21, birthday = Date("4/4/1982")) where E.name = "bob";
    "#)?;
    println!("populated 2 departments, 3 employees, 2 kids\n");

    // -- Implicit joins through path expressions ---------------------------
    let adts = extra_model_registry();
    let r = session
        .query(r#"retrieve (E.name, E.salary) where E.dept.floor = 2 order by E.salary desc"#)?;
    println!("second-floor employees:\n{}", r.render(&adts));

    // -- The paper's nested-set query ---------------------------------------
    let r = session
        .query("retrieve (C.name) from C in Employees.kids where Employees.dept.floor = 2")?;
    println!("kids of second-floor employees:\n{}", r.render(&adts));

    // -- Aggregates with over ------------------------------------------------
    let r = session.query(
        r#"retrieve (D.dname, payroll = sum(E.salary over E where E.dept is D))
           from D in Departments order by D.dname asc"#,
    )?;
    println!("department payrolls:\n{}", r.render(&adts));

    // -- ADT values: dates compare chronologically ---------------------------
    let r =
        session.query(r#"retrieve (E.name, E.birthday) where E.birthday < Date("1/1/1960")"#)?;
    println!("born before 1960:\n{}", r.render(&adts));

    // -- Functions: derived attributes, inherited through the lattice --------
    session.run(
        "define function Monthly (e: Employee) returns float8 \
         as retrieve (e.salary / 12.0)",
    )?;
    let r = session.query(r#"retrieve (E.name, E.Monthly()) where E.name = "bob""#)?;
    println!("derived monthly salary:\n{}", r.render(&adts));

    // -- EXPLAIN: the optimizer at work ---------------------------------------
    session.run("define index emp_salary on Employees (salary)")?;
    let plan = session
        .explain("retrieve (E.name) where E.salary > 50000.0")?
        .plan;
    println!("plan for a selective salary predicate (uses the B+-tree):\n{plan}");

    // -- EXPLAIN ANALYZE: the profiler at work --------------------------------
    // Executes the query once and annotates every operator with actual
    // rows, batches, time, and estimated-vs-actual cardinality.
    let analyzed = session.explain_analyze(
        r#"retrieve (E.name, E.salary) where E.dept.floor = 2 order by E.salary desc"#,
    )?;
    println!("profiled plan:\n{analyzed}");

    // -- Typed row access over a query result ---------------------------------
    let r = session.query("retrieve (E.name, E.salary) order by E.salary desc")?;
    for row in r.iter() {
        let name: &str = row.get("name").expect("name column");
        let salary: f64 = row.get("salary").expect("salary column");
        println!("{name} earns {salary}");
    }

    Ok(())
}

/// The built-in ADT registry, for rendering ADT values.
fn extra_model_registry() -> extra_excess::model::AdtRegistry {
    extra_excess::model::AdtRegistry::with_builtins()
}
