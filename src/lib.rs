//! # extra-excess
//!
//! A faithful, production-quality reproduction of **"A Data Model and
//! Query Language for EXODUS"** (Michael J. Carey, David J. DeWitt, and
//! Scott L. Vandenberg, SIGMOD 1988): the **EXTRA** data model and the
//! **EXCESS** query language, built on an EXODUS-style storage manager.
//!
//! This facade crate re-exports the workspace layers:
//!
//! | crate | contents |
//! |---|---|
//! | [`storage`] | slotted pages, buffer pool, heap files, object table, B+-tree, large objects |
//! | [`model`] | the EXTRA data model: types, ADTs, inheritance, values, object store |
//! | [`lang`] | the EXCESS front end: lexer, parser, AST |
//! | [`sema`] | name resolution and type checking |
//! | [`algebra`] | query algebra, rewrite rules, cost-based physical planner |
//! | [`exec`] | compiled expressions and the plan runner |
//! | [`db`] | the database facade: catalog, sessions, functions, procedures, authorization |
//!
//! Most users only need [`Database`]:
//!
//! ```
//! use extra_excess::Database;
//!
//! let db = Database::in_memory();
//! let mut session = db.session();
//! session.run(r#"
//!     define type Person (name: varchar, birthday: Date);
//!     create { own ref Person } People;
//!     append to People (name = "ann", birthday = Date("8/29/1953"));
//! "#).unwrap();
//! let rows = session.query(
//!     r#"retrieve (P.name) from P in People
//!        where P.birthday < Date("1/1/1960")"#).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

/// The observability quick-start, included verbatim from
/// `docs/OBSERVABILITY.md` so its `rust` example compiles and runs as a
/// doctest (the `excess` blocks run under `tests/doc_examples.rs`).
#[doc = include_str!("../docs/OBSERVABILITY.md")]
pub mod observability_doc {}

/// The replication guide, included verbatim from
/// `docs/REPLICATION.md` so its `rust` quick-start compiles and runs
/// as a doctest (the `excess`/`excess-replica` blocks run against a
/// live primary/replica pair under `tests/doc_examples.rs`).
#[doc = include_str!("../docs/REPLICATION.md")]
pub mod replication_doc {}

pub use excess_algebra as algebra;
pub use excess_exec as exec;
pub use excess_lang as lang;
pub use excess_sema as sema;
pub use exodus_db as db;
pub use exodus_db::{
    obs, Client, Database, DatabaseBuilder, DbError, DbResult, Durability, Explanation,
    MetricsSnapshot, Observation, OpProfile, QueryProfile, QueryResult, RecoveryReport, Response,
    Row, Session, SlowQuery, Span, TraceConfig, Value,
};
pub use exodus_storage as storage;
pub use extra_model as model;
