//! Remaining surface coverage: enumerations, whole-value appends, var
//! arrays, session API, EXPLAIN of nested paths, multi-statement scripts.

use extra_excess::{Database, Response, Value};

#[test]
fn enumerations_end_to_end() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Bug (title: varchar, sev: enum(low, medium, high));
        create { own Bug } Bugs;
    "#,
    )
    .unwrap();
    // Enum values enter through the Rust API (the DDL carries the symbol
    // list; literals-by-symbol are a front-end nicety not in the paper).
    db.bulk_append(
        "Bugs",
        vec![
            Value::Tuple(vec![Value::str("leak"), Value::Enum(2, "high".into())]),
            Value::Tuple(vec![Value::str("typo"), Value::Enum(0, "low".into())]),
            Value::Tuple(vec![Value::str("slow"), Value::Enum(1, "medium".into())]),
        ],
    )
    .unwrap();
    // Enums order by declaration ordinal.
    let r = s
        .query("retrieve (B.title) from B in Bugs order by B.sev desc")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("leak")],
            vec![Value::str("slow")],
            vec![Value::str("typo")],
        ]
    );
    let r = s
        .query("retrieve (B.sev) from B in Bugs where B.title = \"leak\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Enum(2, "high".into())]]);
}

#[test]
fn whole_value_append_copies_between_own_collections() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Row (k: int4, v: varchar);
        create { own Row } Source;
        create { own Row } Sink;
        append to Source (k = 1, v = "one");
        append to Source (k = 2, v = "two");
        range of S is Source;
        append to Sink S where S.k = 2;
    "#,
    )
    .unwrap();
    let r = s.query("retrieve (T.v) from T in Sink").unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("two")]]);
    // It is a copy: mutating Source leaves Sink alone (value semantics).
    s.run("range of S is Source; replace S (v = \"TWO\") where S.k = 2")
        .unwrap();
    let r = s.query("retrieve (T.v) from T in Sink").unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("two")]]);
}

#[test]
fn variable_length_array_grows() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        create [] varchar Log;
        append to Log "first";
        append to Log "second";
    "#,
    )
    .unwrap();
    let r = s.query("retrieve (Log[1], Log[2])").unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::str("first"), Value::str("second")]]
    );
    // Iterate a named array object.
    let r = s
        .query("range of L is Log; retrieve (count(L over L))")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn session_run_returns_per_statement_responses() {
    let db = Database::in_memory();
    let mut s = db.session();
    let responses = s
        .run(
            r#"
            define type T (x: int4);
            create { own T } Ts;
            append to Ts (x = 1);
            retrieve (V.x) from V in Ts
        "#,
        )
        .unwrap();
    assert_eq!(responses.len(), 4);
    assert!(matches!(responses[0], Response::Done(_)));
    assert!(matches!(responses[3], Response::Rows(_)));
}

#[test]
fn explain_renders_nested_plans() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Kid (name: varchar);
        define type Emp (name: varchar, kids: { own Kid });
        create { own ref Emp } Emps;
    "#,
    )
    .unwrap();
    let plan = s
        .explain("retrieve (C.name) from C in Emps.kids where Emps.name = \"x\"")
        .unwrap()
        .plan;
    assert!(plan.contains("Unnest C"), "{plan}");
    assert!(plan.contains("SeqScan Emps"), "{plan}");
    assert!(plan.contains("Filter"), "{plan}");
}

#[test]
fn scripts_mix_ddl_dml_and_queries() {
    let db = Database::in_memory();
    let mut s = db.session();
    let r = s
        .query(
            r#"
            define type City (name: varchar, pop: int4);
            create { own ref City } Cities key (name);
            append to Cities (name = "madison", pop = 170000);
            append to Cities (name = "kenosha", pop = 77000);
            range of C is Cities;
            replace C (pop = C.pop + 1000) where C.name = "madison";
            retrieve (C.name, C.pop) where C.pop > 100000
        "#,
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::str("madison"), Value::Int(171000)]]
    );
}

#[test]
fn set_valued_targets_render() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Emp (name: varchar, tags: { varchar });
        create { own ref Emp } Emps;
        append to Emps (name = "a");
        range of E is Emps;
        append to E.tags "x" where E.name = "a";
        append to E.tags "y" where E.name = "a";
    "#,
    )
    .unwrap();
    let r = s.query("retrieve (E.tags) from E in Emps").unwrap();
    match &r.rows[0][0] {
        Value::Set(items) => assert_eq!(items.len(), 2),
        other => panic!("{other:?}"),
    }
    // Rendered output for humans.
    let adts = extra_excess::model::AdtRegistry::with_builtins();
    let text = r.render(&adts);
    assert!(text.contains("tags ="), "{text}");
}

#[test]
fn negative_numbers_and_precedence_in_queries() {
    let db = Database::in_memory();
    let mut s = db.session();
    let r = s.query("retrieve (-3 + 2 * 4, -(1 + 1))").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(5), Value::Int(-2)]]);
    let r = s.query("retrieve (10 % 3, 10 / 3, 10.0 / 4)").unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Int(1), Value::Int(3), Value::Float(2.5)]]
    );
}

#[test]
fn polygon_operator_through_sql() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Zone (label: varchar, shape: Polygon);
        create { own Zone } Zones;
        append to Zones (label = "a", shape = Polygon("((0 0) (2 0) (2 2) (0 2))"));
        append to Zones (label = "b", shape = Polygon("((1 1) (3 1) (3 3) (1 3))"));
        append to Zones (label = "c", shape = Polygon("((9 9) (10 9) (10 10) (9 10))"));
    "#,
    )
    .unwrap();
    let r = s
        .query(
            "retrieve (x = Z.label, y = Z2.label) from Z in Zones, Z2 in Zones \
             where Z.shape &&& Z2.shape and Z.label < Z2.label",
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("a"), Value::str("b")]]);
}

#[test]
fn named_object_identity_against_members() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Emp (name: varchar);
        create { own ref Emp } Emps;
        create Emp Boss;
        append to Emps (name = "w1");
        replace Boss (name = "boss");
    "#,
    )
    .unwrap();
    // The named object is not a member of the set, so no member is it.
    let r = s
        .query("retrieve (E.name) from E in Emps where E is Boss")
        .unwrap();
    assert!(r.is_empty());
    // But a ref-mode collection can hold it, and then identity matches.
    s.run("create { ref Emp } Wall; append to Wall Boss")
        .unwrap();
    let r = s
        .query("retrieve (W.name) from W in Wall where W is Boss")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("boss")]]);
}

#[test]
fn unknown_user_has_no_rights() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type T (x: int4);
        create { own T } Ts;
    "#,
    )
    .unwrap();
    let mut ghost = db.session_as("ghost");
    let err = ghost.query("retrieve (V.x) from V in Ts").unwrap_err();
    assert!(matches!(err, extra_excess::DbError::Auth(_)), "{err}");
}
