//! The query-profiling layer: EXPLAIN ANALYZE correctness, the
//! builder-based configuration API, and typed row access.

use std::sync::Arc;

use extra_excess::{Database, OpProfile, QueryProfile, Response, Value};

fn rows_db(n: i64, workers: usize) -> Arc<Database> {
    let db = Database::builder().worker_threads(workers).build().unwrap();
    let mut s = db.session();
    s.run(
        r#"
        define type Row (k: int4, v: float8);
        create { own Row } Rows;
    "#,
    )
    .unwrap();
    db.bulk_append(
        "Rows",
        (0..n)
            .map(|i| Value::Tuple(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]))
            .collect(),
    )
    .unwrap();
    db
}

fn node<'p>(p: &'p QueryProfile, label_part: &str) -> &'p OpProfile {
    p.nodes
        .iter()
        .find(|n| n.label.contains(label_part))
        .unwrap_or_else(|| {
            panic!(
                "no operator matching {label_part:?} in profile:\n{}",
                p.nodes
                    .iter()
                    .map(|n| n.label.as_str())
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        })
}

/// The profile of a filtered scan must carry exact per-operator row
/// counts: the scan emits every member, the filter passes exactly the
/// qualifying ones, and the projection sees only survivors.
#[test]
fn explain_analyze_exact_operator_counts() {
    let db = rows_db(100, 1);
    let mut s = db.session();
    let e = s
        .explain_analyze("retrieve (R.k) from R in Rows where R.k >= 90")
        .unwrap();
    let p = e.profile.expect("analyze attaches a profile");

    let scan = node(&p, "SeqScan");
    assert_eq!(scan.rows_out, 100, "scan emits every member");
    assert!(scan.batches_out >= 1);

    let filter = node(&p, "Filter");
    assert_eq!(filter.rows_in, 100);
    assert_eq!(filter.rows_out, 10, "10 of 100 rows satisfy k >= 90");
    assert_eq!(filter.selectivity(), Some(0.1));

    let project = node(&p, "Project");
    assert_eq!(project.rows_out, 10);

    assert_eq!(p.result_rows, 10);
    assert_eq!(p.dop, 1);

    // Estimated-vs-actual: the scan carries the planner's cardinality
    // estimate, and the Display rendering surfaces both.
    assert!(scan.est_rows.is_some(), "scan carries an estimate");
    let shown = format!("{p}");
    assert!(shown.contains("est="), "{shown}");
    assert!(shown.contains("rows=100"), "{shown}");
    assert!(shown.contains("-- total:"), "{shown}");
}

/// Aggregate `over` plans are embedded in expressions, not the operator
/// tree; the profiler indexes them as children of their operator, so an
/// aggregate-only query still reports what its hidden scan did.
#[test]
fn aggregate_over_plan_is_profiled() {
    let db = rows_db(100, 1);
    let mut s = db.session();
    s.run("range of R is Rows").unwrap();
    let e = s
        .explain_analyze("retrieve (sum(R.k over R where R.k >= 90))")
        .unwrap();
    let p = e.profile.unwrap();
    let scan = node(&p, "SeqScan");
    assert_eq!(
        scan.rows_out, 100,
        "the aggregate's over-scan emits every member (qual filters later)"
    );
    assert_eq!(p.result_rows, 1);
}

/// DOP 1 and DOP 4 must report identical logical operator counts: the
/// exchange changes how work is scheduled, not what each operator sees.
#[test]
fn parallel_profile_counts_match_serial() {
    // 5000 rows clears the 4096-row parallelism threshold.
    let q = "retrieve (R.k) from R in Rows where R.k >= 4000";
    let serial_db = rows_db(5000, 1);
    let parallel_db = rows_db(5000, 4);
    let se = serial_db.session().explain_analyze(q).unwrap();
    let pe = parallel_db.session().explain_analyze(q).unwrap();
    let sp = se.profile.unwrap();
    let pp = pe.profile.unwrap();
    assert_eq!(sp.dop, 1);
    assert_eq!(pp.dop, 4);
    assert_eq!(sp.result_rows, pp.result_rows);

    // The parallel plan adds an exchange node; every operator present in
    // both plans must agree on rows in/out (batch counts may differ with
    // morsel chunking).
    let exchange = node(&pp, "Parallel");
    assert_eq!(exchange.rows_out, 1000);
    assert!(!exchange.workers.is_empty(), "exchange has worker stats");
    let morsels: u64 = exchange.workers.iter().map(|w| w.morsels).sum();
    let worker_rows: u64 = exchange.workers.iter().map(|w| w.rows).sum();
    assert!(morsels >= 1);
    assert_eq!(worker_rows, 5000, "workers consume every seed row");

    for sn in &sp.nodes {
        if let Some(pn) = pp.nodes.iter().find(|n| n.label == sn.label) {
            assert_eq!(sn.rows_in, pn.rows_in, "{} rows_in", sn.label);
            assert_eq!(sn.rows_out, pn.rows_out, "{} rows_out", sn.label);
        }
    }
}

/// EXPLAIN ANALYZE of DML executes the statement exactly once; plain
/// EXPLAIN of DML executes it zero times.
#[test]
fn explain_of_dml_mutates_zero_times_analyze_once() {
    let db = rows_db(10, 1);
    let mut s = db.session();
    s.run("range of R is Rows").unwrap();

    // Plain EXPLAIN: plan only, nothing applied.
    let e = s.explain("delete R where R.k >= 0").unwrap();
    assert!(e.plan.contains("SeqScan"), "{}", e.plan);
    assert!(e.profile.is_none(), "plain explain must not execute");
    let r = s
        .query("retrieve (count(R over R)) from R in Rows")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(10), "plain explain ran the delete");

    // EXPLAIN ANALYZE: applied exactly once.
    let e = s
        .explain_analyze("replace R (v = 99.0) where R.k >= 6")
        .unwrap();
    let p = e.profile.expect("analyze profiles the update");
    assert_eq!(p.result_rows, 4, "4 bindings staged");
    let r = s
        .query("retrieve (count(R over R where R.v = 99.0)) from R in Rows")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(4), "replace applied once");

    // And through the EXCESS surface syntax.
    let resp = s.run("explain analyze delete R where R.v = 99.0").unwrap();
    let expl = resp
        .into_iter()
        .next()
        .unwrap()
        .explanation()
        .expect("explain statement yields an explanation");
    assert!(expl.profile.is_some());
    let r = s
        .query("retrieve (count(R over R)) from R in Rows")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(6), "delete applied exactly once");
}

/// The builder rejects a zero worker count instead of letting queries
/// hang or silently reinterpreting it.
#[test]
fn builder_rejects_zero_worker_threads() {
    let err = match Database::builder().worker_threads(0).build() {
        Err(e) => e,
        Ok(_) => panic!("worker_threads(0) must be rejected"),
    };
    assert!(
        err.to_string().contains("worker_threads"),
        "unhelpful error: {err}"
    );
}

/// Database-wide profiling attaches a profile to every query result.
#[test]
fn always_on_profiling_annotates_results() {
    let db = Database::builder().profiling(true).build().unwrap();
    let mut s = db.session();
    s.run(
        r#"
        define type Row (k: int4);
        create { own Row } Rows;
        append to Rows (k = 1);
    "#,
    )
    .unwrap();
    let r = s.query("retrieve (R.k) from R in Rows").unwrap();
    let p = r.profile.expect("profiling(true) annotates results");
    assert_eq!(node(&p, "SeqScan").rows_out, 1);
    assert!(p.buffer.is_some(), "profile carries the buffer-pool delta");
    assert!(p.to_json().contains("\"operators\""));
}

/// Typed row access over a query result.
#[test]
fn query_result_typed_rows() {
    let db = rows_db(3, 1);
    let mut s = db.session();
    let r = s
        .query("retrieve (R.k, R.v) from R in Rows order by R.k asc")
        .unwrap();
    let mut ks = Vec::new();
    for row in r.iter() {
        let k: i64 = row.get("k").expect("k column");
        let v: f64 = row.get("v").expect("v column");
        assert_eq!(v, k as f64 * 0.5);
        assert!(row.get::<i64>("missing").is_none());
        assert!(row.get::<bool>("k").is_none(), "wrong type must not coerce");
        ks.push(k);
    }
    assert_eq!(ks, vec![0, 1, 2]);

    // Response::rows still routes through the redesigned result type.
    let resp = s.run("retrieve (R.k) from R in Rows").unwrap();
    let only = resp.into_iter().next().unwrap();
    assert!(matches!(only, Response::Rows(_)));
}
