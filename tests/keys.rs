//! Keys on set instances — the paper's stated intention ("We also intend
//! to support keys, the specification of which will be associated with
//! set instances") — implemented as unique indexes.

use extra_excess::{Database, DbError, Value};

#[test]
fn key_on_create_enforces_uniqueness() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, ssnum: int4);
        create { own ref Person } People key (ssnum);
        append to People (name = "ann", ssnum = 100);
        append to People (name = "bob", ssnum = 200);
    "#,
    )
    .unwrap();
    // Duplicate key rejected, set unchanged.
    let err = s
        .run(r#"append to People (name = "eve", ssnum = 100)"#)
        .unwrap_err();
    assert!(err.to_string().contains("key violation"), "{err}");
    let r = s
        .query("retrieve (count(P over P)) from P in People")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    // Replacing into a conflicting key is rejected too.
    let err = s
        .run("range of P is People; replace P (ssnum = 200) where P.name = \"ann\"")
        .unwrap_err();
    assert!(err.to_string().contains("key violation"), "{err}");
    // Replacing to a fresh value works; the vacated key is reusable.
    s.run("range of P is People; replace P (ssnum = 300) where P.name = \"ann\"")
        .unwrap();
    s.run(r#"append to People (name = "eve", ssnum = 100)"#)
        .unwrap();
    let r = s
        .query("retrieve (count(P over P)) from P in People")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
}

#[test]
fn key_index_also_serves_queries() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, ssnum: int4);
        create { own ref Person } People key (ssnum);
        append to People (name = "ann", ssnum = 100);
    "#,
    )
    .unwrap();
    let plan = s
        .explain("retrieve (P.name) from P in People where P.ssnum = 100")
        .unwrap()
        .plan;
    assert!(plan.contains("IndexScan"), "{plan}");
}

#[test]
fn key_only_on_sets() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run("define type Person (name: varchar, ssnum: int4)")
        .unwrap();
    let err = s.run("create Person Star key (ssnum)").unwrap_err();
    assert!(err.to_string().contains("set instances"), "{err}");
}

#[test]
fn deleted_member_frees_its_key() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, ssnum: int4);
        create { own ref Person } People key (ssnum);
        append to People (name = "ann", ssnum = 1);
        range of P is People;
        delete P where P.ssnum = 1;
        append to People (name = "ann2", ssnum = 1)
    "#,
    )
    .unwrap();
    let r = s.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("ann2")]]);
}

#[test]
fn unique_index_statement_and_build_time_violations() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, ssnum: int4);
        create { own ref Person } People;
        append to People (name = "a", ssnum = 1);
        append to People (name = "b", ssnum = 1);
    "#,
    )
    .unwrap();
    // Building a unique index over existing duplicates fails.
    let err = s
        .run("define unique index pk on People (ssnum)")
        .unwrap_err();
    assert!(matches!(err, DbError::Catalog(_)), "{err}");
    // After repair it builds and enforces.
    s.run("range of P is People; replace P (ssnum = 2) where P.name = \"b\"")
        .unwrap();
    s.run("define unique index pk on People (ssnum)").unwrap();
    let err = s
        .run(r#"append to People (name = "c", ssnum = 2)"#)
        .unwrap_err();
    assert!(err.to_string().contains("key violation"), "{err}");
    // Non-unique indexes still allow duplicates.
    s.run("define index byname on People (name)").unwrap();
    s.run(r#"append to People (name = "a", ssnum = 9)"#)
        .unwrap();
}

#[test]
fn key_violation_leaves_no_partial_state() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, ssnum: int4);
        create { own ref Person } People key (ssnum);
        append to People (name = "ann", ssnum = 100);
        append to People (name = "bob", ssnum = 200);
    "#,
    )
    .unwrap();
    let err = s
        .run("range of P is People; replace P (ssnum = 200) where P.name = \"ann\"")
        .unwrap_err();
    assert!(err.to_string().contains("key violation"), "{err}");
    // ann's value is unchanged and the index still finds both members.
    let r = s
        .query("retrieve (P.ssnum) from P in People where P.name = \"ann\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(100)]]);
    let r = s
        .query("retrieve (P.name) from P in People where P.ssnum = 100")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("ann")]]);
    let r = s
        .query("retrieve (P.name) from P in People where P.ssnum = 200")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("bob")]]);
}

#[test]
fn null_keys_are_not_constrained() {
    // Nulls are outside the index (the paper's GEM-style nulls), so two
    // members may both have a null key.
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, ssnum: int4);
        create { own ref Person } People key (ssnum);
        append to People (name = "x");
        append to People (name = "y");
    "#,
    )
    .unwrap();
    let r = s
        .query("retrieve (count(P over P)) from P in People")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
}
