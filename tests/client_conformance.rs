//! The shared `Client` conformance suite.
//!
//! Every scenario here runs twice — once against the in-process
//! `Session` and once against a `RemoteSession` talking to a real
//! `exodus-server` over a loopback socket — and the two transcripts
//! must match exactly: same rows, same acknowledgment messages, same
//! error codes and retryability, same rendered plans. This is the
//! contract that keeps local and remote behavior from drifting.

use exodus_db::{Client, Database, DbError, Response};
use exodus_server::{AdmissionConfig, RemoteSession, Server, TcpTransport};

/// Schema and data shared by every scenario.
const SETUP: &str = r#"
    define type Person (name: varchar, age: int4);
    create { own ref Person } People;
    append to People (name = "ann", age = 30);
    append to People (name = "bob", age = 40);
    append to People (name = "cyd", age = 25);
"#;

/// A transcript entry: what one client call produced, rendered in a
/// transport-independent way.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// `run` responses: Done messages and row sets, in order.
    Ran(Vec<String>),
    /// `query` rows, rendered row-major.
    Rows(Vec<Vec<String>>),
    /// An explanation's plan text.
    Plan(String),
    /// An error: stable code, retryability.
    Failed(u16, bool),
}

fn render_response(r: &Response) -> String {
    match r {
        Response::Done(m) => format!("done: {m}"),
        Response::Rows(q) => format!(
            "rows[{}]: {:?}",
            q.columns.join(","),
            q.rows
                .iter()
                .map(|row| row.iter().map(|v| v.to_string()).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        ),
        Response::Explained(e) => format!("explained: {}", e.plan),
        Response::Observed(o) => format!("observed: {}", render_response(&o.response)),
    }
}

fn run_outcome(client: &mut dyn Client, src: &str) -> Outcome {
    match client.run(src) {
        Ok(responses) => Outcome::Ran(responses.iter().map(render_response).collect()),
        Err(e) => Outcome::Failed(e.code(), e.is_retryable()),
    }
}

fn query_outcome(client: &mut dyn Client, src: &str) -> Outcome {
    match client.query(src) {
        Ok(q) => Outcome::Rows(
            q.rows
                .iter()
                .map(|row| row.iter().map(|v| v.to_string()).collect())
                .collect(),
        ),
        Err(e) => Outcome::Failed(e.code(), e.is_retryable()),
    }
}

fn explain_outcome(client: &mut dyn Client, src: &str) -> Outcome {
    match client.explain(src) {
        Ok(e) => Outcome::Plan(e.plan),
        Err(e) => Outcome::Failed(e.code(), e.is_retryable()),
    }
}

/// Run `scenario` against a fresh local session and a fresh remote
/// session (each over its own in-memory database primed with
/// [`SETUP`]) and compare the transcripts.
fn conforms(scenario: impl Fn(&mut dyn Client) -> Vec<Outcome>) {
    let local_db = Database::in_memory();
    let mut local = local_db.session();
    local.run(SETUP).unwrap();
    let local_transcript = scenario(&mut local);

    let remote_db = Database::in_memory();
    let server = Server::spawn(
        remote_db,
        TcpTransport::bind("127.0.0.1:0").unwrap(),
        AdmissionConfig::default(),
    )
    .unwrap();
    let mut remote = RemoteSession::connect(server.addr(), "admin").unwrap();
    remote.run(SETUP).unwrap();
    let remote_transcript = scenario(&mut remote);

    assert_eq!(
        local_transcript, remote_transcript,
        "local and remote clients disagreed"
    );
}

#[test]
fn retrieve_rows_match() {
    conforms(|c| {
        vec![
            query_outcome(
                c,
                "retrieve (P.name, P.age) from P in People where P.age > 28",
            ),
            query_outcome(c, "retrieve (P.name) from P in People"),
        ]
    });
}

#[test]
fn ddl_and_update_acknowledgments_match() {
    conforms(|c| {
        vec![
            run_outcome(c, r#"append to People (name = "dee", age = 50)"#),
            run_outcome(
                c,
                r#"replace P (age = 31) from P in People where P.name = "ann""#,
            ),
            run_outcome(c, r#"delete P from P in People where P.name = "dee""#),
            query_outcome(c, "retrieve (P.name, P.age) from P in People"),
        ]
    });
}

#[test]
fn multi_statement_run_matches() {
    conforms(|c| {
        vec![run_outcome(
            c,
            r#"
                append to People (name = "eve", age = 61);
                retrieve (P.name) from P in People where P.age > 60;
                delete P from P in People where P.name = "eve"
            "#,
        )]
    });
}

#[test]
fn error_codes_round_trip() {
    conforms(|c| {
        vec![
            // 1001 Parse: not a statement.
            run_outcome(c, "retrieve retrieve retrieve"),
            // 1002 Sema: unknown attribute.
            run_outcome(c, "retrieve (P.salary) from P in People"),
            // 1002 Sema: unknown collection.
            run_outcome(c, "retrieve (X.name) from X in Nowhere"),
            // 1005 Txn: commit without begin.
            run_outcome(c, "commit"),
            // query() on a non-retrieve.
            query_outcome(c, r#"append to People (name = "zed", age = 1)"#),
        ]
    });
}

#[test]
fn first_error_stops_the_batch_but_keeps_earlier_statements() {
    conforms(|c| {
        vec![
            run_outcome(
                c,
                r#"
                    append to People (name = "fay", age = 35);
                    retrieve (P.bogus) from P in People;
                    append to People (name = "gus", age = 36)
                "#,
            ),
            // "fay" was applied (its own autocommit txn); "gus" never ran.
            query_outcome(c, "retrieve (P.name) from P in People where P.age > 34"),
        ]
    });
}

#[test]
fn explain_plans_match() {
    conforms(|c| {
        vec![
            explain_outcome(c, "retrieve (P.name) from P in People where P.age > 28"),
            // Explain must not execute: People is unchanged after.
            explain_outcome(c, r#"delete P from P in People where P.name = "ann""#),
            query_outcome(c, "retrieve (P.name) from P in People"),
        ]
    });
}

#[test]
fn explain_analyze_executes_exactly_once() {
    conforms(|c| {
        let analyzed = c
            .explain_analyze(r#"append to People (name = "hal", age = 70)"#)
            .unwrap();
        // The annotated plan carries per-operator profiling counters
        // either side (exact timings differ, so no transcript compare).
        assert!(
            analyzed.to_string().contains("rows="),
            "analyzed plan should carry profiling counters: {analyzed}"
        );
        vec![query_outcome(
            c,
            "retrieve (P.name) from P in People where P.age > 60",
        )]
    });
}

#[test]
fn observe_reports_the_statement_and_its_effects() {
    conforms(|c| {
        let obs = c
            .observe("retrieve (P.name) from P in People where P.age > 28")
            .unwrap();
        assert!(
            obs.counters
                .iter()
                .any(|(name, _)| name == "exec_rows_total"),
            "observation should count the rows the statement produced: {:?}",
            obs.counters
        );
        vec![Outcome::Ran(vec![render_response(&obs.response)])]
    });
}

#[test]
fn explicit_transactions_commit_and_abort() {
    conforms(|c| {
        vec![
            run_outcome(
                c,
                r#"begin; append to People (name = "ida", age = 81); commit"#,
            ),
            query_outcome(c, "retrieve (P.name) from P in People where P.age > 80"),
            run_outcome(
                c,
                r#"begin; append to People (name = "jan", age = 82); abort"#,
            ),
            // The aborted append is invisible.
            query_outcome(c, "retrieve (P.name) from P in People where P.age > 80"),
        ]
    });
}

#[test]
fn authorization_is_enforced_for_both() {
    // Local: a non-admin session; remote: a Hello as the same user.
    let local_db = Database::in_memory();
    local_db.session().run(SETUP).unwrap();
    local_db.session().run(r#"create user intern"#).unwrap();
    let mut local = local_db.session_as("intern");
    let local_err = Client::query(&mut local, "retrieve (P.name) from P in People").unwrap_err();

    let remote_db = Database::in_memory();
    remote_db.session().run(SETUP).unwrap();
    remote_db.session().run(r#"create user intern"#).unwrap();
    let server = Server::spawn(
        remote_db,
        TcpTransport::bind("127.0.0.1:0").unwrap(),
        AdmissionConfig::default(),
    )
    .unwrap();
    let mut remote = RemoteSession::connect(server.addr(), "intern").unwrap();
    let remote_err = remote
        .query("retrieve (P.name) from P in People")
        .unwrap_err();

    assert_eq!(local_err.code(), remote_err.code());
    assert_eq!(local_err.is_retryable(), remote_err.is_retryable());
    assert!(matches!(remote_err, DbError::Remote { .. }));
}

#[test]
fn sys_views_conform_across_transports() {
    // The `sys.*` introspection surface must look the same through a
    // local Session and a RemoteSession: same columns, same plans, and
    // — for state the transport does not itself change — same rows.
    conforms(|c| {
        vec![
            query_outcome(
                c,
                r#"retrieve (m.name, m.kind, m.count) from m in sys.metrics
                   where m.name = "db_statements_total""#,
            ),
            // `kind`/`peer`/`state` are transport-specific by design
            // (covered below); user and statement counts must agree.
            query_outcome(
                c,
                "retrieve (s.user_name, s.statements) from s in sys.sessions",
            ),
            explain_outcome(c, "retrieve (m.name) from m in sys.metrics"),
            explain_outcome(c, "retrieve (s.id) from s in sys.sessions"),
            // Unknown views fail with the same stable code either side.
            query_outcome(c, "retrieve (v) from v in sys.nope"),
        ]
    });
}

#[test]
fn remote_sessions_appear_as_wire_sessions() {
    // What the transports legitimately change: a wire session's
    // `sys.sessions` row carries the peer address the server annotated
    // and reports kind `wire`, while an in-process session is `local`
    // with a null peer.
    let db = Database::in_memory();
    let local_rows = {
        let mut local = db.session();
        local.run(SETUP).unwrap();
        local
            .query("retrieve (s.kind, s.peer, s.state) from s in sys.sessions")
            .unwrap()
            .rows
    };
    assert_eq!(local_rows.len(), 1);
    assert_eq!(local_rows[0][0].to_string(), "\"local\"");
    assert_eq!(local_rows[0][1].to_string(), "null");
    assert_eq!(local_rows[0][2].to_string(), "\"open\"");

    let server = Server::spawn(
        Database::in_memory(),
        TcpTransport::bind("127.0.0.1:0").unwrap(),
        AdmissionConfig::default(),
    )
    .unwrap();
    let mut remote = RemoteSession::connect(server.addr(), "admin").unwrap();
    remote.run(SETUP).unwrap();
    let rows = remote
        .query("retrieve (s.kind, s.peer, s.state, s.user_name) from s in sys.sessions")
        .unwrap()
        .rows;
    assert_eq!(rows.len(), 1, "the serving connection sees itself");
    assert_eq!(rows[0][0].to_string(), "\"wire\"");
    assert!(
        rows[0][1].to_string().contains("127.0.0.1"),
        "peer address missing: {:?}",
        rows[0][1]
    );
    assert_eq!(rows[0][2].to_string(), "\"admitted\"");
    assert_eq!(rows[0][3].to_string(), "\"admin\"");
}

#[test]
fn snapshot_isolation_holds_over_the_wire() {
    // A remote reader must not see another connection's uncommitted
    // writes — its retrieves run against a committed snapshot, exactly
    // as in-process sessions do (writers serialize on the single
    // writer gate, so the readable anomaly is dirty reads).
    let db = Database::in_memory();
    db.session().run(SETUP).unwrap();
    let server = Server::spawn(
        db,
        TcpTransport::bind("127.0.0.1:0").unwrap(),
        AdmissionConfig::default(),
    )
    .unwrap();

    let mut reader = RemoteSession::connect(server.addr(), "admin").unwrap();
    let mut writer = RemoteSession::connect(server.addr(), "admin").unwrap();

    let before = reader.query("retrieve (P.name) from P in People").unwrap();
    writer
        .run(r#"begin; append to People (name = "kay", age = 90)"#)
        .unwrap();
    let during = reader.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(
        before.rows, during.rows,
        "reader must not see the uncommitted append"
    );
    writer.run("commit").unwrap();
    let after = reader.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(after.rows.len(), before.rows.len() + 1, "commit publishes");

    // And an aborted transaction's writes never surface.
    writer
        .run(r#"begin; append to People (name = "lou", age = 91); abort"#)
        .unwrap();
    let post_abort = reader.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(post_abort.rows, after.rows, "abort leaves no trace");
}
