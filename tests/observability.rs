//! The observability surface end to end: metrics snapshots, recovery
//! counters vs. the `RecoveryReport`, tracing spans, the slow-query
//! log, `observe <stmt>`, and the encodings (JSON round-trip and
//! Prometheus exposition).

use std::path::PathBuf;

use extra_excess::db::validate_exposition;
use extra_excess::{Database, DbError, Durability, MetricsSnapshot, Response, TraceConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("exodus-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A tiny schema with a handful of rows, run through `session`.
fn seed(db: &std::sync::Arc<Database>) {
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4);
        create { own ref Person } People;
        append to People (name = "ann", age = 30);
        append to People (name = "bob", age = 41);
        append to People (name = "cey", age = 52);
    "#,
    )
    .unwrap();
}

/// After a durable workload and a non-checkpointed shutdown, the reopen
/// replays the log — and the `storage_recovery_*` counters in the
/// metrics snapshot must equal the `RecoveryReport` field for field.
#[test]
fn recovery_counters_match_the_report() {
    let dir = temp_dir("recovery");
    let path = dir.join("db.vol");
    {
        let db = Database::builder()
            .path(&path)
            .durability(Durability::Fsync)
            .build()
            .unwrap();
        seed(&db);
        // Dropped without a checkpoint: the volume may be stale, the
        // log is not, so the next open has real redo work.
    }
    let db = Database::builder()
        .path(&path)
        .durability(Durability::Fsync)
        .build()
        .unwrap();
    let report = db.recovery().expect("file-backed open recovers").clone();
    assert!(report.records_scanned > 0, "workload left no log records");
    assert!(report.units_replayed > 0, "reopen had nothing to replay");

    let snap = db.metrics_snapshot().expect("metrics are on by default");
    let counter = |name: &str| {
        snap.counter(name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    assert_eq!(
        counter("storage_recovery_records_scanned"),
        report.records_scanned
    );
    assert_eq!(
        counter("storage_recovery_units_replayed"),
        report.units_replayed
    );
    assert_eq!(
        counter("storage_recovery_units_rolled_back"),
        report.units_rolled_back
    );
    assert_eq!(
        counter("storage_recovery_pages_restored"),
        report.pages_restored
    );
    assert_eq!(
        counter("storage_recovery_bytes_truncated"),
        report.bytes_truncated
    );

    // The durable append path on the reopened database moves the WAL
    // counters (the catalog itself is per-open, so a fresh schema).
    let mut s = db.session();
    s.run(
        r#"
        define type Crew (name: varchar);
        create { own Crew } Crews;
        append to Crews (name = "dee");
    "#,
    )
    .unwrap();
    let snap = db.metrics_snapshot().unwrap();
    assert!(snap.counter("storage_wal_appends_total").unwrap() > 0);
    assert!(snap.counter("storage_wal_fsyncs_total").unwrap() > 0);
    assert!(snap.counter("storage_pool_hits_total").unwrap() > 0);
    drop(s);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn statement_counters_and_active_sessions() {
    let db = Database::in_memory();
    seed(&db);
    let mut s = db.session();
    s.query("retrieve (P.name) from P in People where P.age > 35")
        .unwrap();
    let snap = db.metrics_snapshot().unwrap();
    // `seed` ran 5 statements, this session one more.
    assert_eq!(snap.counter("db_statements_total"), Some(6));
    assert_eq!(snap.counter("db_statements_retrieve_total"), Some(1));
    assert_eq!(snap.counter("db_statements_append_total"), Some(3));
    assert_eq!(snap.counter("db_errors_total"), Some(0));
    assert_eq!(snap.gauge("db_active_sessions"), Some(1));

    assert!(s.run("retrieve (Nope.x)").is_err());
    let snap = db.metrics_snapshot().unwrap();
    assert_eq!(snap.counter("db_errors_total"), Some(1));

    let s2 = db.session_as("guest");
    assert_eq!(
        db.metrics_snapshot().unwrap().gauge("db_active_sessions"),
        Some(2)
    );
    drop(s2);
    drop(s);
    assert_eq!(
        db.metrics_snapshot().unwrap().gauge("db_active_sessions"),
        Some(0)
    );
}

/// With a zero threshold every statement enters the slow-query log,
/// slowest first, and retrieves carry their execution profile (tracing
/// implies profiling).
#[test]
fn slow_query_log_captures_statements_with_profiles() {
    let db = Database::builder()
        .trace(TraceConfig {
            slow_query_threshold_ns: 0,
            ..TraceConfig::default()
        })
        .build()
        .unwrap();
    seed(&db);
    let mut s = db.session();
    s.query("retrieve (P.name) from P in People where P.age > 35")
        .unwrap();

    let slow = db.slow_queries();
    assert_eq!(slow.len(), 6, "zero threshold must log every statement");
    assert!(
        slow.windows(2).all(|w| w[0].elapsed_ns >= w[1].elapsed_ns),
        "slow queries are not sorted slowest first"
    );
    let retrieve = slow
        .iter()
        .find(|q| q.statement.starts_with("retrieve"))
        .expect("the retrieve was logged");
    let profile = retrieve
        .payload
        .as_ref()
        .expect("tracing implies profiling");
    // The profile renders the annotated physical plan.
    assert!(format!("{profile}").contains("SeqScan"), "{profile}");
    assert_eq!(
        db.metrics_snapshot()
            .unwrap()
            .counter("db_slow_queries_total"),
        Some(6)
    );
}

/// One traced retrieve produces the full span lifecycle, with
/// sema/plan/execute/wal_commit nested under the statement span.
#[test]
fn trace_spans_cover_the_statement_lifecycle() {
    let db = Database::builder()
        .trace(TraceConfig::default())
        .build()
        .unwrap();
    seed(&db);
    let mut s = db.session();
    s.query("retrieve (P.name) from P in People where P.age > 35")
        .unwrap();

    let spans = db.trace_spans();
    let find = |name: &str| {
        spans
            .iter()
            .rfind(|sp| sp.name == name)
            .unwrap_or_else(|| panic!("no {name} span in {spans:?}"))
    };
    let statement = find("statement");
    assert!(
        statement.detail.starts_with("retrieve"),
        "{}",
        statement.detail
    );
    for child in ["sema", "plan", "execute"] {
        assert_eq!(
            find(child).parent,
            Some(statement.id),
            "{child} span is not nested under the statement span"
        );
    }
    // Commit spans come from the seed's DML; each nests under one of
    // the statement spans.
    let statement_ids: Vec<u64> = spans
        .iter()
        .filter(|sp| sp.name == "statement")
        .map(|sp| sp.id)
        .collect();
    let commits: Vec<_> = spans.iter().filter(|sp| sp.name == "wal_commit").collect();
    assert!(!commits.is_empty(), "no wal_commit spans in {spans:?}");
    for c in &commits {
        assert!(
            c.parent.is_some_and(|p| statement_ids.contains(&p)),
            "wal_commit span {c:?} is not nested under a statement span"
        );
    }
    // Parsing happens before the statement span opens, so it is a root.
    assert_eq!(find("parse").parent, None);
}

/// `observe <stmt>` wraps the inner response with its wall-clock time
/// and the counters it moved, and refuses to nest.
#[test]
fn observe_statement_reports_counter_deltas() {
    let db = Database::in_memory();
    seed(&db);
    let mut s = db.session();
    let responses = s.run("observe retrieve (P.name) from P in People").unwrap();
    let obs = responses
        .into_iter()
        .next()
        .unwrap()
        .observation()
        .expect("observe returns Response::Observed");
    assert!(format!("{obs}").contains("elapsed:"));
    assert!(
        obs.counters.iter().any(|(n, _)| n == "exec_rows_total"),
        "expected executor deltas, got {:?}",
        obs.counters
    );
    assert!(
        obs.counters.iter().all(|(_, d)| *d > 0),
        "zero deltas must be dropped"
    );
    assert_eq!(obs.response.rows().expect("inner rows").len(), 3);

    assert!(s
        .run("observe observe retrieve (P.name) from P in People")
        .is_err());
    assert!(s
        .run("explain observe retrieve (P.name) from P in People")
        .is_err());
}

/// The snapshot survives its own JSON encoding and the Prometheus
/// exposition parses clean.
#[test]
fn snapshot_encodings_round_trip_and_validate() {
    let db = Database::in_memory();
    seed(&db);
    db.session()
        .query("retrieve (P.age) from P in People")
        .unwrap();

    let snap = db.metrics_snapshot().unwrap();
    let back = MetricsSnapshot::from_json(&snap.to_json()).expect("snapshot JSON parses");
    assert_eq!(snap, back);

    let families = validate_exposition(&snap.to_prometheus()).expect("exposition is well-formed");
    assert!(families >= 20, "only {families} metric families registered");
}

/// `.metrics(false)` strips the whole surface: no snapshots, no spans,
/// no slow queries — and statements still run.
#[test]
fn disabled_metrics_leave_no_surface() {
    let db = Database::builder().metrics(false).build().unwrap();
    seed(&db);
    let mut s = db.session();
    assert_eq!(
        s.query("retrieve (P.name) from P in People").unwrap().len(),
        3
    );
    assert!(db.metrics_snapshot().is_none());
    assert!(db.slow_queries().is_empty());
    assert!(db.trace_spans().is_empty());
    // `observe` still executes its inner statement; the deltas are
    // simply empty.
    let obs = s
        .run("observe retrieve (P.name) from P in People")
        .unwrap()
        .into_iter()
        .next()
        .unwrap()
        .observation()
        .unwrap();
    assert!(obs.counters.is_empty());
    assert_eq!(obs.response.rows().unwrap().len(), 3);
}

/// `observe` meters a statement's execution and `explain` prints its
/// plan; `begin`/`commit`/`abort` have neither an execution pipeline
/// nor a plan, so wrapping them must be refused with a clear parse
/// error — never a panic, never a silent no-op observation.
#[test]
fn observe_and_explain_refuse_transaction_control() {
    let db = Database::builder().build().unwrap();
    seed(&db);
    let mut s = db.session();
    for verb in ["begin", "commit", "abort"] {
        for (wrapper, hint) in [
            ("observe", "is not a metered statement"),
            ("explain", "has no plan"),
            ("explain analyze", "has no plan"),
        ] {
            let err = s
                .run(&format!("{wrapper} {verb}"))
                .expect_err(&format!("'{wrapper} {verb}' must be refused"));
            let DbError::Parse(e) = err else {
                panic!("'{wrapper} {verb}' raised {err}, expected a parse error");
            };
            let msg = e.to_string();
            assert!(
                msg.contains(&format!("'{verb}'")) && msg.contains(hint),
                "'{wrapper} {verb}' error does not explain itself: {msg}"
            );
        }
        // Nested wrappers stay refused in every combination.
        for prefix in [
            "observe observe",
            "explain explain",
            "observe explain",
            "explain observe",
        ] {
            let err = s.run(&format!("{prefix} {verb}")).expect_err(prefix);
            assert!(
                matches!(err, DbError::Parse(_)),
                "'{prefix} {verb}' raised {err}, expected a parse error"
            );
        }
    }
    // The refusals must not have wedged the session: transaction
    // control and observation both still work afterwards.
    s.run("begin").unwrap();
    s.run("commit").unwrap();
    let responses = s
        .run(r#"observe append to People (name = "dot", age = 63)"#)
        .unwrap();
    assert!(
        matches!(responses.last(), Some(Response::Observed(_))),
        "observe of an ordinary statement must still produce an observation"
    );
}

/// The drift gate for DESIGN.md §12's metric catalogue: register every
/// family the system can register (WAL-backed primary with tracing, a
/// wire server, a replica, and a recovered reopen), then require the
/// set of live family names and the doc's fenced `metric-catalogue`
/// block to match exactly — both directions. A new metric family must
/// land in the doc in the same change that registers it, and a removed
/// one must leave it.
#[test]
fn metrics_catalogue_matches_design_doc() {
    use std::collections::BTreeSet;

    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md")).unwrap();
    let block = design
        .split("```metric-catalogue")
        .nth(1)
        .expect("DESIGN.md lost its ```metric-catalogue block")
        .split("```")
        .next()
        .unwrap();
    let documented: BTreeSet<String> = block
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();

    let dir = temp_dir("catalogue");
    let mut live = BTreeSet::new();
    {
        let db = Database::builder()
            .path(dir.join("p.vol"))
            .durability(Durability::Fsync)
            .trace(TraceConfig::default())
            .build()
            .unwrap();
        seed(&db);
        // The server registers its `server_*` families on spawn; the
        // replica registers `repl_replayed_*`/`repl_horizon`/`repl_lag*`
        // on its own registry and `repl_shipped_*` on the primary's.
        let mut server = exodus_server::Server::spawn(
            db.clone(),
            exodus_server::TcpTransport::bind("127.0.0.1:0").unwrap(),
            exodus_server::AdmissionConfig::default(),
        )
        .unwrap();
        let mut replica = extra_excess::db::replication::Replica::in_process(
            &db,
            dir.join("r.vol"),
            extra_excess::db::replication::ReplicaOptions::default(),
        )
        .unwrap();
        replica.pump_until_caught_up().unwrap();
        for m in db.metrics_snapshot().unwrap().metrics {
            live.insert(m.name);
        }
        for m in replica.database().metrics_snapshot().unwrap().metrics {
            live.insert(m.name);
        }
        drop(replica);
        server.shutdown();
    }
    {
        // Reopen: recovery families are only registered when an open
        // actually recovered.
        let db = Database::builder()
            .path(dir.join("p.vol"))
            .durability(Durability::Fsync)
            .build()
            .unwrap();
        for m in db.metrics_snapshot().unwrap().metrics {
            live.insert(m.name);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let undocumented: Vec<&String> = live.difference(&documented).collect();
    let stale: Vec<&String> = documented.difference(&live).collect();
    assert!(
        undocumented.is_empty() && stale.is_empty(),
        "metric catalogue drift — registered but not in DESIGN.md §12: {undocumented:?}; \
         documented but no longer registered: {stale:?}"
    );
}

/// The transaction lifecycle is observable: the active gauge tracks the
/// open transaction and the committed/aborted counters tally outcomes.
#[test]
fn txn_metrics_track_lifecycle() {
    let db = Database::builder().build().unwrap();
    seed(&db);
    let mut s = db.session();

    let at_rest = db.metrics_snapshot().unwrap();
    assert_eq!(at_rest.gauge("storage_txn_active"), Some(0));

    s.run("begin").unwrap();
    let open = db.metrics_snapshot().unwrap();
    assert_eq!(open.gauge("storage_txn_active"), Some(1));

    s.run(r#"append to People (name = "eve", age = 29); commit"#)
        .unwrap();
    s.run(r#"begin; append to People (name = "fay", age = 35); abort"#)
        .unwrap();

    let done = db.metrics_snapshot().unwrap();
    assert_eq!(done.gauge("storage_txn_active"), Some(0));
    let delta = |name: &str| done.counter(name).unwrap_or(0) - at_rest.counter(name).unwrap_or(0);
    // At least the explicit commit; version-reclaim vacuum piggybacks
    // its own housekeeping transactions on the same counter.
    assert!(delta("storage_txn_committed_total") >= 1);
    assert_eq!(delta("storage_txn_aborted_total"), 1);
}
