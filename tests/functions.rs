//! EXCESS function and procedure edge cases: recursion guards, set
//! functions as aggregates, where-bound procedure invocation, parameter
//! conformance.

use extra_excess::{Database, Value};

fn base() -> (
    std::sync::Arc<extra_excess::db::Database>,
    extra_excess::Session,
) {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4);
        create { own ref Person } People;
        append to People (name = "a", age = 10);
        append to People (name = "b", age = 20);
        append to People (name = "c", age = 30);
    "#,
    )
    .unwrap();
    (db, s)
}

#[test]
fn recursive_function_rejected() {
    let (_db, mut s) = base();
    // The body is validated at definition time; a self-reference cannot
    // resolve (the function is not yet in the catalog), so recursion is
    // impossible to set up.
    let err = s
        .run("define function Loop (p: Person) returns int4 as retrieve (p.Loop())")
        .unwrap_err();
    assert!(err.to_string().contains("Loop"), "{err}");
}

#[test]
fn procedure_recursion_depth_guard() {
    let (_db, mut s) = base();
    s.run("define procedure Spin (x: int4) as execute Spin(x) end")
        .unwrap();
    let err = s.run("execute Spin(1)").unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
}

#[test]
fn user_set_function_as_aggregate() {
    let (_db, mut s) = base();
    // A set function over { int4 }: usable with aggregate syntax.
    s.run(
        "define function Spread (xs: { int4 }) returns int8 \
         as retrieve (max(x over x) - min(x over x)) from x in xs",
    )
    .unwrap();
    let r = s
        .query("retrieve (Spread(P.age over P)) from P in People")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(20)]]);
}

#[test]
fn function_with_multiple_params() {
    let (_db, mut s) = base();
    s.run(
        "define function Between (p: Person, lo: int4, hi: int4) returns boolean \
         as retrieve (p.age >= lo and p.age <= hi)",
    )
    .unwrap();
    let r = s
        .query("retrieve (P.name) from P in People where P.Between(15, 25)")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("b")]]);
    // Symmetric syntax with extra arguments.
    let r = s
        .query("retrieve (P.name) from P in People where Between(P, 5, 100)")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn procedure_param_conformance_checked() {
    let (_db, mut s) = base();
    s.run(
        "define procedure SetAge (nm: varchar, a: int4) as \
         range of P is People; replace P (age = a) where P.name = nm end",
    )
    .unwrap();
    s.run("execute SetAge(\"a\", 99)").unwrap();
    let r = s
        .query("retrieve (P.age) from P in People where P.name = \"a\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(99)]]);
    // Wrong argument type fails cleanly.
    let err = s.run("execute SetAge(1, 2)").unwrap_err();
    assert!(err.to_string().contains("mismatch"), "{err}");
    // Wrong arity.
    let err = s.run("execute SetAge(\"a\")").unwrap_err();
    assert!(err.to_string().contains("argument"), "{err}");
}

#[test]
fn procedure_invoked_per_binding_with_argument_expressions() {
    let (_db, mut s) = base();
    s.run(
        r#"
        define type Rule (pattern: varchar, bump: int4);
        create { own Rule } Rules;
        append to Rules (pattern = "a", bump = 1);
        append to Rules (pattern = "b", bump = 2);
        define procedure Bump (nm: varchar, amount: int4) as
            range of P is People;
            replace P (age = P.age + amount) where P.name = nm
        end
    "#,
    )
    .unwrap();
    // One invocation per rule, arguments drawn from the binding.
    s.run("range of R is Rules; execute Bump(R.pattern, R.bump) where R.bump > 0")
        .unwrap();
    let r = s
        .query("retrieve (P.name, P.age) from P in People order by P.name asc")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("a"), Value::Int(11)],
            vec![Value::str("b"), Value::Int(22)],
            vec![Value::str("c"), Value::Int(30)],
        ]
    );
}

#[test]
fn functions_compose() {
    let (_db, mut s) = base();
    s.run(
        "define function Doubled (p: Person) returns int4 as retrieve (p.age * 2); \
         define function Quadrupled (p: Person) returns int4 as retrieve (p.Doubled() * 2)",
    )
    .unwrap();
    let r = s
        .query("retrieve (P.Quadrupled()) from P in People where P.name = \"b\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(80)]]);
}

#[test]
fn function_results_usable_in_qualifications_and_order() {
    let (_db, mut s) = base();
    s.run("define function Doubled (p: Person) returns int4 as retrieve (p.age * 2)")
        .unwrap();
    let r = s
        .query(
            "retrieve (P.name) from P in People \
             where P.Doubled() >= 40 order by P.Doubled() desc",
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("c")], vec![Value::str("b")]]);
}
