//! WAL-shipping read replicas, end to end (`docs/REPLICATION.md`):
//! in-process pairs serving reads at the replay horizon, the read-only
//! refusal codes, catalog propagation through epoch-versioned images,
//! lag shedding, replica restart, and the `repl_*` metric families.

use std::path::PathBuf;
use std::sync::Arc;

use exodus_server::{
    AdmissionConfig, RemoteSession, RemoteStream, Server, TcpTransport, WireReplica,
};
use extra_excess::db::replication::{Replica, ReplicaOptions};
use extra_excess::db::validate_exposition;
use extra_excess::db::Client;
use extra_excess::{Database, DbError, Durability, Value};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("exodus-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn primary(dir: &std::path::Path) -> Arc<Database> {
    Database::builder()
        .path(dir.join("primary.vol"))
        .durability(Durability::Fsync)
        .build()
        .unwrap()
}

fn seed(db: &Arc<Database>) {
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4);
        create { own ref Person } People;
        append to People (name = "ann", age = 30);
        append to People (name = "bob", age = 41);
        append to People (name = "cey", age = 52);
        define function Doubled (p: Person) returns int4 as retrieve (p.age + p.age);
        define index ByAge on People (age);
    "#,
    )
    .unwrap();
}

/// Sorted row text for order-insensitive result comparison.
fn row_set(r: &extra_excess::QueryResult) -> Vec<String> {
    let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
    rows.sort();
    rows
}

#[test]
fn replica_serves_reads_and_refuses_writes_with_stable_codes() {
    let dir = temp_dir("basic");
    let p = primary(&dir);
    seed(&p);
    let mut replica =
        Replica::in_process(&p, dir.join("replica.vol"), ReplicaOptions::default()).unwrap();
    replica.pump_until_caught_up().unwrap();
    let rdb = replica.database();
    let mut rs = rdb.session();

    // Reads work, pinned at the replay horizon — including a shipped
    // function (its body re-parsed from the catalog image) and a
    // shipped secondary index.
    let r = rs
        .query("retrieve (P.name) from P in People where P.age > 35")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let r = rs
        .query("retrieve (Doubled(P)) from P in People where P.name = \"ann\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(60)]]);

    // Writes and explicit transactions are refused with the stable,
    // non-retryable ReadOnly code (1007). Range declarations are pure
    // session state and stay allowed.
    rs.run("range of P is People").unwrap();
    for stmt in [
        "append to People (name = \"dee\", age = 60)",
        "delete P where P.age > 0",
        "begin",
        "define type T2 (x: int4)",
        "create user eve",
        "retrieve into Stash (P.age) from P in People",
        "explain retrieve (P.age) from P in People",
    ] {
        let err = rs.run(stmt).unwrap_err();
        assert_eq!(err.code(), 1007, "{stmt}: {err}");
        assert!(!err.is_retryable(), "{stmt}");
    }
    assert_eq!(rdb.checkpoint().unwrap_err().code(), 1007);
    assert_eq!(rdb.bulk_append("People", vec![]).unwrap_err().code(), 1007);

    // New commits on the primary stay invisible until the pump runs;
    // the horizon only ever moves forward.
    let h0 = replica.horizon();
    p.session()
        .run("append to People (name = \"dee\", age = 63)")
        .unwrap();
    let stale = rs.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(stale.rows.len(), 3);
    replica.pump_until_caught_up().unwrap();
    assert!(replica.horizon() > h0, "horizon must advance on commit");
    let fresh = rs.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(fresh.rows.len(), 4);
}

/// Conformance: at the same horizon, a replica session and a primary
/// snapshot session return identical rows — the replica is a readable
/// copy, not an approximation.
#[test]
fn replica_matches_primary_snapshot_at_same_horizon() {
    let dir = temp_dir("conform");
    let p = primary(&dir);
    seed(&p);
    let mut replica =
        Replica::in_process(&p, dir.join("replica.vol"), ReplicaOptions::default()).unwrap();
    replica.pump_until_caught_up().unwrap();

    let queries = [
        "retrieve (P.name, P.age) from P in People",
        "retrieve (P.name) from P in People where P.age > 35",
        "retrieve (max(P.age over P)) from P in People",
        "retrieve (Doubled(P)) from P in People",
    ];
    let mut ps = p.session();
    let mut rs = replica.database().session();
    for q in queries {
        assert_eq!(
            row_set(&ps.query(q).unwrap()),
            row_set(&rs.query(q).unwrap()),
            "{q}"
        );
    }
}

/// Catalog changes — new types, collections, users, grants — propagate
/// through a fresh epoch-versioned image on the next pump.
#[test]
fn catalog_changes_propagate_through_epoch_images() {
    let dir = temp_dir("epoch");
    let p = primary(&dir);
    seed(&p);
    let mut replica =
        Replica::in_process(&p, dir.join("replica.vol"), ReplicaOptions::default()).unwrap();
    replica.pump_until_caught_up().unwrap();

    // Auth shipped with the image: a user unknown to the image cannot
    // read on the replica.
    {
        let mut eve = replica.database().session_as("eve");
        let err = eve.run("retrieve (P.name) from P in People").unwrap_err();
        assert_eq!(err.code(), 1003, "{err}");
    }

    // DDL + grants on the primary...
    p.session()
        .run(
            r#"
            define type City (name: varchar, pop: int4);
            create { own City } Cities;
            append to Cities (name = "madison", pop = 250000);
            create user eve;
            grant read on People to eve;
        "#,
        )
        .unwrap();
    replica.pump_until_caught_up().unwrap();

    // ...are all visible after the pump: the new collection queries,
    // and the grant admits the user.
    let mut rs = replica.database().session();
    let r = rs.query("retrieve (C.pop) from C in Cities").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(250000)]]);
    let mut eve = replica.database().session_as("eve");
    assert_eq!(
        eve.query("retrieve (P.name) from P in People")
            .unwrap()
            .rows
            .len(),
        3
    );
}

/// With a configured lag bound, reads on a trailing replica shed with
/// the retryable Lagging code (2004) and recover once caught up.
#[test]
fn lag_bound_sheds_reads_until_caught_up() {
    let dir = temp_dir("lag");
    let p = primary(&dir);
    seed(&p);
    let mut replica = Replica::in_process(
        &p,
        dir.join("replica.vol"),
        ReplicaOptions {
            max_lag: Some(4),
            batch_records: 4,
            ..ReplicaOptions::default()
        },
    )
    .unwrap();
    replica.pump_until_caught_up().unwrap();

    // Build a backlog far past the bound, then apply only one small
    // batch so the measured lag lands above it.
    let mut ps = p.session();
    for i in 0..30 {
        ps.run(&format!("append to People (name = \"p{i}\", age = {i})"))
            .unwrap();
    }
    replica.pump().unwrap();
    assert!(replica.lag_records() > 4, "lag: {}", replica.lag_records());
    let mut rs = replica.database().session();
    let err = rs.query("retrieve (P.name) from P in People").unwrap_err();
    assert_eq!(err.code(), 2004, "{err}");
    assert!(err.is_retryable());

    replica.pump_until_caught_up().unwrap();
    assert_eq!(replica.lag_records(), 0);
    let r = rs.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(r.rows.len(), 33);
}

/// Introspection works on replicas: every `sys.*` view answers a
/// retrieve (never the ReadOnly refusal), `sys.replication` reports the
/// replica role with live horizon/lag — and the lag bound still sheds
/// sys reads exactly like data reads, because they ride the same
/// replica read path.
#[test]
fn sys_views_read_on_replicas_and_respect_lag_shedding() {
    let dir = temp_dir("sysviews");
    let p = primary(&dir);
    seed(&p);
    let mut replica = Replica::in_process(
        &p,
        dir.join("replica.vol"),
        ReplicaOptions {
            max_lag: Some(4),
            batch_records: 4,
            ..ReplicaOptions::default()
        },
    )
    .unwrap();
    replica.pump_until_caught_up().unwrap();
    let rdb = replica.database();
    let mut rs = rdb.session();

    // Every shipped view is readable — introspection is never refused
    // with the replica's ReadOnly code.
    for (name, _, _) in rdb.system_view_schemas() {
        rs.query(&format!("retrieve (v) from v in sys.{name}"))
            .unwrap_or_else(|e| panic!("sys.{name} refused on a replica: {e}"));
    }

    // The replication view reports this side's role and progress.
    let r = rs
        .query("retrieve (t.role, t.lag, t.max_lag) from t in sys.replication")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::str("replica"), Value::Int(0), Value::Int(4)]]
    );
    // ... and the primary's reports the shipping side.
    let r = p
        .session()
        .query("retrieve (t.role) from t in sys.replication")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("primary")]]);

    // Past the lag bound, sys reads shed with the same retryable
    // Lagging code as data reads — a trailing replica's introspection
    // must not pretend to be current.
    let mut ps = p.session();
    for i in 0..30 {
        ps.run(&format!("append to People (name = \"q{i}\", age = {i})"))
            .unwrap();
    }
    replica.pump().unwrap();
    assert!(replica.lag_records() > 4, "lag: {}", replica.lag_records());
    let err = rs
        .query("retrieve (m.name) from m in sys.metrics")
        .unwrap_err();
    assert_eq!(err.code(), 2004, "{err}");
    assert!(err.is_retryable());

    // Caught up again, introspection resumes and sees the replay work
    // in the replica's own counters.
    replica.pump_until_caught_up().unwrap();
    let r = rs
        .query(r#"retrieve (m.count) from m in sys.metrics where m.name = "repl_replayed_records_total""#)
        .unwrap();
    let Value::Int(replayed) = r.rows[0][0] else {
        panic!("counter is not an int");
    };
    assert!(replayed >= 30, "replayed only {replayed} records");
}

/// A replica restarted over its own volume recovers, reconnects, and
/// resumes replay from its local cursor to the primary's frontier.
#[test]
fn replica_restart_resumes_from_local_log() {
    let dir = temp_dir("restart");
    let p = primary(&dir);
    seed(&p);
    let rpath = dir.join("replica.vol");
    let h1 = {
        let mut replica = Replica::in_process(&p, &rpath, ReplicaOptions::default()).unwrap();
        replica.pump_until_caught_up().unwrap();
        replica.horizon()
    };

    // Progress on the primary while the replica is down.
    p.session()
        .run("append to People (name = \"late\", age = 77)")
        .unwrap();

    let mut replica = Replica::in_process(&p, &rpath, ReplicaOptions::default()).unwrap();
    replica.pump_until_caught_up().unwrap();
    assert!(replica.horizon() > h1, "horizon monotonic across restart");
    let mut rs = replica.database().session();
    let r = rs.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(r.rows.len(), 4);
}

/// The `repl_*` families are present in both expositions: shipped
/// counters on the primary, replayed counters plus the horizon and lag
/// instruments on the replica.
#[test]
fn repl_metrics_appear_in_prometheus_exposition() {
    let dir = temp_dir("metrics");
    let p = primary(&dir);
    seed(&p);
    let mut replica =
        Replica::in_process(&p, dir.join("replica.vol"), ReplicaOptions::default()).unwrap();
    replica.pump_until_caught_up().unwrap();

    let pexpo = p.metrics_snapshot().unwrap().to_prometheus();
    validate_exposition(&pexpo).unwrap();
    for family in [
        "repl_shipped_records_total",
        "repl_shipped_bytes_total",
        "repl_shipped_segments",
    ] {
        assert!(
            pexpo.contains(family),
            "primary exposition missing {family}"
        );
    }
    let shipped = p
        .metrics_snapshot()
        .unwrap()
        .counter("repl_shipped_records_total")
        .unwrap();
    assert!(shipped > 0, "source shipped nothing");

    let rexpo = replica
        .database()
        .metrics_snapshot()
        .unwrap()
        .to_prometheus();
    validate_exposition(&rexpo).unwrap();
    for family in [
        "repl_replayed_records_total",
        "repl_replayed_units_total",
        "repl_replayed_checkpoints_total",
        "repl_replayed_segments",
        "repl_horizon",
        "repl_lag_records",
        "repl_lag",
    ] {
        assert!(
            rexpo.contains(family),
            "replica exposition missing {family}"
        );
    }
    let snap = replica.database().metrics_snapshot().unwrap();
    assert_eq!(
        snap.counter("repl_replayed_records_total").unwrap(),
        shipped,
        "replayed must equal shipped after catch-up"
    );
    assert_eq!(
        snap.gauge("repl_horizon").unwrap() as u64,
        replica.horizon()
    );
}

/// A shipped checkpoint becomes a real checkpoint on the replica: the
/// local log is pruned and the store survives restart from it.
#[test]
fn shipped_checkpoints_prune_the_replica_log() {
    let dir = temp_dir("ckpt");
    let p = primary(&dir);
    seed(&p);
    let rpath = dir.join("replica.vol");
    let mut replica = Replica::in_process(&p, &rpath, ReplicaOptions::default()).unwrap();
    replica.pump_until_caught_up().unwrap();

    p.session()
        .run("append to People (name = \"post\", age = 9)")
        .unwrap();
    p.checkpoint().unwrap();
    replica.pump_until_caught_up().unwrap();
    let snap = replica.database().metrics_snapshot().unwrap();
    assert_eq!(snap.counter("repl_replayed_checkpoints_total").unwrap(), 1);

    // Restart the replica from its checkpointed volume: the rows are
    // all there without replaying pre-checkpoint history.
    drop(replica);
    let mut replica = Replica::in_process(&p, &rpath, ReplicaOptions::default()).unwrap();
    replica.pump_until_caught_up().unwrap();
    let r = replica
        .database()
        .session()
        .query("retrieve (P.name) from P in People")
        .unwrap();
    assert_eq!(r.rows.len(), 4);
}

/// The wire pair: a replica bootstrapped over EXOD/1 poll/batch frames
/// from a served primary behaves exactly like the in-process pair.
#[test]
fn wire_replica_replays_over_the_protocol() {
    let dir = temp_dir("wire");
    let p = primary(&dir);
    seed(&p);
    let server = Server::spawn(
        Arc::clone(&p),
        TcpTransport::bind("127.0.0.1:0").unwrap(),
        AdmissionConfig::default(),
    )
    .unwrap();

    let stream = RemoteStream::connect(server.addr()).unwrap();
    let mut replica = Replica::connect(
        dir.join("replica.vol"),
        Box::new(stream),
        ReplicaOptions::default(),
    )
    .unwrap();
    replica.pump_until_caught_up().unwrap();

    let mut rs = replica.database().session();
    let r = rs.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(r.rows.len(), 3);
    let err = rs
        .run("append to People (name = \"x\", age = 1)")
        .unwrap_err();
    assert_eq!(err.code(), 1007);

    // Writes arriving over the wire on the primary ship to the replica
    // on the next pump.
    let mut remote = RemoteSession::connect(server.addr(), "admin").unwrap();
    remote
        .run("append to People (name = \"wired\", age = 11)")
        .unwrap();
    replica.pump_until_caught_up().unwrap();
    let r = rs.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(r.rows.len(), 4);
}

/// The full `--replica-of` shape: a [`WireReplica`] pump keeping a
/// served read-only replica caught up, queried over its own EXOD/1
/// listener — writes refused end to end with the stable code.
#[test]
fn wire_replica_serves_its_own_listener() {
    let dir = temp_dir("wiresrv");
    let p = primary(&dir);
    seed(&p);
    let pserver = Server::spawn(
        Arc::clone(&p),
        TcpTransport::bind("127.0.0.1:0").unwrap(),
        AdmissionConfig::default(),
    )
    .unwrap();

    let wire = WireReplica::spawn(
        pserver.addr(),
        dir.join("replica.vol"),
        ReplicaOptions::default(),
        std::time::Duration::from_millis(10),
    )
    .unwrap();
    let rserver = Server::spawn(
        wire.database(),
        TcpTransport::bind("127.0.0.1:0").unwrap(),
        AdmissionConfig::default(),
    )
    .unwrap();

    let mut rsess = RemoteSession::connect(rserver.addr(), "admin").unwrap();
    let r = rsess.query("retrieve (P.name) from P in People").unwrap();
    assert_eq!(r.rows.len(), 3);
    let err = rsess
        .run("append to People (name = \"x\", age = 1)")
        .unwrap_err();
    assert_eq!(err.code(), 1007, "{err}");
    assert!(!err.is_retryable());

    // A commit on the primary becomes visible through the background
    // pump without any explicit pump call.
    p.session()
        .run("append to People (name = \"pumped\", age = 5)")
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let n = rsess
            .query("retrieve (P.name) from P in People")
            .unwrap()
            .rows
            .len();
        if n == 4 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pump thread never shipped the new row (still {n} rows)"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// An error on a replica session must not poison subsequent statements.
#[test]
fn refused_write_leaves_the_session_usable() {
    let dir = temp_dir("usable");
    let p = primary(&dir);
    seed(&p);
    let mut replica =
        Replica::in_process(&p, dir.join("replica.vol"), ReplicaOptions::default()).unwrap();
    replica.pump_until_caught_up().unwrap();
    let rdb = replica.database();
    let mut rs = rdb.session();
    assert!(matches!(
        rs.run("append to People (name = \"x\", age = 1)"),
        Err(DbError::ReadOnly(_))
    ));
    assert_eq!(
        rs.query("retrieve (P.name) from P in People")
            .unwrap()
            .rows
            .len(),
        3
    );
}
