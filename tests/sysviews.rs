//! The `sys.*` virtual collections end to end: every shipped view is
//! retrievable with ordinary EXCESS, composes with filters,
//! projections, aggregates and `explain analyze`, requires no object
//! privilege, and — because a `SystemScan` is never parallelized —
//! produces identical rows and plans at every degree of parallelism.

use std::sync::Arc;

use extra_excess::{Database, TraceConfig, Value};

/// Schema and data shared by the scenarios.
fn seed(db: &Arc<Database>) {
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4);
        create { own ref Person } People;
        append to People (name = "ann", age = 30);
        append to People (name = "bob", age = 41);
        append to People (name = "cey", age = 52);
    "#,
    )
    .unwrap();
}

/// Every shipped view answers a bare retrieve, and rows match the
/// declared schema arity.
#[test]
fn every_view_is_retrievable() {
    let db = Database::in_memory();
    seed(&db);
    let mut s = db.session();
    for (name, _, fields) in db.system_view_schemas() {
        let r = s
            .query(&format!("retrieve (v) from v in sys.{name}"))
            .unwrap_or_else(|e| panic!("retrieve over sys.{name}: {e}"));
        for row in &r.rows {
            let Value::Tuple(attrs) = &row[0] else {
                panic!("sys.{name} row is not a tuple: {row:?}");
            };
            assert_eq!(
                attrs.len(),
                fields.len(),
                "sys.{name} row arity does not match its declared schema"
            );
        }
    }
    db.check_system_views().unwrap();
}

/// Filters, projections and aggregates compose over a system scan
/// exactly as over a stored collection.
#[test]
fn views_compose_with_the_query_surface() {
    let db = Database::in_memory();
    seed(&db);
    let mut s = db.session();

    // Projection + filter on sys.metrics.
    let r = s
        .query(r#"retrieve (m.name, m.count) from m in sys.metrics where m.name = "db_statements_total""#)
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::str("db_statements_total"));
    // seed ran 5 statements. The statement counter is bumped after a
    // statement completes, so the in-flight retrieve sees 5, not 6 —
    // the scan's snapshot is consistent with the counters as of its
    // own start.
    assert_eq!(r.rows[0][1], Value::Int(5));

    // Aggregate over a system scan.
    let r = s
        .query(r#"retrieve (count(m.name over m)) from m in sys.metrics where m.kind = "histogram""#)
        .unwrap();
    let Value::Int(histograms) = r.rows[0][0] else {
        panic!("count did not produce an int");
    };
    assert!(histograms >= 2, "expected statement_ns and merge_wait_ns");

    // sys.collections reports the live member count and analyze
    // freshness transitions.
    let r = s
        .query("retrieve (c.name, c.members, c.analyzed, c.fresh) from c in sys.collections")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![
            Value::str("People"),
            Value::Int(3),
            Value::Bool(false),
            Value::Bool(false),
        ]]
    );
    s.run("analyze People").unwrap();
    let r = s
        .query("retrieve (c.analyzed, c.analyzed_rows, c.fresh) from c in sys.collections")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Bool(true), Value::Int(3), Value::Bool(true)]]
    );
    s.run(r#"append to People (name = "dot", age = 63)"#).unwrap();
    let r = s
        .query("retrieve (c.members, c.fresh) from c in sys.collections")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Int(4), Value::Bool(false)]],
        "a post-analyze append must stale the stats"
    );

    // sys.transactions tallies the seed's autocommit writes.
    let r = s
        .query("retrieve (t.committed, t.active_snapshots) from t in sys.transactions")
        .unwrap();
    assert_eq!(r.rows.len(), 1, "sys.transactions is a single row");
    let Value::Int(committed) = r.rows[0][0] else {
        panic!("committed is not an int")
    };
    assert!(committed >= 4, "the seed committed at least 4 writes");

    // An unattached primary reports its role with null progress.
    let r = s
        .query("retrieve (t.role, t.lag) from t in sys.replication")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("primary"), Value::Null]]);

    // And `explain analyze` renders the SystemScan operator with
    // observed row counts.
    let e = s
        .explain_analyze(r#"retrieve (m.name) from m in sys.metrics where m.kind = "counter""#)
        .unwrap();
    let text = e.to_string();
    assert!(
        text.contains("SystemScan m over sys.metrics"),
        "plan does not show the system scan: {text}"
    );
    assert!(text.contains("rows="), "analyze carries actuals: {text}");
}

/// `sys.sessions` sees every open session with live statement counts;
/// `sys.slow_queries` attributes entries to the session that ran them.
#[test]
fn sessions_and_slow_queries_are_attributable() {
    let db = Database::builder()
        .trace(TraceConfig {
            slow_query_threshold_ns: 0,
            ..TraceConfig::default()
        })
        .build()
        .unwrap();
    seed(&db);
    let mut admin = db.session();
    let mut guest = db.session_as("guest");
    let guest_id = guest.session_id();
    // Fails on authorization, but still counts as a served statement.
    let _ = guest.query("retrieve (P.name) from P in People");

    let r = admin
        .query("retrieve (s.id, s.user_name, s.kind, s.statements, s.state) from s in sys.sessions")
        .unwrap();
    assert_eq!(r.rows.len(), 2, "both open sessions are visible");
    assert_eq!(r.rows[0][1], Value::str("admin"));
    assert_eq!(r.rows[1][1], Value::str("guest"));
    assert_eq!(r.rows[1][0], Value::Int(guest_id as i64));
    assert_eq!(r.rows[1][3], Value::Int(1), "guest served one statement");
    for row in &r.rows {
        assert_eq!(row[2], Value::str("local"));
        assert_eq!(row[4], Value::str("open"));
    }

    // The admin session's own row counts the sys.sessions retrieve.
    let r = admin
        .query(&format!(
            "retrieve (s.statements) from s in sys.sessions where s.id = {}",
            admin.session_id()
        ))
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));

    // A dropped session leaves the view.
    drop(guest);
    let r = admin
        .query("retrieve (s.id) from s in sys.sessions")
        .unwrap();
    assert_eq!(r.rows.len(), 1);

    // Zero threshold: every statement entered the slow-query log, each
    // attributed to its originating session and verb.
    let r = admin
        .query(&format!(
            "retrieve (q.verb) from q in sys.slow_queries where q.session = {guest_id}"
        ))
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("retrieve")]]);
    let r = admin
        .query(r#"retrieve (q.statement) from q in sys.slow_queries where q.verb = "append""#)
        .unwrap();
    assert_eq!(r.rows.len(), 3, "the seed's three appends");

    // sys.trace_spans surfaces the ring, filterable by span name.
    let r = admin
        .query(r#"retrieve (count(t.id over t)) from t in sys.trace_spans where t.name = "statement""#)
        .unwrap();
    let Value::Int(statements) = r.rows[0][0] else {
        panic!("span count is not an int")
    };
    assert!(statements >= 5, "seed statements traced, got {statements}");
}

/// Introspection needs no object privilege: a user with no grants can
/// read every `sys.*` view (while stored collections stay refused).
#[test]
fn introspection_requires_no_grants() {
    let db = Database::in_memory();
    seed(&db);
    db.session().run("create user intern").unwrap();
    let mut intern = db.session_as("intern");
    assert!(
        intern.query("retrieve (P.name) from P in People").is_err(),
        "the intern has no grant on People"
    );
    for (name, _, _) in db.system_view_schemas() {
        intern
            .query(&format!("retrieve (v) from v in sys.{name}"))
            .unwrap_or_else(|e| panic!("intern refused on sys.{name}: {e}"));
    }
}

/// A user-declared name shadows the reserved namespace: binding `sys`
/// as a range variable or collection keeps working, and the unknown-
/// view error lists what exists.
#[test]
fn sys_namespace_edges() {
    let db = Database::in_memory();
    seed(&db);
    let mut s = db.session();
    let err = s
        .query("retrieve (x.name) from x in sys.nope")
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("no system view 'sys.nope'") && err.contains("metrics"),
        "unhelpful unknown-view error: {err}"
    );
    // Nested paths under a view are rejected, not silently empty.
    let err = s
        .query("retrieve (x) from x in sys.metrics.name")
        .unwrap_err()
        .to_string();
    assert!(err.contains("nested"), "unexpected error: {err}");
    // A real collection named `sys` shadows the virtual namespace.
    s.run("create { own ref Person } sys").unwrap();
    let err = s
        .query("retrieve (x) from x in sys.metrics")
        .unwrap_err()
        .to_string();
    assert!(
        !err.contains("system view"),
        "user collection must shadow the sys namespace: {err}"
    );
}

/// DOP determinism by construction: a `SystemScan` is never wrapped in
/// a parallel operator, so plans and rows are identical at DOP 1 and
/// DOP 4 — for every shipped view, including the metric counters
/// themselves (the sys queries cost no parallel candidates).
#[test]
fn rows_and_plans_are_identical_at_dop_1_and_4() {
    let build = |dop: usize| {
        let db = Database::builder().worker_threads(dop).build().unwrap();
        seed(&db);
        db
    };
    let db1 = build(1);
    let db4 = build(4);
    let queries = [
        r#"retrieve (m.name, m.kind, m.count) from m in sys.metrics where m.kind = "counter""#,
        "retrieve (s.user_name, s.kind, s.statements) from s in sys.sessions",
        "retrieve (t.committed, t.aborted) from t in sys.transactions",
        "retrieve (c.name, c.members, c.fresh) from c in sys.collections",
        "retrieve (q.verb) from q in sys.slow_queries",
        "retrieve (t.name) from t in sys.trace_spans",
        "retrieve (r.role) from r in sys.replication",
    ];
    let mut s1 = db1.session();
    let mut s4 = db4.session();
    for q in queries {
        let p1 = s1.explain(q).unwrap().plan;
        let p4 = s4.explain(q).unwrap().plan;
        assert_eq!(p1, p4, "plans diverge across DOP for: {q}");
        assert!(
            !p1.contains("Parallel"),
            "a system scan must never be parallelized: {p1}"
        );
        let r1 = s1.query(q).unwrap();
        let r4 = s4.query(q).unwrap();
        assert_eq!(r1.columns, r4.columns, "columns diverge for: {q}");
        assert_eq!(r1.rows, r4.rows, "rows diverge across DOP for: {q}");
    }
}
