//! Figure-fidelity tests: every concrete EXTRA/EXCESS fragment attested in
//! the paper, reproduced as executable behaviour. IDs `F1`–`F12` map to
//! the figure reproduction index in DESIGN.md.

use extra_excess::{Database, DbError, Value};

/// The paper's running schema: Person / Department / Employee with a Date
/// ADT attribute, a `ref` department, and an `own ref` kids set.
fn university_db() -> (
    std::sync::Arc<extra_excess::db::Database>,
    extra_excess::Session,
) {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (
            name: varchar,
            ssnum: int4,
            birthday: Date,
            kids: { own ref Person }
        );
        define type Department (dname: varchar, floor: int4, budget: float8);
        define type Employee inherits Person (
            salary: float8,
            dept: ref Department
        );
        create { own ref Department } Departments;
        create { own ref Employee } Employees;
    "#,
    )
    .unwrap();
    (db, s)
}

fn seed(s: &mut extra_excess::Session) {
    s.run(r#"
        append to Departments (dname = "toy", floor = 2, budget = 100000.0);
        append to Departments (dname = "shoe", floor = 1, budget = 50000.0);
        append to Employees (name = "ann", ssnum = 1, birthday = Date("8/29/1953"), salary = 45000.0);
        append to Employees (name = "bob", ssnum = 2, birthday = Date("1/2/1961"), salary = 52000.0);
        append to Employees (name = "cal", ssnum = 3, birthday = Date("7/4/1949"), salary = 38000.0);
        range of E is Employees;
        range of D is Departments;
        replace E (dept = D) where E.name = "ann" and D.dname = "toy";
        replace E (dept = D) where E.name = "bob" and D.dname = "toy";
        replace E (dept = D) where E.name = "cal" and D.dname = "shoe";
        append to E.kids (name = "annjr", ssnum = 11, birthday = Date("3/3/1980")) where E.name = "ann";
        append to E.kids (name = "bobjr", ssnum = 21, birthday = Date("4/4/1982")) where E.name = "bob";
        append to E.kids (name = "bobsis", ssnum = 22, birthday = Date("5/5/1984")) where E.name = "bob";
    "#)
    .unwrap();
}

// ---------------------------------------------------------------------------
// F1 — Figure 1: define type Person (tuple type with a Date ADT attribute)
// ---------------------------------------------------------------------------

#[test]
fn f1_define_person() {
    let (_db, mut s) = university_db();
    // The types exist and inheritance flattened Person into Employee.
    let r = s
        .query(r#"retrieve (1) from E in Employees where E.name = "nobody""#)
        .unwrap();
    assert!(r.is_empty());
    // Defining the same type twice is an error.
    let err = s.run("define type Person (x: int4)").unwrap_err();
    assert!(matches!(err, DbError::Model(_)), "{err}");
}

// ---------------------------------------------------------------------------
// F2 — separation of type and instance: create sets, single objects, arrays
// ---------------------------------------------------------------------------

#[test]
fn f2_create_instances() {
    let (_db, mut s) = university_db();
    seed(&mut s);
    // Multiple collections of one type.
    s.run("create { own ref Employee } Interns").unwrap();
    s.run(r#"append to Interns (name = "ivy", ssnum = 99, birthday = Date("6/6/2000"), salary = 1000.0)"#)
        .unwrap();
    assert_eq!(
        s.query("retrieve (I.name) from I in Interns")
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        s.query("retrieve (E.name) from E in Employees")
            .unwrap()
            .len(),
        3
    );
    // A named single object and a named array (paper: StarEmployee, TopTen).
    s.run("create Employee StarEmployee").unwrap();
    s.run("create [10] ref Employee TopTen").unwrap();
    s.run("create Date Today").unwrap();
    // Name collisions rejected.
    let err = s.run("create { own ref Employee } Employees").unwrap_err();
    assert!(matches!(err, DbError::Catalog(_)), "{err}");
}

// ---------------------------------------------------------------------------
// F3 — Figure 3: multiple-inheritance conflict resolved via renaming
// ---------------------------------------------------------------------------

#[test]
fn f3_inheritance_rename() {
    let (_db, mut s) = university_db();
    s.run(
        r#"
        define type Student (name: varchar, dept: ref Department, gpa: float8)
    "#,
    )
    .unwrap();
    // Student and Employee both carry a `dept`: inheriting both without
    // renaming is a conflict — "we provide no automatic resolution".
    let err = s
        .run("define type TA inherits Student, Employee (hours: int4)")
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("rename"),
        "conflict message should suggest renaming: {msg}"
    );
    // Figure 3's resolution: rename on both sides. (`name` also collides
    // between Student and Person-via-Employee.)
    s.run(
        "define type TA inherits \
         Student rename dept to enrolled_dept rename name to student_name, \
         Employee rename dept to works_in_dept \
         (hours: int4)",
    )
    .unwrap();
    s.run("create { own ref TA } TAs").unwrap();
    s.run(r#"append to TAs (student_name = "sam", name = "sam", hours = 20, salary = 9000.0, gpa = 3.5)"#)
        .unwrap();
    let r = s
        .query("retrieve (T.student_name, T.hours, T.salary) from T in TAs")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][1], Value::Int(20));
}

// ---------------------------------------------------------------------------
// F4 — nested-set query with implicit employee iteration
// ---------------------------------------------------------------------------

#[test]
fn f4_nested_set_query() {
    let (_db, mut s) = university_db();
    seed(&mut s);
    // Verbatim paper query: "retrieve (C.name) from C in Employees.kids
    // where Employees.dept.floor = 2".
    let r = s
        .query("retrieve (C.name) from C in Employees.kids where Employees.dept.floor = 2")
        .unwrap();
    let mut names: Vec<String> = r
        .rows
        .iter()
        .map(|row| match &row[0] {
            Value::Str(s) => s.clone(),
            other => panic!("{other:?}"),
        })
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec!["annjr", "bobjr", "bobsis"],
        "kids of 2nd-floor employees"
    );
    // The `range of C is Employees.kids` form is equivalent.
    let r2 = s
        .query(
            "range of C is Employees.kids; \
             retrieve (C.name) where Employees.dept.floor = 2",
        )
        .unwrap();
    assert_eq!(r2.rows.len(), 3);
}

// ---------------------------------------------------------------------------
// F5 — direct retrieval from named objects and arrays
// ---------------------------------------------------------------------------

#[test]
fn f5_direct_retrieval() {
    let (_db, mut s) = university_db();
    seed(&mut s);
    s.run("create Date Today").unwrap();
    // retrieve (Today) — a named single ADT object (initially null).
    let r = s.query("retrieve (Today)").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Null]]);
    // Named single schema object.
    s.run("create Employee StarEmployee").unwrap();
    s.run(r#"replace StarEmployee (name = "star", salary = 99000.0)"#)
        .unwrap();
    let r = s
        .query("retrieve (StarEmployee.name, StarEmployee.salary)")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::str("star"), Value::Float(99000.0)]]
    );
    // Array slots: retrieve (TopTen[1].name, TopTen[1].salary).
    s.run("create [10] ref Employee TopTen").unwrap();
    s.run(r#"append to TopTen[1] E where E.name = "bob""#)
        .unwrap();
    let r = s
        .query("retrieve (TopTen[1].name, TopTen[1].salary)")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("bob"), Value::Float(52000.0)]]);
    // Unfilled slots are null.
    let r = s.query("retrieve (TopTen[2])").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Null]]);
}

// ---------------------------------------------------------------------------
// F6 — is/isnot identity; own-ref exclusivity; integrity on delete
// ---------------------------------------------------------------------------

#[test]
fn f6_identity_and_integrity() {
    let (_db, mut s) = university_db();
    seed(&mut s);
    // `is` compares object identity: ann and bob share a department.
    let r = s
        .query(
            "retrieve (E.name, E2.name) from E in Employees, E2 in Employees \
             where E.dept is E2.dept and E.name = \"ann\" and E2.name = \"bob\"",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1, "same department object");
    // isnot.
    let r = s
        .query(
            "retrieve (E.name) from E in Employees \
             where E.dept isnot D and D.dname = \"toy\" \
             from D in Departments",
        )
        .unwrap_or_else(|_| {
            // from clauses must precede where; use the canonical order.
            s.query(
                "retrieve (E.name) from E in Employees, D in Departments \
                 where E.dept isnot D and D.dname = \"toy\"",
            )
            .unwrap()
        });
    assert_eq!(r.rows, vec![vec![Value::str("cal")]]);
    // Value comparison on refs is rejected.
    let err = s
        .query("retrieve (E.name) from E in Employees, D in Departments where E.dept = D")
        .unwrap_err();
    assert!(err.to_string().contains("is"), "{err}");

    // Own-ref exclusivity: a kid cannot join another employee's kids.
    let err = s
        .run(
            "range of E is Employees; range of C is Employees.kids; \
             append to E.kids C where E.name = \"cal\" and C.name = \"annjr\"",
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("own-ref") || err.to_string().contains("member"),
        "{err}"
    );

    // GEM-style null-out: deleting a department nulls employee refs.
    s.run("range of D is Departments; delete D where D.dname = \"toy\"")
        .unwrap();
    let r = s
        .query("retrieve (E.name) from E in Employees where E.dept is null")
        .unwrap();
    assert_eq!(r.rows.len(), 2, "ann and bob lost their department");

    // Cascade: deleting an employee deletes the kids.
    let before = s
        .query("retrieve (C.name) from C in Employees.kids")
        .unwrap();
    assert_eq!(before.rows.len(), 3);
    s.run("range of E is Employees; delete E where E.name = \"bob\"")
        .unwrap();
    let after = s
        .query("retrieve (C.name) from C in Employees.kids")
        .unwrap();
    assert_eq!(after.rows.len(), 1, "bob's kids died with him");
}

// ---------------------------------------------------------------------------
// F7 — the Complex ADT: both call syntaxes and the overloaded + operator
// ---------------------------------------------------------------------------

#[test]
fn f7_complex_adt() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type CnumPair (val1: Complex, val2: Complex);
        create { own CnumPair } Pairs;
        append to Pairs (val1 = Complex("(1, 2)"), val2 = Complex("(3, 4)"));
    "#,
    )
    .unwrap();
    // Method syntax: CnumPair.val1.Add(CnumPair.val2).
    let a = s
        .query("retrieve (P.val1.Add(P.val2)) from P in Pairs")
        .unwrap();
    // Symmetric syntax: Add(CnumPair.val1, CnumPair.val2).
    let b = s
        .query("retrieve (Add(P.val1, P.val2)) from P in Pairs")
        .unwrap();
    assert_eq!(a.rows, b.rows, "both call syntaxes are identical (§4.1)");
    // The overloaded + operator reaches the same function.
    let c = s
        .query("retrieve (P.val1 + P.val2) from P in Pairs")
        .unwrap();
    assert_eq!(a.rows, c.rows);
    match &a.rows[0][0] {
        Value::Adt(_, _) => {}
        other => panic!("expected a Complex, got {other:?}"),
    }
    let mag = s
        .query("retrieve (Magnitude(P.val1 + P.val2)) from P in Pairs")
        .unwrap();
    // (1+3, 2+4) = (4, 6); |(4,6)| = sqrt(52).
    match mag.rows[0][0] {
        Value::Float(f) => assert!((f - 52f64.sqrt()).abs() < 1e-9),
        ref other => panic!("{other:?}"),
    }
}

// ---------------------------------------------------------------------------
// F8 — aggregates with over/by; unique
// ---------------------------------------------------------------------------

#[test]
fn f8_aggregates_over_by() {
    let (_db, mut s) = university_db();
    seed(&mut s);
    // Plain aggregate over a fresh range.
    let r = s
        .query("retrieve (avg(E.salary over E)) from E in Employees")
        .unwrap();
    match r.rows[0][0] {
        Value::Float(f) => assert!((f - 45000.0).abs() < 1e-6),
        ref other => panic!("{other:?}"),
    }
    // Correlated aggregate: department payroll.
    let r = s
        .query(
            "retrieve (D.dname, total = sum(E.salary over E where E.dept is D)) \
             from D in Departments order by D.dname asc",
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("shoe"), Value::Float(38000.0)],
            vec![Value::str("toy"), Value::Float(97000.0)],
        ]
    );
    // Grouped (by) aggregate, correlated on the outer variable's value:
    // each employee sees their own department's average.
    let r = s
        .query(
            "retrieve (E.name, davg = avg(E2.salary over E2 by E2.dept where E2.dept isnot null)) \
             from E in Employees, E2 in Employees \
             where E.name = \"ann\" and E2.name = E.name",
        )
        .unwrap_or_else(|e| panic!("{e}"));
    let _ = r;
    // count over nested sets at different levels (paper §3.4: partitioning
    // across levels of a complex object).
    let r = s
        .query("retrieve (count(C over C)) from C in Employees.kids")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(3)]]);
    // count of a set-valued attribute — no over needed.
    let r = s
        .query("retrieve (E.name, n = count(E.kids)) from E in Employees order by E.name asc")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("ann"), Value::Int(1)],
            vec![Value::str("bob"), Value::Int(2)],
            vec![Value::str("cal"), Value::Int(0)],
        ]
    );
    // unique renders SQL-style unique clauses unnecessary [Klau85].
    let r = s
        .query("retrieve (unique(E.dept.dname over E)) from E in Employees")
        .unwrap();
    match &r.rows[0][0] {
        Value::Set(items) => assert_eq!(items.len(), 2),
        other => panic!("{other:?}"),
    }
    // min/max on an ADT (Date is ordered).
    let r = s
        .query("retrieve (min(E.birthday over E)) from E in Employees")
        .unwrap();
    match &r.rows[0][0] {
        Value::Adt(_, _) => {}
        other => panic!("{other:?}"),
    }
}

// ---------------------------------------------------------------------------
// F9 — EXCESS functions (inherited) and procedures (where-bound)
// ---------------------------------------------------------------------------

#[test]
fn f9_functions_procedures() {
    let (_db, mut s) = university_db();
    seed(&mut s);
    // A derived attribute on Person, inherited by Employee.
    s.run(
        "define function FirstInitial (p: Person) returns varchar \
         as retrieve (p.name)",
    )
    .unwrap();
    let r = s
        .query("retrieve (E.FirstInitial()) from E in Employees where E.name = \"ann\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("ann")]]);
    // Function defined for Employee, both syntaxes.
    s.run(
        "define function Monthly (e: Employee) returns float8 \
         as retrieve (e.salary / 12.0)",
    )
    .unwrap();
    let a = s
        .query("retrieve (Monthly(E)) from E in Employees where E.name = \"bob\"")
        .unwrap();
    let b = s
        .query("retrieve (E.Monthly()) from E in Employees where E.name = \"bob\"")
        .unwrap();
    assert_eq!(a.rows, b.rows);
    // A set-returning function.
    s.run(
        "define function KidsOf (e: Employee) returns { ref Person } \
         as retrieve (C) from C in e.kids",
    )
    .unwrap();
    let r = s
        .query("retrieve (count(E.KidsOf())) from E in Employees where E.name = \"bob\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);

    // Procedures: where-bound parameters, "invoked for all possible
    // bindings (instead of just once, with constant parameters)".
    s.run(
        "define procedure GiveRaise (amount: float8, dn: varchar) as \
         replace E (salary = E.salary + amount) where E.dept.dname = dn end",
    )
    .unwrap();
    s.run("range of E is Employees").unwrap();
    // One binding per department: everyone gets a floor-proportional raise.
    s.run("execute GiveRaise(D.floor * 1000.0, D.dname) where D.budget > 0.0")
        .unwrap_or_else(|e| panic!("{e}"));
    let r = s
        .query("retrieve (E.name, E.salary) order by E.name asc")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("ann"), Value::Float(47000.0)],
            vec![Value::str("bob"), Value::Float(54000.0)],
            vec![Value::str("cal"), Value::Float(39000.0)],
        ]
    );
}

// ---------------------------------------------------------------------------
// F10 — authorization: grants, groups, data abstraction via functions
// ---------------------------------------------------------------------------

#[test]
fn f10_authorization() {
    let (_db, mut s) = university_db();
    seed(&mut s);
    s.run(
        r#"
        create user alice;
        create user bob;
        create group staff;
        add user alice to group staff;
        grant read on Employees to staff;
        grant read on Departments to all_users
    "#,
    )
    .unwrap();
    let db = _db;
    // alice reads through her group.
    let mut alice = db.session_as("alice");
    assert_eq!(
        alice
            .query("retrieve (E.name) from E in Employees")
            .unwrap()
            .len(),
        3
    );
    // bob cannot read Employees, but all_users covers Departments.
    let mut bobs = db.session_as("bob");
    let err = bobs
        .query("retrieve (E.name) from E in Employees")
        .unwrap_err();
    assert!(matches!(err, DbError::Auth(_)), "{err}");
    assert_eq!(
        bobs.query("retrieve (D.dname) from D in Departments")
            .unwrap()
            .len(),
        2
    );
    // Updates need their own privilege.
    let err = alice
        .run("range of E is Employees; delete E where E.name = \"cal\"")
        .unwrap_err();
    assert!(matches!(err, DbError::Auth(_)), "{err}");
    // Revoke works.
    s.run("revoke read on Employees from staff").unwrap();
    let err = alice
        .query("retrieve (E.name) from E in Employees")
        .unwrap_err();
    assert!(matches!(err, DbError::Auth(_)), "{err}");
    // Non-admins cannot grant.
    let err = alice.run("grant read on Employees to alice").unwrap_err();
    assert!(matches!(err, DbError::Auth(_)), "{err}");

    // Function execution is itself a privilege: alice (read on
    // Employees) cannot call a function she was not granted.
    s.run("define function Salary2 (e: Employee) returns float8 as retrieve (e.salary)")
        .unwrap();
    s.run("grant read on Employees to alice").unwrap();
    let err = alice
        .query("retrieve (E.Salary2()) from E in Employees")
        .unwrap_err();
    assert!(matches!(err, DbError::Auth(_)), "{err}");
    s.run("grant execute on Salary2 to alice").unwrap();
    alice
        .query("retrieve (E.Salary2()) from E in Employees")
        .unwrap();

    // Data abstraction (§4.2.3): grant access only through a procedure —
    // the body runs with definer rights.
    s.run(
        "define procedure Anonymize (nm: varchar) as \
         range of X is Employees; \
         replace X (name = \"redacted\") where X.name = nm end; \
         grant execute on Anonymize to bob",
    )
    .unwrap();
    bobs.run("execute Anonymize(\"cal\")").unwrap();
    let r = s
        .query("retrieve (E.name) from E in Employees where E.name = \"redacted\"")
        .unwrap();
    assert_eq!(
        r.rows.len(),
        1,
        "procedure mutated what bob could not touch directly"
    );
}

// ---------------------------------------------------------------------------
// F11 — universal quantification in range statements
// ---------------------------------------------------------------------------

#[test]
fn f11_universal_quantification() {
    let (_db, mut s) = university_db();
    seed(&mut s);
    // Departments where ALL employees of the database earn less than the
    // budget (holds for both) vs a tighter bound (holds for neither).
    // toy budget 100000 clears every salary; shoe (50000) does not clear
    // bob's 52000.
    let r = s
        .query(
            "range of E is all Employees; \
             retrieve (D.dname) from D in Departments where E.salary < D.budget",
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::str("toy")]],
        "only toy's budget dominates all salaries"
    );
    // Tighter bound: toy/2 = 50000 still fails on bob.
    let r = s
        .query(
            "range of E is all Employees; \
             retrieve (D.dname) from D in Departments \
             where E.salary < D.budget / 2.0",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 0);
    // Universal over an empty set is vacuously true.
    s.run("create { own ref Employee } Nobody").unwrap();
    let r = s
        .query(
            "range of N is all Nobody; \
             retrieve (D.dname) from D in Departments where N.salary > 0.0",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2, "vacuous truth");
}

// ---------------------------------------------------------------------------
// F12 — updates: append/delete/replace over nested targets
// ---------------------------------------------------------------------------

#[test]
fn f12_updates() {
    let (_db, mut s) = university_db();
    seed(&mut s);
    // Nested append (tested in seed) and nested delete:
    s.run(
        "range of E is Employees; range of C is E.kids; \
         delete C where C.name = \"bobsis\"",
    )
    .unwrap();
    let r = s
        .query("retrieve (C.name) from C in Employees.kids")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    // The deleted own-ref kid no longer exists anywhere.
    let r = s
        .query("retrieve (C.name) from C in Employees.kids where C.name = \"bobsis\"")
        .unwrap();
    assert!(r.is_empty());
    // Replace through a nested binding.
    s.run(
        "range of E is Employees; range of C is E.kids; \
         replace C (ssnum = 999) where C.name = \"annjr\"",
    )
    .unwrap();
    let r = s
        .query("retrieve (C.ssnum) from C in Employees.kids where C.name = \"annjr\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(999)]]);
    // Set-oriented replace: everyone on floor 2 gets a raise (the paper's
    // canonical update).
    s.run(
        "range of E is Employees; \
         replace E (salary = E.salary * 1.1) where E.dept.floor = 2",
    )
    .unwrap();
    let r = s
        .query("retrieve (E.salary) from E in Employees where E.name = \"ann\"")
        .unwrap();
    match r.rows[0][0] {
        Value::Float(f) => assert!((f - 49500.0).abs() < 1e-6),
        ref other => panic!("{other:?}"),
    }
    // Whole-value append between collections.
    s.run("create { own ref Employee } Alumni").unwrap();
    let err = s
        .run("range of E is Employees; append to Alumni E where E.name = \"cal\"")
        .err();
    // An employee cannot be own-ref member of two sets (exclusivity) —
    // Employees already owns cal.
    assert!(err.is_some(), "own-ref exclusivity across collections");
    // But a ref-mode collection can share.
    s.run("create { ref Employee } Wall").unwrap();
    s.run("range of E is Employees; append to Wall E where E.name = \"cal\"")
        .unwrap();
    assert_eq!(
        s.query("retrieve (W.name) from W in Wall").unwrap().len(),
        1
    );
}
