//! The docs link gate: every relative markdown link in README.md,
//! DESIGN.md, ROADMAP.md, EXPERIMENTS.md, CHANGES.md, and docs/*.md
//! must point at a file that exists. A renamed doc page or a typo'd
//! `docs/…` path breaks the build here instead of shipping a 404.

use std::path::{Path, PathBuf};

/// Markdown files the gate covers: the top-level pages plus everything
/// under docs/.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = [
        "README.md",
        "DESIGN.md",
        "ROADMAP.md",
        "EXPERIMENTS.md",
        "CHANGES.md",
    ]
    .iter()
    .map(|f| root.join(f))
    .filter(|p| p.exists())
    .collect();
    let mut docs: Vec<PathBuf> = std::fs::read_dir(root.join("docs"))
        .expect("a docs/ directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    docs.sort();
    files.append(&mut docs);
    files
}

/// Pull `](target)` link targets out of markdown, skipping fenced code
/// blocks (frame tables and shell transcripts are full of brackets).
fn link_targets(markdown: &str) -> Vec<(usize, String)> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for (i, line) in markdown.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            rest = &rest[open + 2..];
            let Some(close) = rest.find(')') else { break };
            targets.push((i + 1, rest[..close].trim().to_string()));
            rest = &rest[close + 1..];
        }
    }
    targets
}

#[test]
fn no_dangling_relative_links() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut dangling = Vec::new();
    let mut checked = 0;
    for file in doc_files(&root) {
        let text = std::fs::read_to_string(&file).unwrap();
        let dir = file.parent().unwrap();
        for (line, target) in link_targets(&text) {
            // External and intra-page links are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            // A relative link may carry a fragment: `DESIGN.md#11-…`.
            let path_part = target.split('#').next().unwrap();
            if !dir.join(path_part).exists() {
                dangling.push(format!(
                    "{}:{line}: dangling link to {target:?}",
                    file.strip_prefix(&root).unwrap().display()
                ));
            }
            checked += 1;
        }
    }
    assert!(
        dangling.is_empty(),
        "dangling doc links:\n{}",
        dangling.join("\n")
    );
    // The gate must actually be covering links — an extraction bug that
    // finds nothing would otherwise pass vacuously.
    assert!(checked >= 20, "only {checked} relative links checked");
}
