//! Language-semantics integration tests beyond the figure set: nulls,
//! sets, arrays, enums, `retrieve into`, runtime ADT registration,
//! DDL lifecycle, and error behaviour.

use std::sync::Arc;

use extra_excess::model::adt::{AdtFunction, AdtOperator, AdtReturn, AdtType, Assoc};
use extra_excess::model::{ModelError, ModelResult};
use extra_excess::{Database, DbError, Value};

fn small_db() -> (Arc<extra_excess::db::Database>, extra_excess::Session) {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Item (label: varchar, qty: int4, price: float8, tags: { varchar });
        create { own ref Item } Items;
        append to Items (label = "apple", qty = 10, price = 0.5);
        append to Items (label = "pear", qty = 3, price = 0.75);
        append to Items (label = "fig", qty = 0, price = 2.0);
    "#,
    )
    .unwrap();
    (db, s)
}

// ---------------------------------------------------------------------------
// Nulls
// ---------------------------------------------------------------------------

#[test]
fn null_comparisons_reject() {
    let (_db, mut s) = small_db();
    s.run(r#"append to Items (label = "ghost")"#).unwrap(); // qty, price null
                                                            // A null in a comparison never qualifies.
    let r = s
        .query("retrieve (I.label) from I in Items where I.qty >= 0")
        .unwrap();
    assert_eq!(r.rows.len(), 3, "ghost's null qty does not qualify");
    let r = s
        .query("retrieve (I.label) from I in Items where I.qty = null")
        .unwrap();
    assert!(r.is_empty(), "= null is never true; use `is null`");
    // Arithmetic propagates null, which then fails to qualify.
    let r = s
        .query("retrieve (I.label) from I in Items where I.qty + 1 > 0")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn is_null_on_references() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type A (name: varchar);
        define type B (tag: varchar, link: ref A);
        create { own ref A } As;
        create { own ref B } Bs;
        append to As (name = "target");
        append to Bs (tag = "wired");
        append to Bs (tag = "unwired");
        range of A1 is As;
        range of B1 is Bs;
        replace B1 (link = A1) where B1.tag = "wired";
    "#,
    )
    .unwrap();
    let r = s
        .query("retrieve (B1.tag) from B1 in Bs where B1.link is null")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("unwired")]]);
    let r = s
        .query("retrieve (B1.tag) from B1 in Bs where B1.link isnot null")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("wired")]]);
}

// ---------------------------------------------------------------------------
// Sets
// ---------------------------------------------------------------------------

#[test]
fn set_literals_and_operators() {
    let (_db, mut s) = small_db();
    let r = s
        .query(r#"retrieve (I.label) from I in Items where I.label in {"apple", "fig"}"#)
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let r = s.query(r#"retrieve ({1, 2} union {2, 3})"#).unwrap();
    match &r.rows[0][0] {
        Value::Set(m) => assert_eq!(m.len(), 3, "sets dedupe"),
        other => panic!("{other:?}"),
    }
    let r = s
        .query(r#"retrieve ({1, 2, 3} intersect {2, 3, 4})"#)
        .unwrap();
    match &r.rows[0][0] {
        Value::Set(m) => assert_eq!(m.len(), 2),
        other => panic!("{other:?}"),
    }
    let r = s.query(r#"retrieve ({1, 2, 3} minus {2})"#).unwrap();
    match &r.rows[0][0] {
        Value::Set(m) => assert_eq!(m.len(), 2),
        other => panic!("{other:?}"),
    }
    let r = s.query(r#"retrieve ({1, 2} contains 2)"#).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Bool(true)]]);
}

#[test]
fn nested_value_sets() {
    let (_db, mut s) = small_db();
    s.run(
        r#"
        range of I is Items;
        append to I.tags "fruit" where I.qty > 0;
        append to I.tags "cheap" where I.price < 0.6;
    "#,
    )
    .unwrap();
    let r = s
        .query(r#"retrieve (I.label) from I in Items where I.tags contains "cheap""#)
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("apple")]]);
    // Duplicate appends are absorbed by set semantics.
    s.run(r#"range of I is Items; append to I.tags "fruit" where I.qty > 0"#)
        .unwrap();
    let r = s
        .query("retrieve (count(I.tags)) from I in Items where I.label = \"apple\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
}

// ---------------------------------------------------------------------------
// Arrays & enums & char(n)
// ---------------------------------------------------------------------------

#[test]
fn fixed_arrays_are_one_based_and_bounded() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Probe (name: varchar);
        create [3] float8 Readings;
        append to Readings[1] 1.5;
        append to Readings[3] 3.5;
    "#,
    )
    .unwrap();
    let r = s
        .query("retrieve (Readings[1], Readings[2], Readings[3])")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Float(1.5), Value::Null, Value::Float(3.5)]]
    );
    let err = s.run("append to Readings[4] 9.0").unwrap_err();
    assert!(
        matches!(err, DbError::Model(ModelError::IndexOutOfRange { .. })),
        "{err}"
    );
    let err = s.run("append to Readings[0] 9.0").unwrap_err();
    assert!(
        matches!(err, DbError::Model(ModelError::IndexOutOfRange { .. })),
        "{err}"
    );
}

#[test]
fn char_length_enforced() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Code (code: char(3));
        create { own Code } Codes;
        append to Codes (code = "abc");
    "#,
    )
    .unwrap();
    let err = s.run(r#"append to Codes (code = "abcd")"#).unwrap_err();
    assert!(
        matches!(err, DbError::Model(ModelError::TypeMismatch { .. })),
        "{err}"
    );
}

#[test]
fn int_width_enforced() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Tiny (v: int1);
        create { own Tiny } Tinies;
        append to Tinies (v = 127);
    "#,
    )
    .unwrap();
    let err = s.run("append to Tinies (v = 128)").unwrap_err();
    assert!(
        matches!(err, DbError::Model(ModelError::TypeMismatch { .. })),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// retrieve into
// ---------------------------------------------------------------------------

#[test]
fn retrieve_into_materializes_a_named_set() {
    let (_db, mut s) = small_db();
    s.run(
        r#"
        range of I is Items;
        retrieve into Stocked (I.label, I.qty) where I.qty > 0
    "#,
    )
    .unwrap();
    let r = s
        .query("retrieve (S.label, S.qty) from S in Stocked order by S.qty desc")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("apple"), Value::Int(10)],
            vec![Value::str("pear"), Value::Int(3)],
        ]
    );
    // The snapshot does not track later changes.
    s.run("range of I is Items; replace I (qty = 99) where I.label = \"apple\"")
        .unwrap();
    let r = s
        .query("retrieve (S.qty) from S in Stocked where S.label = \"apple\"")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(10)]]);
    // Name collision.
    let err = s.run("retrieve into Stocked (1)").unwrap_err();
    assert!(matches!(err, DbError::Catalog(_)), "{err}");
}

// ---------------------------------------------------------------------------
// Runtime ADT registration — the dynamic-extensibility story
// ---------------------------------------------------------------------------

struct Fraction;

fn frac(v: &Value) -> ModelResult<(i64, i64)> {
    match v {
        Value::Adt(_, b) if b.len() == 16 => {
            let mut n = [0u8; 8];
            let mut d = [0u8; 8];
            n.copy_from_slice(&b[..8]);
            d.copy_from_slice(&b[8..]);
            Ok((i64::from_le_bytes(n), i64::from_le_bytes(d)))
        }
        other => Err(ModelError::AdtError(format!(
            "not a Fraction: {}",
            other.kind()
        ))),
    }
}

impl AdtType for Fraction {
    fn name(&self) -> &str {
        "Fraction"
    }
    fn parse(&self, literal: &str) -> ModelResult<Vec<u8>> {
        let (n, d) = literal
            .split_once('/')
            .ok_or_else(|| ModelError::AdtError("want n/d".into()))?;
        let n: i64 = n
            .trim()
            .parse()
            .map_err(|_| ModelError::AdtError("bad n".into()))?;
        let d: i64 = d
            .trim()
            .parse()
            .map_err(|_| ModelError::AdtError("bad d".into()))?;
        if d == 0 {
            return Err(ModelError::AdtError("zero denominator".into()));
        }
        let mut out = n.to_le_bytes().to_vec();
        out.extend_from_slice(&d.to_le_bytes());
        Ok(out)
    }
    fn display(&self, bytes: &[u8]) -> String {
        match frac(&Value::Adt(extra_excess::model::AdtId(0), bytes.to_vec())) {
            Ok((n, d)) => format!("{n}/{d}"),
            Err(_) => "<bad>".into(),
        }
    }
    fn ordered(&self) -> bool {
        true
    }
    fn key_encode(&self, bytes: &[u8]) -> Option<Vec<u8>> {
        let (n, d) = frac(&Value::Adt(extra_excess::model::AdtId(0), bytes.to_vec())).ok()?;
        let mut k = extra_excess::storage::encoding::KeyWriter::new();
        k.put_f64(n as f64 / d as f64);
        Some(k.into_bytes())
    }
    fn functions(&self) -> Vec<AdtFunction> {
        vec![AdtFunction {
            name: "FracMul".into(),
            arity: 2,
            returns: AdtReturn::SameAdt,
            body: std::sync::Arc::new(|args| {
                let (an, ad) = frac(&args[0])?;
                let (bn, bd) = frac(&args[1])?;
                let id = match &args[0] {
                    Value::Adt(id, _) => *id,
                    _ => unreachable!(),
                };
                let mut out = (an * bn).to_le_bytes().to_vec();
                out.extend_from_slice(&(ad * bd).to_le_bytes());
                Ok(Value::Adt(id, out))
            }),
        }]
    }
    fn operators(&self) -> Vec<AdtOperator> {
        vec![AdtOperator {
            symbol: "**".into(),
            precedence: 5,
            assoc: Assoc::Left,
            function: "FracMul".into(),
            arity: 2,
        }]
    }
}

#[test]
fn runtime_adt_registration_extends_parser_and_planner() {
    let db = Database::in_memory();
    // Before registration, Fraction is unknown and ** does not lex.
    let mut s = db.session();
    assert!(s.run("define type R (r: Fraction)").is_err());
    db.register_adt(Arc::new(Fraction)).unwrap();
    s.run(
        r#"
        define type Recipe (title: varchar, scale: Fraction);
        create { own ref Recipe } Recipes;
        append to Recipes (title = "bread", scale = Fraction("3/4"));
        append to Recipes (title = "cake", scale = Fraction("1/2"));
    "#,
    )
    .unwrap();
    // The new ** operator parses and evaluates.
    let r = s
        .query(r#"retrieve (x = R.scale ** Fraction("2/1")) from R in Recipes where R.title = "bread""#)
        .unwrap();
    match &r.rows[0][0] {
        Value::Adt(_, _) => {}
        other => panic!("{other:?}"),
    }
    // Ordered ADT: comparisons and indexes apply.
    let r = s
        .query(r#"retrieve (R.title) from R in Recipes where R.scale > Fraction("2/3")"#)
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("bread")]]);
    s.run("define index recipe_scale on Recipes (scale)")
        .unwrap();
    let plan = s
        .explain(r#"retrieve (R.title) from R in Recipes where R.scale = Fraction("1/2")"#)
        .unwrap()
        .plan;
    assert!(
        plan.contains("IndexScan"),
        "ADT key should use the index:\n{plan}"
    );
}

// ---------------------------------------------------------------------------
// DDL lifecycle
// ---------------------------------------------------------------------------

#[test]
fn drop_type_guards_dependents() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Base (x: int4);
        define type Derived inherits Base (y: int4);
    "#,
    )
    .unwrap();
    let err = s.run("drop type Base").unwrap_err();
    assert!(matches!(err, DbError::Catalog(_)), "{err}");
    s.run("drop type Derived").unwrap();
    s.run("drop type Base").unwrap();
    // Redefinable after drop.
    s.run("define type Base (z: varchar)").unwrap();
}

#[test]
fn destroy_collection_removes_members_and_name() {
    let (_db, mut s) = small_db();
    s.run("destroy Items").unwrap();
    let err = s.query("retrieve (I.label) from I in Items").unwrap_err();
    assert!(matches!(err, DbError::Sema(_)), "{err}");
    // The name is reusable.
    s.run("create { own ref Item } Items").unwrap();
    assert!(s
        .query("retrieve (I.label) from I in Items")
        .unwrap()
        .is_empty());
}

#[test]
fn functions_and_procedures_droppable() {
    let (_db, mut s) = small_db();
    s.run("define function Doubled (i: Item) returns int4 as retrieve (i.qty * 2)")
        .unwrap();
    s.run(
        "define procedure Zero (l: varchar) as \
           range of I is Items; replace I (qty = 0) where I.label = l end",
    )
    .unwrap();
    assert_eq!(
        s.query("retrieve (I.Doubled()) from I in Items where I.label = \"pear\"")
            .unwrap()
            .rows,
        vec![vec![Value::Int(6)]]
    );
    s.run("drop function Doubled").unwrap();
    assert!(s.query("retrieve (I.Doubled()) from I in Items").is_err());
    s.run("execute Zero(\"apple\")").unwrap();
    s.run("drop procedure Zero").unwrap();
    assert!(s.run("execute Zero(\"pear\")").is_err());
}

// ---------------------------------------------------------------------------
// Ordering, indexing, planner visibility
// ---------------------------------------------------------------------------

#[test]
fn order_by_and_explain() {
    let (_db, mut s) = small_db();
    let r = s
        .query("retrieve (I.label) from I in Items order by I.price asc")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::str("apple")],
            vec![Value::str("pear")],
            vec![Value::str("fig")],
        ]
    );
    s.run("define index item_qty on Items (qty)").unwrap();
    let plan = s
        .explain("retrieve (I.label) from I in Items where I.qty = 10")
        .unwrap()
        .plan;
    assert!(plan.contains("IndexScan"), "{plan}");
    let plan = s
        .explain("retrieve (I.label) from I in Items where I.label = \"apple\"")
        .unwrap()
        .plan;
    assert!(plan.contains("SeqScan"), "no index on label:\n{plan}");
}

#[test]
fn index_maintained_across_updates() {
    let (_db, mut s) = small_db();
    s.run("define index item_qty on Items (qty)").unwrap();
    s.run("range of I is Items; replace I (qty = 42) where I.label = \"fig\"")
        .unwrap();
    let r = s
        .query("retrieve (I.label) from I in Items where I.qty = 42")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("fig")]]);
    let r = s
        .query("retrieve (I.label) from I in Items where I.qty = 0")
        .unwrap();
    assert!(r.is_empty(), "stale index entry would resurrect qty = 0");
    s.run("range of I is Items; delete I where I.qty = 42")
        .unwrap();
    let r = s
        .query("retrieve (I.label) from I in Items where I.qty = 42")
        .unwrap();
    assert!(r.is_empty());
    s.run(r#"append to Items (label = "new", qty = 42, price = 1.0)"#)
        .unwrap();
    let r = s
        .query("retrieve (I.label) from I in Items where I.qty = 42")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("new")]]);
}

// ---------------------------------------------------------------------------
// Error reporting
// ---------------------------------------------------------------------------

#[test]
fn useful_error_messages() {
    let (_db, mut s) = small_db();
    let err = s.query("retrieve (I.nope) from I in Items").unwrap_err();
    assert!(err.to_string().contains("nope"), "{err}");
    let err = s
        .query("retrieve (I.label + 1) from I in Items")
        .unwrap_err();
    assert!(err.to_string().contains("number"), "{err}");
    let err = s.run("append to Items (nosuch = 1)").unwrap_err();
    assert!(err.to_string().contains("nosuch"), "{err}");
    let err = s.run("retrieve (").unwrap_err();
    assert!(matches!(err, DbError::Parse(_)), "{err}");
    let err = s.query("retrieve (X.label)").unwrap_err();
    assert!(err.to_string().contains('X'), "{err}");
}

// ---------------------------------------------------------------------------
// Division by zero and other runtime faults surface cleanly
// ---------------------------------------------------------------------------

#[test]
fn runtime_faults() {
    let (_db, mut s) = small_db();
    let err = s
        .query("retrieve (1 / I.qty) from I in Items where I.label = \"fig\"")
        .unwrap_err();
    assert!(err.to_string().contains("zero"), "{err}");
}
