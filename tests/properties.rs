//! Property tests: the engine must agree with a plain-Rust model of the
//! data under randomized workloads.

use proptest::prelude::*;

use extra_excess::{Database, Value};

#[derive(Debug, Clone)]
struct Emp {
    name: String,
    age: i64,
    salary: f64,
}

fn emp_strategy() -> impl Strategy<Value = Emp> {
    ("[a-z]{1,8}", 18i64..70, 1000u32..100_000).prop_map(|(name, age, sal)| Emp {
        name,
        age,
        salary: sal as f64,
    })
}

fn load(
    emps: &[Emp],
) -> (
    std::sync::Arc<extra_excess::db::Database>,
    extra_excess::Session,
) {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Person (name: varchar, age: int4, salary: float8);
        create { own ref Person } People;
        range of P is People
    "#,
    )
    .unwrap();
    let rows: Vec<Value> = emps
        .iter()
        .map(|e| {
            Value::Tuple(vec![
                Value::Str(e.name.clone()),
                Value::Int(e.age),
                Value::Float(e.salary),
            ])
        })
        .collect();
    db.bulk_append("People", rows).unwrap();
    (db, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A filtered retrieve returns exactly the model's rows.
    #[test]
    fn filter_matches_model(emps in prop::collection::vec(emp_strategy(), 0..40), cut in 18i64..70) {
        let (_db, mut s) = load(&emps);
        let r = s.query(&format!("retrieve (P.name) where P.age >= {cut}")).unwrap();
        let mut got: Vec<String> = r.rows.into_iter().map(|mut row| match row.remove(0) {
            Value::Str(n) => n,
            other => panic!("{other:?}"),
        }).collect();
        let mut expect: Vec<String> = emps.iter().filter(|e| e.age >= cut).map(|e| e.name.clone()).collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Aggregates agree with fold-based computation.
    #[test]
    fn aggregates_match_model(emps in prop::collection::vec(emp_strategy(), 1..40)) {
        let (_db, mut s) = load(&emps);
        let r = s.query("retrieve (count(P over P), sum(P.age over P), min(P.salary over P), max(P.salary over P))").unwrap();
        prop_assert_eq!(&r.rows[0][0], &Value::Int(emps.len() as i64));
        prop_assert_eq!(&r.rows[0][1], &Value::Int(emps.iter().map(|e| e.age).sum::<i64>()));
        let min = emps.iter().map(|e| e.salary).fold(f64::INFINITY, f64::min);
        let max = emps.iter().map(|e| e.salary).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(&r.rows[0][2], &Value::Float(min));
        prop_assert_eq!(&r.rows[0][3], &Value::Float(max));
    }

    /// order by produces a sorted permutation.
    #[test]
    fn order_by_sorts(emps in prop::collection::vec(emp_strategy(), 0..40)) {
        let (_db, mut s) = load(&emps);
        let r = s.query("retrieve (P.age) order by P.age asc").unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| match row[0] {
            Value::Int(a) => a,
            ref other => panic!("{other:?}"),
        }).collect();
        let mut expect: Vec<i64> = emps.iter().map(|e| e.age).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// delete-where removes exactly the qualifying rows; the rest survive
    /// untouched.
    #[test]
    fn delete_matches_model(emps in prop::collection::vec(emp_strategy(), 0..40), cut in 18i64..70) {
        let (_db, mut s) = load(&emps);
        s.run(&format!("delete P where P.age < {cut}")).unwrap();
        let r = s.query("retrieve (P.name, P.age)").unwrap();
        prop_assert_eq!(r.rows.len(), emps.iter().filter(|e| e.age >= cut).count());
        for row in &r.rows {
            match row[1] {
                Value::Int(a) => prop_assert!(a >= cut),
                ref other => panic!("{other:?}"),
            }
        }
    }

    /// replace-where updates exactly the qualifying rows.
    #[test]
    fn replace_matches_model(emps in prop::collection::vec(emp_strategy(), 0..40), cut in 18i64..70) {
        let (_db, mut s) = load(&emps);
        s.run(&format!("replace P (salary = 0.0) where P.age >= {cut}")).unwrap();
        let r = s.query("retrieve (P.age, P.salary)").unwrap();
        prop_assert_eq!(r.rows.len(), emps.len());
        for row in &r.rows {
            let (age, sal) = match (&row[0], &row[1]) {
                (Value::Int(a), Value::Float(s)) => (*a, *s),
                other => panic!("{other:?}"),
            };
            if age >= cut {
                prop_assert_eq!(sal, 0.0);
            } else {
                prop_assert!(sal > 0.0);
            }
        }
    }

    /// An indexed equality probe returns the same rows as a full scan.
    #[test]
    fn index_probe_matches_scan(emps in prop::collection::vec(emp_strategy(), 0..60), probe in 18i64..70) {
        let (db, mut s) = load(&emps);
        let q = format!("retrieve (P.name) where P.age = {probe}");
        let scan = s.query(&q).unwrap();
        s.run("define index people_age on People (age)").unwrap();
        let plan = s.explain(&q).unwrap().plan;
        prop_assert!(plan.contains("IndexScan"), "{}", plan);
        let probed = s.query(&q).unwrap();
        let sorted = |r: &extra_excess::QueryResult| {
            let mut v: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
            v.sort();
            v
        };
        prop_assert_eq!(sorted(&scan), sorted(&probed));
        let _ = db;
    }

    /// Universal quantification agrees with the model's `all`.
    #[test]
    fn universal_matches_model(emps in prop::collection::vec(emp_strategy(), 0..30), cut in 1000u32..100_000) {
        let cut = cut as f64;
        let (_db, mut s) = load(&emps);
        s.run("create { own ref Person } Probe").unwrap();
        s.run(r#"append to Probe (name = "probe", age = 1, salary = 1.0)"#).unwrap();
        let r = s.query(&format!(
            "range of Q is all People; \
             retrieve (X.name) from X in Probe where Q.salary < {cut}"
        )).unwrap();
        let expect = emps.iter().all(|e| e.salary < cut); // vacuous true on empty
        prop_assert_eq!(!r.rows.is_empty(), expect);
    }
}
