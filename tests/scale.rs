//! Scale, concurrency and deep-structure tests.

use std::sync::Arc;

use extra_excess::{Database, Value};

#[test]
fn ten_thousand_members_scan_filter_aggregate() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Row (k: int4, v: float8);
        create { own Row } Rows;
    "#,
    )
    .unwrap();
    let rows: Vec<Value> = (0..10_000)
        .map(|i| Value::Tuple(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]))
        .collect();
    db.bulk_append("Rows", rows).unwrap();
    let r = s
        .query("retrieve (count(R over R), sum(R.k over R)) from R in Rows")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(10_000));
    assert_eq!(r.rows[0][1], Value::Int((0..10_000i64).sum()));
    let r = s
        .query("retrieve (R.k) from R in Rows where R.k >= 9995")
        .unwrap();
    assert_eq!(r.rows.len(), 5);

    // Batched execution must not depend on how the 10k rows fall across
    // batch boundaries: a row-at-a-time run (batch size 1) and an odd
    // size that leaves a partial final batch agree with the default.
    // Each size gets its own builder-configured database over the same
    // deterministic data.
    let baseline = s
        .query("retrieve (R.k) from R in Rows where R.k >= 9995")
        .unwrap();
    for batch_size in [1, 1000, 1023] {
        let db2 = Database::builder().batch_size(batch_size).build().unwrap();
        let mut s2 = db2.session();
        s2.run(
            r#"
            define type Row (k: int4, v: float8);
            create { own Row } Rows;
        "#,
        )
        .unwrap();
        let rows: Vec<Value> = (0..10_000)
            .map(|i| Value::Tuple(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]))
            .collect();
        db2.bulk_append("Rows", rows).unwrap();
        let r = s2
            .query("retrieve (R.k) from R in Rows where R.k >= 9995")
            .unwrap();
        assert_eq!(baseline, r, "batch size {batch_size} diverged at scale");
    }
}

#[test]
fn large_member_values_spill_to_large_objects() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Doc (title: varchar, body: varchar);
        create { own ref Doc } Docs;
    "#,
    )
    .unwrap();
    let big = "lorem ipsum ".repeat(2_000); // ~24 KB, far past a page
    s.run(&format!(
        r#"append to Docs (title = "big", body = "{big}")"#
    ))
    .unwrap();
    s.run(r#"append to Docs (title = "small", body = "x")"#)
        .unwrap();
    let r = s
        .query(r#"retrieve (D.body) from D in Docs where D.title = "big""#)
        .unwrap();
    match &r.rows[0][0] {
        Value::Str(s) => assert_eq!(s.len(), big.len()),
        other => panic!("{other:?}"),
    }
    // Update the large value back down and up again.
    s.run(r#"range of D is Docs; replace D (body = "tiny") where D.title = "big""#)
        .unwrap();
    let r = s
        .query(r#"retrieve (D.body) from D in Docs where D.title = "big""#)
        .unwrap();
    assert_eq!(r.rows[0][0], Value::str("tiny"));
}

#[test]
fn parallel_readers() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Row (k: int4);
        create { own Row } Rows;
    "#,
    )
    .unwrap();
    db.bulk_append(
        "Rows",
        (0..2_000)
            .map(|i| Value::Tuple(vec![Value::Int(i)]))
            .collect(),
    )
    .unwrap();
    let mut handles = Vec::new();
    for t in 0..8 {
        let db: Arc<_> = db.clone();
        handles.push(std::thread::spawn(move || {
            let mut s = db.session();
            for round in 0..20 {
                let cut = (t * 100 + round) % 2000;
                let r = s
                    .query(&format!(
                        "retrieve (count(R over R where R.k >= {cut})) from R in Rows"
                    ))
                    .unwrap();
                assert_eq!(r.rows[0][0], Value::Int(2000 - cut));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn readers_interleaved_with_writers() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Row (k: int4);
        create { own Row } Rows;
    "#,
    )
    .unwrap();
    db.bulk_append(
        "Rows",
        (0..500)
            .map(|i| Value::Tuple(vec![Value::Int(i)]))
            .collect(),
    )
    .unwrap();
    let writer = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session();
            for i in 500..700 {
                s.run(&format!("append to Rows (k = {i})")).unwrap();
            }
        })
    };
    let reader = {
        let db = db.clone();
        std::thread::spawn(move || {
            let mut s = db.session();
            for _ in 0..50 {
                let r = s
                    .query("retrieve (count(R over R)) from R in Rows")
                    .unwrap();
                match r.rows[0][0] {
                    Value::Int(n) => assert!((500..=700).contains(&n), "monotonic count, got {n}"),
                    ref other => panic!("{other:?}"),
                }
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    let r = db
        .query("retrieve (count(R over R)) from R in Rows")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(700));
}

#[test]
fn four_level_inheritance_with_most_specific_dispatch() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type A (name: varchar);
        define type B inherits A (b: int4);
        define type C inherits B (c: int4);
        define type D inherits C (d: int4);
        create { own ref D } Ds;
        append to Ds (name = "deep", b = 1, c = 2, d = 3);
        define function Tag (x: A) returns varchar as retrieve ("A");
        define function Tag (x: C) returns varchar as retrieve ("C");
    "#,
    )
    .unwrap();
    // Attribute flattening across four levels.
    let r = s
        .query("retrieve (X.name, X.b, X.c, X.d) from X in Ds")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![
            Value::str("deep"),
            Value::Int(1),
            Value::Int(2),
            Value::Int(3)
        ]]
    );
    // Most specific overload: D is-a C is-a B is-a A; Tag-for-C wins.
    let r = s.query("retrieve (X.Tag()) from X in Ds").unwrap();
    assert_eq!(r.rows, vec![vec![Value::str("C")]]);
}

#[test]
fn deeply_nested_own_structures() {
    let db = Database::in_memory();
    let mut s = db.session();
    s.run(
        r#"
        define type Leaf (v: int4);
        define type Mid (label: varchar, leaves: { Leaf });
        define type Root (name: varchar, mids: { Mid });
        create { own Root } Roots;
    "#,
    )
    .unwrap();
    let leaf = |v: i64| Value::Tuple(vec![Value::Int(v)]);
    let mid = |l: &str, vs: &[i64]| {
        Value::Tuple(vec![
            Value::str(l),
            Value::Set(vs.iter().map(|&v| leaf(v)).collect()),
        ])
    };
    db.bulk_append(
        "Roots",
        vec![
            Value::Tuple(vec![
                Value::str("r1"),
                Value::Set(vec![mid("m1", &[1, 2]), mid("m2", &[3])]),
            ]),
            Value::Tuple(vec![
                Value::str("r2"),
                Value::Set(vec![mid("m3", &[4, 5, 6])]),
            ]),
        ],
    )
    .unwrap();
    // Two-level unnest through dependent ranges.
    let r = s
        .query(
            "retrieve (R.name, M.label, L.v) \
             from R in Roots, M in R.mids, L in M.leaves \
             where L.v >= 3 order by L.v asc",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 4);
    assert_eq!(
        r.rows[0],
        vec![Value::str("r1"), Value::str("m2"), Value::Int(3)]
    );
    assert_eq!(
        r.rows[3],
        vec![Value::str("r2"), Value::str("m3"), Value::Int(6)]
    );
    // Aggregate over the doubly nested level.
    let r = s
        .query("retrieve (sum(L.v over L)) from L in Roots.mids.leaves")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(21)]]);
}
