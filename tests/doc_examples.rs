//! Executes every fenced example in docs/EXCESS.md,
//! docs/OBSERVABILITY.md, and docs/REPLICATION.md.
//!
//! The docs promise that their `excess` blocks run top-to-bottom in
//! one session of a fresh database, and that `excess-error` blocks fail.
//! docs/REPLICATION.md additionally tags blocks `excess-replica`
//! (runs on a live read replica of the doc's primary) and
//! `excess-replica-error` (must be refused by the replica). This test
//! is that promise: a drifted example breaks the build. (The `rust`
//! blocks in docs/OBSERVABILITY.md and docs/REPLICATION.md run as
//! rustdoc doctests via the facade crate instead.)

use extra_excess::db::replication::{Replica, ReplicaOptions};
use extra_excess::{Database, Durability};

struct Block {
    lang: String,
    line: usize,
    code: String,
}

/// Pull fenced code blocks (``` ... ```) out of a markdown file.
fn fenced_blocks(markdown: &str) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut current: Option<Block> = None;
    for (i, line) in markdown.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("```") {
            match current.take() {
                Some(b) => blocks.push(b),
                None => {
                    current = Some(Block {
                        lang: rest.trim().to_string(),
                        line: i + 1,
                        code: String::new(),
                    })
                }
            }
        } else if let Some(b) = current.as_mut() {
            b.code.push_str(line);
            b.code.push('\n');
        }
    }
    assert!(current.is_none(), "unterminated code fence");
    blocks
}

/// Run every `excess` block of `doc` in one fresh session; `excess-error`
/// blocks must fail. Returns (blocks run, expected failures seen).
fn run_doc(doc_name: &str) -> (usize, usize) {
    let path = format!("{}/docs/{doc_name}", env!("CARGO_MANIFEST_DIR"));
    let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let blocks = fenced_blocks(&doc);

    let mut ran = 0;
    let mut expected_failures = 0;
    let db = Database::in_memory();
    let mut session = db.session();
    for b in &blocks {
        match b.lang.as_str() {
            "excess" => {
                session.run(&b.code).unwrap_or_else(|e| {
                    panic!(
                        "docs/{doc_name}:{}: example failed: {e}\n{}",
                        b.line, b.code
                    )
                });
                ran += 1;
            }
            "excess-error" => {
                assert!(
                    session.run(&b.code).is_err(),
                    "docs/{doc_name}:{}: example documented as an error succeeded:\n{}",
                    b.line,
                    b.code
                );
                expected_failures += 1;
            }
            _ => {}
        }
    }
    (ran, expected_failures)
}

/// Run docs/REPLICATION.md against a live primary/replica pair:
/// `excess` blocks on the primary (followed by a catch-up pump),
/// `excess-replica` blocks on the replica, `excess-replica-error`
/// blocks must be refused by the replica. Returns
/// (primary blocks, replica blocks, expected replica refusals).
fn run_replication_doc() -> (usize, usize, usize) {
    let path = format!("{}/docs/REPLICATION.md", env!("CARGO_MANIFEST_DIR"));
    let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let blocks = fenced_blocks(&doc);

    let dir = std::env::temp_dir().join(format!("exodus-doc-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Replication ships the WAL, so the doc's primary is file-backed.
    let primary = Database::builder()
        .path(dir.join("primary.vol"))
        .durability(Durability::Fsync)
        .build()
        .unwrap();
    let mut replica =
        Replica::in_process(&primary, dir.join("replica.vol"), ReplicaOptions::default()).unwrap();
    let mut on_primary = primary.session();
    let replica_db = replica.database();
    let mut on_replica = replica_db.session();

    let (mut ran_primary, mut ran_replica, mut refused) = (0, 0, 0);
    for b in &blocks {
        match b.lang.as_str() {
            "excess" => {
                on_primary.run(&b.code).unwrap_or_else(|e| {
                    panic!(
                        "docs/REPLICATION.md:{}: primary example failed: {e}\n{}",
                        b.line, b.code
                    )
                });
                // Every primary example is visible before the next block.
                replica.pump_until_caught_up().unwrap();
                ran_primary += 1;
            }
            "excess-replica" => {
                on_replica.run(&b.code).unwrap_or_else(|e| {
                    panic!(
                        "docs/REPLICATION.md:{}: replica example failed: {e}\n{}",
                        b.line, b.code
                    )
                });
                ran_replica += 1;
            }
            "excess-replica-error" => {
                let err = on_replica.run(&b.code).expect_err(&format!(
                    "docs/REPLICATION.md:{}: example documented as refused succeeded:\n{}",
                    b.line, b.code
                ));
                assert_eq!(
                    err.code(),
                    1007,
                    "docs/REPLICATION.md:{}: refusal should carry the read-only code: {err}",
                    b.line
                );
                refused += 1;
            }
            _ => {}
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    (ran_primary, ran_replica, refused)
}

#[test]
fn every_excess_example_runs() {
    let (ran, expected_failures) = run_doc("EXCESS.md");
    // The reference must actually exercise the language: a refactor that
    // drops the fences (or retags them) should fail loudly.
    assert!(ran >= 20, "only {ran} runnable examples found");
    assert!(
        expected_failures >= 3,
        "only {expected_failures} error examples found"
    );
}

#[test]
fn every_observability_example_runs() {
    let (ran, expected_failures) = run_doc("OBSERVABILITY.md");
    assert!(ran >= 2, "only {ran} runnable examples found");
    assert!(
        expected_failures >= 1,
        "only {expected_failures} error examples found"
    );
}

#[test]
fn every_replication_example_runs() {
    let (ran_primary, ran_replica, refused) = run_replication_doc();
    assert!(
        ran_primary >= 2,
        "only {ran_primary} primary examples found"
    );
    assert!(
        ran_replica >= 2,
        "only {ran_replica} replica examples found"
    );
    assert!(refused >= 3, "only {refused} refusal examples found");
}
