//! Executes every fenced example in docs/EXCESS.md and
//! docs/OBSERVABILITY.md.
//!
//! The docs promise that their `excess` blocks run top-to-bottom in
//! one session of a fresh database, and that `excess-error` blocks fail.
//! This test is that promise: a drifted example breaks the build. (The
//! `rust` block in docs/OBSERVABILITY.md runs as a rustdoc doctest via
//! the facade crate instead.)

use extra_excess::Database;

struct Block {
    lang: String,
    line: usize,
    code: String,
}

/// Pull fenced code blocks (``` ... ```) out of a markdown file.
fn fenced_blocks(markdown: &str) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut current: Option<Block> = None;
    for (i, line) in markdown.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("```") {
            match current.take() {
                Some(b) => blocks.push(b),
                None => {
                    current = Some(Block {
                        lang: rest.trim().to_string(),
                        line: i + 1,
                        code: String::new(),
                    })
                }
            }
        } else if let Some(b) = current.as_mut() {
            b.code.push_str(line);
            b.code.push('\n');
        }
    }
    assert!(current.is_none(), "unterminated code fence");
    blocks
}

/// Run every `excess` block of `doc` in one fresh session; `excess-error`
/// blocks must fail. Returns (blocks run, expected failures seen).
fn run_doc(doc_name: &str) -> (usize, usize) {
    let path = format!("{}/docs/{doc_name}", env!("CARGO_MANIFEST_DIR"));
    let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let blocks = fenced_blocks(&doc);

    let mut ran = 0;
    let mut expected_failures = 0;
    let db = Database::in_memory();
    let mut session = db.session();
    for b in &blocks {
        match b.lang.as_str() {
            "excess" => {
                session.run(&b.code).unwrap_or_else(|e| {
                    panic!(
                        "docs/{doc_name}:{}: example failed: {e}\n{}",
                        b.line, b.code
                    )
                });
                ran += 1;
            }
            "excess-error" => {
                assert!(
                    session.run(&b.code).is_err(),
                    "docs/{doc_name}:{}: example documented as an error succeeded:\n{}",
                    b.line,
                    b.code
                );
                expected_failures += 1;
            }
            _ => {}
        }
    }
    (ran, expected_failures)
}

#[test]
fn every_excess_example_runs() {
    let (ran, expected_failures) = run_doc("EXCESS.md");
    // The reference must actually exercise the language: a refactor that
    // drops the fences (or retags them) should fail loudly.
    assert!(ran >= 20, "only {ran} runnable examples found");
    assert!(
        expected_failures >= 3,
        "only {expected_failures} error examples found"
    );
}

#[test]
fn every_observability_example_runs() {
    let (ran, expected_failures) = run_doc("OBSERVABILITY.md");
    assert!(ran >= 2, "only {ran} runnable examples found");
    assert!(
        expected_failures >= 1,
        "only {expected_failures} error examples found"
    );
}
