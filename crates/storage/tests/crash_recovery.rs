//! Kill-at-every-point crash recovery tests.
//!
//! These run only with the `failpoints` feature (`cargo test -p
//! exodus-storage --features failpoints`): they arm deterministic crash
//! plans that make the N-th durable write fail — or tear, applying only
//! half its bytes — and every later write fail, simulating a process kill
//! at that exact moment. The database is then reopened (running recovery)
//! and the surviving state is compared against a replayed model.
//!
//! The contract under test: with [`Durability::Fsync`], after a crash at
//! *any* write, the database reopens to exactly the state produced by a
//! prefix of the committed units — every unit whose `commit()` returned is
//! present in full, the interrupted unit is present in full or absent in
//! full, and heap/B+-tree/LOB structures stay mutually consistent.
#![cfg(feature = "failpoints")]

use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use exodus_storage::btree::BTree;
use exodus_storage::buffer::BufferPool;
use exodus_storage::failpoint::{self, CrashPlan};
use exodus_storage::heap::HeapFile;
use exodus_storage::lob::{Lob, LobId};
use exodus_storage::{Durability, FileId, StorageManager, StorageResult};

/// Deterministic page numbers from unit 0's allocation order (page 0 is
/// volume metadata).
const HEAP_PAGE: u64 = 1;
const BTREE_ROOT: u64 = 2;
const LOB_FIRST: u64 = 3;
/// Dedicated statistics heap, mirroring the catalog's `analyze` payload
/// file: opaque serialized records, inserted once and updated in place
/// (with a size change, forcing relocation) on re-analyze.
const STATS_PAGE: u64 = 4;

const N_UNITS: usize = 6;

/// An analyze-style statistics payload: version-tagged and larger in v2,
/// so the in-place update must relocate the record.
fn stats_payload(version: u8) -> Vec<u8> {
    let mut p = format!("stats:Departments:v{version}:").into_bytes();
    p.extend((0..16 * version as usize).flat_map(|i| (i as u64).to_le_bytes()));
    p
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("exodus-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn open(dir: &Path) -> (StorageManager, exodus_storage::RecoveryReport) {
    StorageManager::open(&dir.join("vol.db"), 64, Durability::Fsync).expect("open + recovery")
}

fn ikey(v: i64) -> Vec<u8> {
    let mut k = exodus_storage::encoding::KeyWriter::new();
    k.put_i64(v);
    k.into_bytes()
}

/// Apply unit `i`'s mutations (unit 0 creates the structures). Mirrored
/// exactly by [`model_apply`].
fn apply_unit(pool: &Arc<BufferPool>, i: usize) -> StorageResult<()> {
    let heap = HeapFile::open(FileId(HEAP_PAGE));
    let tree = BTree::open(BTREE_ROOT);
    let lob = Lob::open(LobId(LOB_FIRST));
    let stats = HeapFile::open(FileId(STATS_PAGE));
    if i == 0 {
        let f = HeapFile::create(pool)?;
        assert_eq!(f, FileId(HEAP_PAGE), "allocation order changed");
        let t = BTree::create(pool)?;
        assert_eq!(t.root(), BTREE_ROOT, "allocation order changed");
        let l = Lob::create(pool)?;
        assert_eq!(l.id(), LobId(LOB_FIRST), "allocation order changed");
        let s = HeapFile::create(pool)?;
        assert_eq!(s, FileId(STATS_PAGE), "allocation order changed");
    }
    heap.insert(pool, format!("unit-{i}").as_bytes())?;
    tree.insert(pool, &ikey(i as i64), i as u64, true)?;
    if i == 1 {
        // First `analyze`: the serialized statistics record lands in the
        // dedicated file inside this unit.
        stats.insert(pool, &stats_payload(1))?;
    }
    if i == 4 {
        // Re-analyze: the payload is rewritten in place; v2 is larger,
        // so the update relocates the record within the logged unit.
        let (rid, _) = stats
            .scan(pool.clone())
            .map(|r| r.unwrap())
            .next()
            .expect("unit 1 committed before unit 4 runs");
        stats.update(pool, rid, &stats_payload(2))?;
    }
    if i == 3 {
        // A unit that also updates and deletes: the rid of unit 2's
        // record is found by scan, its content rewritten in place.
        let (rid, _) = heap
            .scan(pool.clone())
            .map(|r| r.unwrap())
            .find(|(_, data)| data == b"unit-2")
            .expect("unit 2 committed before unit 3 runs");
        heap.update(pool, rid, b"unit-2-updated")?;
        tree.delete(pool, &ikey(1), 1)?;
    }
    lob.append(pool, &[b'0' + i as u8; 4])?;
    Ok(())
}

/// In-memory mirror of the on-disk state after `m` units applied.
#[derive(Debug, PartialEq, Eq)]
struct Model {
    recs: Vec<Vec<u8>>,
    tree: Vec<(Vec<u8>, u64)>,
    lob: Vec<u8>,
    stats: Vec<Vec<u8>>,
}

impl Model {
    fn empty() -> Model {
        Model {
            recs: Vec::new(),
            tree: Vec::new(),
            lob: Vec::new(),
            stats: Vec::new(),
        }
    }

    fn after(m: usize) -> Model {
        let mut model = Model::empty();
        for i in 0..m {
            model.recs.push(format!("unit-{i}").into_bytes());
            model.tree.push((ikey(i as i64), i as u64));
            if i == 1 {
                model.stats.push(stats_payload(1));
            }
            if i == 4 {
                model.stats = vec![stats_payload(2)];
            }
            if i == 3 {
                let pos = model.recs.iter().position(|r| r == b"unit-2").unwrap();
                model.recs[pos] = b"unit-2-updated".to_vec();
                model.tree.retain(|(k, _)| k != &ikey(1));
            }
            model.lob.extend_from_slice(&[b'0' + i as u8; 4]);
        }
        model.recs.sort();
        model.tree.sort();
        model
    }
}

/// Read the actual state back. An absent setup unit (page 1 never became
/// a heap header) reads as the empty model.
fn snapshot(sm: &StorageManager) -> Model {
    use exodus_storage::page::{PageKind, PageView};
    let pool = sm.pool();
    let heap = HeapFile::open(FileId(HEAP_PAGE));
    // Setup may not have committed: page 1 then either does not exist or
    // is a zeroed allocation (kind Free) that no image ever restored.
    let is_header = pool
        .pin(HEAP_PAGE)
        .map(|p| p.with_read(|buf| PageView::new(buf).kind() == PageKind::HeapHeader))
        .unwrap_or(false);
    if !is_header {
        return Model::empty();
    }
    let mut recs: Vec<Vec<u8>> = heap
        .scan(pool.clone())
        .map(|r| r.expect("scan after recovery").1)
        .collect();
    recs.sort();
    let mut tree: Vec<(Vec<u8>, u64)> = BTree::open(BTREE_ROOT)
        .scan(pool.clone(), Bound::Unbounded, Bound::Unbounded)
        .map(|r| r.expect("btree scan after recovery"))
        .collect();
    tree.sort();
    let lob = Lob::open(LobId(LOB_FIRST))
        .read_all(pool)
        .expect("lob read after recovery");
    let mut stats: Vec<Vec<u8>> = HeapFile::open(FileId(STATS_PAGE))
        .scan(pool.clone())
        .map(|r| r.expect("stats scan after recovery").1)
        .collect();
    stats.sort();
    Model {
        recs,
        tree,
        lob,
        stats,
    }
}

/// Run the workload, one logged unit per `apply_unit`, stopping at the
/// first error (the injected crash). Returns how many units' commits
/// returned `Ok` — with sequential execution those are exactly units
/// `0..n` — and whether a further unit was in flight.
fn run_workload(sm: &StorageManager) -> (usize, bool) {
    for i in 0..N_UNITS {
        let r = (|| -> StorageResult<()> {
            let unit = sm.begin_unit()?;
            apply_unit(sm.pool(), i)?;
            unit.commit()
        })();
        if r.is_err() {
            return (i, true);
        }
        if i == 2 {
            // A mid-workload checkpoint: exercises image logging, volume
            // sync, and segment GC under crash injection. An interrupted
            // checkpoint changes no logical state.
            if sm.checkpoint().is_err() {
                return (i + 1, false);
            }
        }
    }
    (N_UNITS, false)
}

/// Crash after `after_writes` durable writes (optionally tearing the
/// crashing write), reopen, and check the recovered state.
fn crash_and_check(tag: &str, plan: CrashPlan) {
    let dir = temp_dir(tag);
    let (sm, _) = open(&dir);
    failpoint::arm(plan);
    let (committed, interrupted) = run_workload(&sm);
    let fired = failpoint::crashed();
    failpoint::disarm();
    drop(sm);
    if !fired {
        assert_eq!(committed, N_UNITS, "no crash fired; workload must finish");
    }

    let (sm, report) = open(&dir);
    let got = snapshot(&sm);
    let want_committed = Model::after(committed);
    let matches = if got == want_committed {
        true
    } else if interrupted {
        // The in-flight unit's commit record may have become durable just
        // before the crash (commit() errored later): then the whole unit
        // survives — atomically.
        got == Model::after(committed + 1)
    } else {
        false
    };
    assert!(
        matches,
        "{tag}: after crash (plan {plan:?}, report {report:?}) state is neither \
         {committed} nor {} committed units:\n{got:?}",
        committed + 1
    );

    // Idempotence: recovering again (a crash *during* recovery means it
    // simply runs again on restart) reaches the same state.
    drop(sm);
    let (sm, _) = open(&dir);
    assert_eq!(snapshot(&sm), got, "{tag}: second recovery diverged");
    drop(sm);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_at_every_point() {
    let _x = failpoint::exclusive();
    // Count the workload's durable writes on an uninstrumented run.
    let dir = temp_dir("count");
    let (sm, _) = open(&dir);
    failpoint::start_counting();
    let (committed, interrupted) = run_workload(&sm);
    let total = failpoint::writes_observed();
    failpoint::disarm();
    assert_eq!((committed, interrupted), (N_UNITS, false));
    assert_eq!(snapshot(&sm), Model::after(N_UNITS));
    assert!(total > 40, "workload too small to be interesting: {total}");
    drop(sm);
    let _ = std::fs::remove_dir_all(&dir);

    // Kill at every single write point, clean and torn.
    for n in 0..total {
        for torn in [false, true] {
            crash_and_check(
                "kill",
                CrashPlan {
                    after_writes: n,
                    torn,
                },
            );
        }
    }
}

#[test]
fn crash_during_recovery_is_idempotent() {
    let _x = failpoint::exclusive();
    // Set up a database that crashed mid-workload (torn, so recovery has
    // real page images to replay).
    let dir = temp_dir("double");
    let (sm, _) = open(&dir);
    failpoint::arm(CrashPlan {
        after_writes: 25,
        torn: true,
    });
    let (committed, interrupted) = run_workload(&sm);
    assert!(failpoint::crashed(), "plan must fire mid-workload");
    failpoint::disarm();
    drop(sm);

    // Count recovery's own durable writes.
    failpoint::start_counting();
    let (sm, report) = open(&dir);
    let rec_writes = failpoint::writes_observed();
    failpoint::disarm();
    assert!(
        report.pages_restored > 0,
        "fixture must give recovery work: {report:?}"
    );
    let want = snapshot(&sm);
    drop(sm);

    // Now crash recovery itself at every one of its write points (the
    // fixture's log is untouched by a failed recovery attempt only up to
    // truncation, which is itself idempotent), then let it finish.
    for n in 0..rec_writes {
        for torn in [false, true] {
            failpoint::arm(CrashPlan {
                after_writes: n,
                torn,
            });
            let attempt = StorageManager::open(&dir.join("vol.db"), 64, Durability::Fsync);
            let fired = failpoint::crashed();
            failpoint::disarm();
            drop(attempt);
            assert!(fired || n >= rec_writes, "plan at {n} should fire");
            let (sm, _) = open(&dir);
            assert_eq!(
                snapshot(&sm),
                want,
                "crash at recovery write {n} (torn={torn}) diverged"
            );
            drop(sm);
        }
    }
    // The original workload postcondition still holds.
    let (sm, _) = open(&dir);
    let got = snapshot(&sm);
    assert!(
        got == Model::after(committed) || (interrupted && got == Model::after(committed + 1)),
        "final state inconsistent: {got:?}"
    );
    drop(sm);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rows written by the two interleaved transactions of
/// [`interleaved_txn_commits_are_atomic`].
const T1_ROWS: [&[u8]; 2] = [b"t1-a", b"t1-b"];
const T2_ROWS: [&[u8]; 2] = [b"t2-a", b"t2-b"];

/// Run two write transactions whose commits interleave: T2 queues on the
/// writer gate before T1 commits, so with group commit T2's appends
/// overlap T1's commit fsync. Returns whether each commit returned `Ok`.
fn run_interleaved(sm: &StorageManager) -> [bool; 2] {
    let heap = HeapFile::open(FileId(HEAP_PAGE));
    // T1 opens and writes first; if the crash lands here, T2 never runs.
    let txn1 = match (|| -> StorageResult<exodus_storage::WriteTxn> {
        let txn = sm.begin_txn()?;
        for row in T1_ROWS {
            heap.insert_at(sm.pool(), row, txn.ts())?;
        }
        Ok(txn)
    })() {
        Ok(txn) => txn,
        Err(_) => return [false, false],
    };
    // T2 announces, then blocks on the writer gate T1 still holds; the
    // short sleep makes "announced" mean "blocked" in practice. (If the
    // scheduler defeats it the run degrades to serial commits, which
    // the postcondition also covers.)
    let (queued_tx, queued_rx) = std::sync::mpsc::channel::<()>();
    let sm2 = sm.clone();
    let t2 = std::thread::spawn(move || -> bool {
        queued_tx.send(()).ok();
        (|| -> StorageResult<()> {
            let txn = sm2.begin_txn()?;
            let heap = HeapFile::open(FileId(HEAP_PAGE));
            for row in T2_ROWS {
                heap.insert_at(sm2.pool(), row, txn.ts())?;
            }
            txn.commit().map(|_| ())
        })()
        .is_ok()
    });
    queued_rx.recv().expect("t2 announces before begin_txn");
    std::thread::sleep(std::time::Duration::from_millis(10));
    let ok1 = txn1.commit().is_ok();
    let ok2 = t2.join().expect("t2 thread");
    [ok1, ok2]
}

/// Sorted live rows of the test heap after recovery.
fn surviving_rows(sm: &StorageManager) -> Vec<Vec<u8>> {
    let mut rows: Vec<Vec<u8>> = HeapFile::open(FileId(HEAP_PAGE))
        .scan(sm.pool().clone())
        .map(|r| r.expect("scan after recovery").1)
        .collect();
    rows.sort();
    rows
}

/// Whether every row of `set` is in `rows` (`true`) or none is (`false`);
/// panics on a partial overlap — the atomicity violation under test.
fn all_or_nothing(tag: &str, rows: &[Vec<u8>], set: &[&[u8]]) -> bool {
    let n = set.iter().filter(|r| rows.iter().any(|g| g == *r)).count();
    assert!(
        n == 0 || n == set.len(),
        "{tag}: transaction torn apart: {n}/{} of {set:?} survived ({rows:?})",
        set.len()
    );
    n == set.len()
}

/// Satellite: crash at every durable-write point while two transactions
/// commit interleaved (T2 appending during T1's commit fsync — the
/// group-commit overlap), reopen, and assert per-transaction atomicity:
/// each transaction survives in full or not at all, T2 never survives
/// without T1 (log order), and a commit that returned `Ok` is durable.
#[test]
fn interleaved_txn_commits_are_atomic() {
    let _x = failpoint::exclusive();

    let setup = |dir: &Path| -> StorageManager {
        let (sm, _) = open(dir);
        let txn = sm.begin_txn().expect("setup txn");
        let f = HeapFile::create(sm.pool()).expect("create heap");
        assert_eq!(f, FileId(HEAP_PAGE), "allocation order changed");
        txn.commit().expect("setup commit");
        sm
    };

    // Size the kill loop on an uninstrumented run.
    let dir = temp_dir("ileave-count");
    let sm = setup(&dir);
    failpoint::start_counting();
    let oks = run_interleaved(&sm);
    let total = failpoint::writes_observed();
    failpoint::disarm();
    assert_eq!(oks, [true, true], "uninstrumented run must commit both");
    assert_eq!(
        surviving_rows(&sm).len(),
        4,
        "both transactions' rows visible"
    );
    drop(sm);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(total > 10, "workload too small to be interesting: {total}");

    for n in 0..total {
        for torn in [false, true] {
            let tag = format!("ileave n={n} torn={torn}");
            let dir = temp_dir("ileave");
            let sm = setup(&dir);
            failpoint::arm(CrashPlan {
                after_writes: n,
                torn,
            });
            let [ok1, ok2] = run_interleaved(&sm);
            failpoint::disarm();
            drop(sm);

            let (sm, report) = open(&dir);
            let rows = surviving_rows(&sm);
            let t1 = all_or_nothing(&tag, &rows, &T1_ROWS);
            let t2 = all_or_nothing(&tag, &rows, &T2_ROWS);
            assert!(
                !t2 || t1,
                "{tag}: T2 survived without T1 (log order broken); report {report:?}"
            );
            // An acknowledged commit is durable. (The converse is fine:
            // a commit whose fsync crashed may still have reached the
            // disk, or been made durable by the other's batch.)
            assert!(!ok1 || t1, "{tag}: T1 acknowledged but lost");
            assert!(!ok2 || t2, "{tag}: T2 acknowledged but lost");
            drop(sm);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Random single-op units with a random crash point: the survivors must be
/// exactly the committed prefix of ops (with the in-flight op all-or-
/// nothing), replayed against a `BTreeMap` model.
#[test]
fn prop_random_dml_random_crash() {
    let _x = failpoint::exclusive();
    // Deterministic xorshift so failures reproduce.
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for case in 0..30 {
        let ops: Vec<(u8, i64)> = (0..(5 + rng() % 20))
            .map(|_| ((rng() % 3) as u8, (rng() % 40) as i64))
            .collect();
        let crash_at = rng() % 120;
        let torn = rng() % 2 == 0;

        let dir = temp_dir(&format!("prop-{case}"));
        let (sm, _) = open(&dir);
        // Setup unit: heap + btree at the usual deterministic pages.
        {
            let unit = sm.begin_unit().unwrap();
            let f = HeapFile::create(sm.pool()).unwrap();
            assert_eq!(f, FileId(HEAP_PAGE));
            let t = BTree::create(sm.pool()).unwrap();
            assert_eq!(t.root(), BTREE_ROOT);
            unit.commit().unwrap();
        }
        failpoint::arm(CrashPlan {
            after_writes: crash_at,
            torn,
        });
        // Apply ops, each in its own unit; track the committed model and
        // the model with the in-flight op also applied.
        let heap = HeapFile::open(FileId(HEAP_PAGE));
        let tree = BTree::open(BTREE_ROOT);
        let mut committed: std::collections::BTreeMap<i64, u64> = Default::default();
        let mut next = committed.clone();
        let mut in_flight = false;
        for &(kind, k) in &ops {
            next = committed.clone();
            let r = (|| -> StorageResult<()> {
                let unit = sm.begin_unit()?;
                match kind {
                    0 | 1 => {
                        if let std::collections::btree_map::Entry::Vacant(e) = next.entry(k) {
                            heap.insert(sm.pool(), format!("k{k}").as_bytes())?;
                            tree.insert(sm.pool(), &ikey(k), k as u64, true)?;
                            e.insert(k as u64);
                        }
                    }
                    _ => {
                        if next.remove(&k).is_some() {
                            let (rid, _) = heap
                                .scan(sm.pool().clone())
                                .map(|r| r.unwrap())
                                .find(|(_, d)| d == format!("k{k}").as_bytes())
                                .expect("committed key has a record");
                            heap.delete(sm.pool(), rid)?;
                            tree.delete(sm.pool(), &ikey(k), k as u64)?;
                        }
                    }
                }
                unit.commit()
            })();
            match r {
                Ok(()) => committed = next.clone(),
                Err(_) => {
                    in_flight = true;
                    break;
                }
            }
        }
        failpoint::disarm();
        drop(sm);

        let (sm, _) = open(&dir);
        let mut got: Vec<Vec<u8>> = heap.scan(sm.pool().clone()).map(|r| r.unwrap().1).collect();
        got.sort();
        let tree_keys: Vec<u64> = tree
            .scan(sm.pool().clone(), Bound::Unbounded, Bound::Unbounded)
            .map(|r| r.unwrap().1)
            .collect();
        let render = |m: &std::collections::BTreeMap<i64, u64>| {
            let mut v: Vec<Vec<u8>> = m.keys().map(|k| format!("k{k}").into_bytes()).collect();
            v.sort();
            v
        };
        let ok = got == render(&committed) || (in_flight && got == render(&next));
        assert!(
            ok,
            "case {case} (crash_at {crash_at} torn {torn} ops {ops:?}):\n\
             got {got:?}\nwant {:?} (or +1 op)",
            render(&committed)
        );
        // Heap and index agree (catalog/data consistency).
        let mut heap_keys: Vec<u64> = got
            .iter()
            .map(|r| {
                std::str::from_utf8(r)
                    .unwrap()
                    .strip_prefix('k')
                    .unwrap()
                    .parse::<u64>()
                    .unwrap()
            })
            .collect();
        heap_keys.sort_unstable();
        let mut tk = tree_keys.clone();
        tk.sort_unstable();
        assert_eq!(heap_keys, tk, "case {case}: heap and B+-tree diverged");
        drop(sm);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
