//! Kill-at-every-point crash tests for the replica replay path.
//!
//! Runs only with the `failpoints` feature (`cargo test -p exodus-storage
//! --features failpoints`). The workload builds a primary whose commits
//! carry real timestamps (so the replay horizon advances), attaches a
//! [`ReplicationSource`], then drives a [`ReplicaApplier`] through
//! catch-up while a deterministic crash plan kills the replica at every
//! durable-write point — clean and torn, including mid-batch and inside
//! the shipped-checkpoint flush. After each kill the replica volume is
//! reopened (ordinary recovery over the local log), replay resumes from
//! the recovered cursor, and the test asserts the replica converges to
//! the primary's exact rows and horizon. A second test crashes the
//! *resumed* replay as well — the double-crash case — at every one of
//! its write points.

#![cfg(feature = "failpoints")]

use std::path::{Path, PathBuf};
use std::sync::Arc;

use exodus_storage::failpoint::{self, CrashPlan};
use exodus_storage::heap::HeapFile;
use exodus_storage::{
    Durability, FileId, ReplicaApplier, ReplicationSource, StorageManager, StorageResult,
};

/// Page 1 is the workload heap's header (first allocation of unit 1).
const HEAP_PAGE: u64 = 1;
const N_TXNS: usize = 6;
/// Small fetch batches so kills land on batch boundaries too.
const BATCH: usize = 4;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("exodus-replcrash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn open(path: &Path) -> StorageManager {
    let (sm, _) = StorageManager::open(path, 64, Durability::Fsync).expect("open + recovery");
    sm
}

/// Build the primary: a source attached from the start (pinning log GC,
/// so the mid-workload checkpoint ships instead of pruning), then
/// timestamped transactions — the horizon on the replica must end up at
/// this primary's clock.
fn setup_primary(dir: &Path) -> (StorageManager, ReplicationSource) {
    let sm = open(&dir.join("primary.vol"));
    let src = ReplicationSource::new(sm.pool().wal().unwrap().clone()).expect("attach source");
    let txn = sm.begin_txn().expect("setup txn");
    let f = HeapFile::create(sm.pool()).expect("create heap");
    assert_eq!(f, FileId(HEAP_PAGE), "allocation order changed");
    txn.commit().expect("setup commit");
    let heap = HeapFile::open(FileId(HEAP_PAGE));
    for i in 0..N_TXNS {
        let txn = sm.begin_txn().expect("txn");
        heap.insert_at(sm.pool(), format!("row-{i}").as_bytes(), txn.ts())
            .expect("insert");
        txn.commit().expect("commit");
        if i == 2 {
            // Mid-stream checkpoint: ships a Checkpoint record, so the
            // kill loop also crashes inside the replica's local
            // checkpoint (flush + volume sync + local log GC).
            sm.checkpoint().expect("checkpoint");
        }
    }
    (sm, src)
}

/// Sorted live rows of the workload heap.
fn rows(sm: &StorageManager) -> Vec<Vec<u8>> {
    let mut rows: Vec<Vec<u8>> = HeapFile::open(FileId(HEAP_PAGE))
        .scan(Arc::clone(sm.pool()))
        .map(|r| r.expect("scan").1)
        .collect();
    rows.sort();
    rows
}

/// Drive the applier to the source's durable frontier in small batches,
/// stopping at the first error (the injected crash).
fn catch_up(src: &ReplicationSource, app: &mut ReplicaApplier) -> StorageResult<()> {
    loop {
        let (entries, _) = src.fetch(app.applied_lsn(), BATCH)?;
        if entries.is_empty() {
            return Ok(());
        }
        app.ingest(&entries)?;
    }
}

/// Recover the replica volume at `path` and replay to completion,
/// asserting it converges exactly: same rows, same horizon, cursor at
/// the primary's durable frontier.
fn recover_and_converge(
    path: &Path,
    src: &ReplicationSource,
    want_rows: &[Vec<u8>],
    want_horizon: u64,
    tag: &str,
) {
    let rsm = open(path);
    let mut app = ReplicaApplier::new(rsm.clone()).expect("applier after recovery");
    let h_recovered = app.horizon();
    assert!(
        h_recovered <= want_horizon,
        "{tag}: recovered horizon {h_recovered} beyond the primary's {want_horizon}"
    );
    catch_up(src, &mut app).expect("resumed catch-up");
    assert!(
        app.horizon() >= h_recovered,
        "{tag}: horizon moved backwards during resume"
    );
    assert_eq!(app.horizon(), want_horizon, "{tag}: horizon diverged");
    assert_eq!(
        app.applied_lsn(),
        src.durable_lsn(),
        "{tag}: cursor short of the frontier"
    );
    assert_eq!(rows(&rsm), want_rows, "{tag}: rows diverged");
}

#[test]
fn kill_at_every_point_during_catchup() {
    let _x = failpoint::exclusive();
    let dir = temp_dir("kill");
    let (psm, src) = setup_primary(&dir);
    let want_rows = rows(&psm);
    let want_horizon = psm.txn().clock();
    assert_eq!(want_rows.len(), N_TXNS);
    assert!(want_horizon > 0, "workload must advance the clock");

    // Size the kill loop on an uninstrumented catch-up.
    let count_path = dir.join("r-count.vol");
    let rsm = open(&count_path);
    let mut app = ReplicaApplier::new(rsm.clone()).unwrap();
    failpoint::start_counting();
    catch_up(&src, &mut app).expect("uninstrumented catch-up");
    let total = failpoint::writes_observed();
    failpoint::disarm();
    assert_eq!(rows(&rsm), want_rows);
    assert_eq!(app.horizon(), want_horizon);
    assert!(total > 20, "catch-up too small to be interesting: {total}");
    drop(app);
    drop(rsm);

    // Kill the replica at every single write point of catch-up.
    for k in 0..total {
        let torn = k % 2 == 1;
        let tag = format!("kill at write {k} (torn={torn})");
        let rpath = dir.join(format!("r{k}.vol"));
        let rsm = open(&rpath);
        let mut app = ReplicaApplier::new(rsm.clone()).unwrap();
        failpoint::arm(CrashPlan {
            after_writes: k,
            torn,
        });
        let r = catch_up(&src, &mut app);
        let fired = failpoint::crashed();
        failpoint::disarm();
        assert!(fired, "{tag}: plan must fire (counted {total} writes)");
        assert!(r.is_err(), "{tag}: fired plan must surface as an error");
        let h_crash = app.horizon();
        drop(app);
        drop(rsm);

        // Reopen (recovery over the local log), resume, converge.
        // Monotonicity across the crash: a horizon once published to
        // readers is backed by a flushed local log, so recovery must
        // come back at least that far (it may come back further — a
        // commit can be durable before the crash interrupted its
        // in-memory publication).
        let rsm = open(&rpath);
        let app = ReplicaApplier::new(rsm.clone()).unwrap();
        assert!(
            app.horizon() >= h_crash,
            "{tag}: recovery lost published visibility ({} < {h_crash})",
            app.horizon()
        );
        drop(app);
        drop(rsm);
        recover_and_converge(&rpath, &src, &want_rows, want_horizon, &tag);
    }
    drop(psm);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The double-crash case: a replica that crashed mid-catch-up crashes
/// *again* at every write point of the resumed replay, recovers a second
/// time, and must still converge — replaying the same shipped images
/// twice is idempotent.
#[test]
fn double_crash_during_resume_still_converges() {
    let _x = failpoint::exclusive();
    let dir = temp_dir("double");
    let (psm, src) = setup_primary(&dir);
    let want_rows = rows(&psm);
    let want_horizon = psm.txn().clock();

    /// Writes let through before the first (torn) kill.
    const FIRST_KILL: u64 = 9;
    let crash_once = |path: &Path| {
        let rsm = open(path);
        let mut app = ReplicaApplier::new(rsm.clone()).unwrap();
        failpoint::arm(CrashPlan {
            after_writes: FIRST_KILL,
            torn: true,
        });
        let r = catch_up(&src, &mut app);
        assert!(failpoint::crashed() && r.is_err(), "first kill must fire");
        failpoint::disarm();
    };

    // Size the resume on one crashed-then-recovered instance.
    let count_path = dir.join("r-count.vol");
    crash_once(&count_path);
    let rsm = open(&count_path);
    let mut app = ReplicaApplier::new(rsm.clone()).unwrap();
    failpoint::start_counting();
    catch_up(&src, &mut app).expect("uninstrumented resume");
    let resume_writes = failpoint::writes_observed();
    failpoint::disarm();
    assert_eq!(rows(&rsm), want_rows);
    assert!(resume_writes > 0, "resume must have work to crash");
    drop(app);
    drop(rsm);

    // Crash the resume at every one of its write points.
    for j in 0..resume_writes {
        let torn = j % 2 == 0;
        let tag = format!("double-crash: resume killed at write {j} (torn={torn})");
        let rpath = dir.join(format!("d{j}.vol"));
        crash_once(&rpath);

        let rsm = open(&rpath);
        let mut app = ReplicaApplier::new(rsm.clone()).unwrap();
        failpoint::arm(CrashPlan {
            after_writes: j,
            torn,
        });
        let r = catch_up(&src, &mut app);
        let fired = failpoint::crashed();
        failpoint::disarm();
        assert!(fired && r.is_err(), "{tag}: second kill must fire");
        drop(app);
        drop(rsm);

        recover_and_converge(&rpath, &src, &want_rows, want_horizon, &tag);
    }
    drop(psm);
    let _ = std::fs::remove_dir_all(&dir);
}
