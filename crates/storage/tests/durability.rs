//! Durability tests: data written through the buffer pool survives a
//! flush + reopen of a file-backed volume (heap files, B+-trees, and
//! large objects all address pages positionally, so structures reopen
//! from their root page numbers).

use std::ops::Bound;
use std::sync::Arc;

use exodus_storage::btree::BTree;
use exodus_storage::buffer::BufferPool;
use exodus_storage::encoding::KeyWriter;
use exodus_storage::heap::HeapFile;
use exodus_storage::lob::{Lob, LobId};
use exodus_storage::volume::FileVolume;
use exodus_storage::{FileId, StorageManager};

fn temp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("exodus-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.db"))
}

#[test]
fn heap_file_survives_reopen() {
    let path = temp_path("heap");
    let _ = std::fs::remove_file(&path);
    let file_id;
    {
        let sm = StorageManager::file_backed(&path, 16).unwrap();
        file_id = sm.create_file().unwrap();
        for i in 0..500u32 {
            sm.insert(file_id, format!("record-{i}").as_bytes())
                .unwrap();
        }
        sm.flush().unwrap();
    }
    {
        let sm = StorageManager::file_backed(&path, 16).unwrap();
        let records: Vec<Vec<u8>> = sm.scan(file_id).map(|r| r.unwrap().1).collect();
        assert_eq!(records.len(), 500);
        assert_eq!(records[0], b"record-0");
        assert_eq!(records[499], b"record-499");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn btree_survives_reopen() {
    let path = temp_path("btree");
    let _ = std::fs::remove_file(&path);
    let key = |i: i64| {
        let mut k = KeyWriter::new();
        k.put_i64(i);
        k.into_bytes()
    };
    let root;
    {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileVolume::open(&path).unwrap()),
            64,
        ));
        let tree = BTree::create(&pool).unwrap();
        root = tree.root();
        for i in 0..2000i64 {
            tree.insert(&pool, &key(i), i as u64, false).unwrap();
        }
        pool.flush_all().unwrap();
    }
    {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileVolume::open(&path).unwrap()),
            64,
        ));
        let tree = BTree::open(root);
        assert_eq!(tree.lookup(&pool, &key(1234)).unwrap(), vec![1234]);
        let all: Vec<u64> = tree
            .scan(pool.clone(), Bound::Unbounded, Bound::Unbounded)
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(all.len(), 2000);
        assert_eq!(all[0], 0);
        assert_eq!(all[1999], 1999);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn lob_survives_reopen() {
    let path = temp_path("lob");
    let _ = std::fs::remove_file(&path);
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
    let id;
    {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileVolume::open(&path).unwrap()),
            64,
        ));
        let lob = Lob::create(&pool).unwrap();
        id = lob.id();
        lob.append(&pool, &data).unwrap();
        pool.flush_all().unwrap();
    }
    {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileVolume::open(&path).unwrap()),
            64,
        ));
        let lob = Lob::open(LobId(id.0));
        assert_eq!(lob.read_all(&pool).unwrap(), data);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn tiny_pool_forces_eviction_correctness() {
    // A 4-frame pool over thousands of records: every operation churns
    // the pool; correctness must not depend on residency.
    let path = temp_path("churn");
    let _ = std::fs::remove_file(&path);
    let sm = StorageManager::file_backed(&path, 4).unwrap();
    let f: FileId = sm.create_file().unwrap();
    let mut rids = Vec::new();
    for i in 0..2_000u32 {
        let mut payload = vec![0u8; 512];
        payload[..4].copy_from_slice(&i.to_be_bytes());
        rids.push(sm.insert(f, &payload).unwrap());
    }
    for (i, rid) in rids.iter().enumerate() {
        let got = sm.read(*rid).unwrap();
        assert_eq!(&got[..4], (i as u32).to_be_bytes());
        assert_eq!(got.len(), 512);
    }
    let stats = sm.pool().stats();
    assert!(stats.evictions > 100, "tiny pool must evict: {stats:?}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn concurrent_heap_inserts() {
    let sm = StorageManager::in_memory(256);
    let f = sm.create_file().unwrap();
    let hf = HeapFile::open(f);
    let sm = Arc::new(sm);
    let mut handles = Vec::new();
    for t in 0..8u32 {
        let sm = sm.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..250u32 {
                let payload = (t * 1000 + i).to_be_bytes();
                sm.insert(f, &payload).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(sm.scan(f).count(), 2000);
    assert_eq!(hf.record_count(sm.pool()).unwrap(), 2000);
}
