//! Recovery boundary conditions that need no fault injection: empty logs,
//! segment rollover, log-less reopen, durability-mode transitions, and
//! checkpoint-driven segment GC.

use std::path::{Path, PathBuf};

use exodus_storage::{Durability, StorageManager, StorageResult};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("exodus-rb-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let wal_dir = dir.join("vol.db.wal");
    if !wal_dir.exists() {
        return Vec::new();
    }
    let mut v: Vec<PathBuf> = std::fs::read_dir(&wal_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    v.sort();
    v
}

/// Insert `n` records, each in its own logged unit.
fn put_units(sm: &StorageManager, from: usize, n: usize) -> StorageResult<exodus_storage::FileId> {
    let unit = sm.begin_unit()?;
    let file = sm.create_file()?;
    unit.commit()?;
    for i in from..from + n {
        let unit = sm.begin_unit()?;
        sm.insert(file, format!("rec-{i}").as_bytes())?;
        unit.commit()?;
    }
    Ok(file)
}

fn read_all(sm: &StorageManager, file: exodus_storage::FileId) -> Vec<String> {
    let mut v: Vec<String> = sm
        .scan(file)
        .map(|r| String::from_utf8(r.unwrap().1).unwrap())
        .collect();
    v.sort();
    v
}

fn expect(from: usize, n: usize) -> Vec<String> {
    let mut v: Vec<String> = (from..from + n).map(|i| format!("rec-{i}")).collect();
    v.sort();
    v
}

#[test]
fn empty_log_recovery_is_clean() {
    let dir = temp_dir("empty");
    let (_, report) = StorageManager::open(&dir.join("vol.db"), 32, Durability::Fsync).unwrap();
    assert!(report.was_clean());
    assert_eq!(report.records_scanned, 0);
    assert_eq!(report.last_lsn, 0);
    // Reopen over an existing-but-empty log: still clean.
    let (_, report) = StorageManager::open(&dir.join("vol.db"), 32, Durability::Fsync).unwrap();
    assert!(report.was_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn old_log_format_version_is_refused_loudly() {
    let dir = temp_dir("oldfmt");
    let path = dir.join("vol.db");
    let (sm, _) = StorageManager::open(&path, 32, Durability::Fsync).unwrap();
    put_units(&sm, 0, 5).unwrap();
    drop(sm);
    // Stamp the first segment as log-format v1 (bytes 4..8 of the
    // header). Opening must fail with an explicit version error, not
    // treat the segment as a torn tail and silently recover nothing.
    let seg = wal_segments(&dir).into_iter().next().expect("a segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
    std::fs::write(&seg, bytes).unwrap();
    let err = StorageManager::open(&path, 32, Durability::Fsync)
        .err()
        .expect("old-format log must refuse to open");
    let msg = err.to_string();
    assert!(
        msg.contains("log-format version 1"),
        "unexpected error: {msg}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn committed_units_survive_reopen_without_flush() {
    for durability in [Durability::Buffered, Durability::Fsync] {
        let dir = temp_dir(&format!("noflush-{durability:?}"));
        let path = dir.join("vol.db");
        let (sm, _) = StorageManager::open(&path, 32, durability).unwrap();
        let file = put_units(&sm, 0, 20).unwrap();
        // No flush, no checkpoint: dirty pages die with the pool. The
        // committed after-images in the log are the only durable copy.
        drop(sm);
        let (sm, report) = StorageManager::open(&path, 32, durability).unwrap();
        assert!(report.pages_restored > 0, "log must have done the work");
        assert_eq!(read_all(&sm, file), expect(0, 20), "{durability:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn segment_rollover_across_reopen() {
    let dir = temp_dir("rollover");
    let path = dir.join("vol.db");
    // Tiny segments: every page image rolls the log over.
    let (sm, _) =
        StorageManager::open_with_config(&path, 32, Durability::Fsync, 16 * 1024).unwrap();
    let file = put_units(&sm, 0, 30).unwrap();
    drop(sm);
    assert!(
        wal_segments(&dir).len() > 3,
        "expected several segments: {:?}",
        wal_segments(&dir)
    );
    let (sm, _) =
        StorageManager::open_with_config(&path, 32, Durability::Fsync, 16 * 1024).unwrap();
    assert_eq!(read_all(&sm, file), expect(0, 30));
    // Keep writing across the reopened segment boundary, then reopen again.
    for i in 30..40 {
        let unit = sm.begin_unit().unwrap();
        sm.insert(file, format!("rec-{i}").as_bytes()).unwrap();
        unit.commit().unwrap();
    }
    drop(sm);
    let (sm, _) = StorageManager::open(&path, 32, Durability::Fsync).unwrap();
    assert_eq!(read_all(&sm, file), expect(0, 40));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_prunes_segments() {
    let dir = temp_dir("gc");
    let path = dir.join("vol.db");
    let (sm, _) =
        StorageManager::open_with_config(&path, 64, Durability::Fsync, 16 * 1024).unwrap();
    let file = put_units(&sm, 0, 30).unwrap();
    let before = wal_segments(&dir).len();
    assert!(before > 3, "fixture needs several segments: {before}");
    sm.checkpoint().unwrap();
    let after = wal_segments(&dir).len();
    assert!(
        after < before,
        "checkpoint must prune ({before} -> {after})"
    );
    // Everything still readable, and still readable after a log-only
    // reopen (the pruned segments were genuinely dead).
    assert_eq!(read_all(&sm, file), expect(0, 30));
    drop(sm);
    let (sm, report) = StorageManager::open(&path, 64, Durability::Fsync).unwrap();
    assert!(
        report.was_clean(),
        "post-checkpoint reopen should be clean: {report:?}"
    );
    assert_eq!(read_all(&sm, file), expect(0, 30));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durability_none_recovers_then_drops_the_log() {
    let dir = temp_dir("tonone");
    let path = dir.join("vol.db");
    let (sm, _) = StorageManager::open(&path, 32, Durability::Fsync).unwrap();
    let file = put_units(&sm, 0, 10).unwrap();
    drop(sm); // dirty pages unflushed; only the log has them
              // Opening with Durability::None must still run recovery once, then
              // delete the log so it can never replay over unlogged writes.
    let (sm, report) = StorageManager::open(&path, 32, Durability::None).unwrap();
    assert!(report.pages_restored > 0);
    assert_eq!(read_all(&sm, file), expect(0, 10));
    assert!(wal_segments(&dir).is_empty(), "log must be gone");
    assert_eq!(sm.durability(), Durability::None);
    // Unlogged writes persist via plain flush.
    sm.insert(file, b"rec-10").unwrap();
    sm.flush().unwrap();
    drop(sm);
    let (sm, report) = StorageManager::open(&path, 32, Durability::None).unwrap();
    assert!(report.was_clean());
    assert_eq!(read_all(&sm, file), expect(0, 11));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unit_drop_commits() {
    let dir = temp_dir("dropcommit");
    let path = dir.join("vol.db");
    let (sm, _) = StorageManager::open(&path, 32, Durability::Fsync).unwrap();
    let file;
    {
        let _unit = sm.begin_unit().unwrap();
        file = sm.create_file().unwrap();
        sm.insert(file, b"kept").unwrap();
        // Guard dropped here: commit-on-drop.
    }
    drop(sm);
    let (sm, _) = StorageManager::open(&path, 32, Durability::Fsync).unwrap();
    assert_eq!(read_all(&sm, file), vec!["kept".to_string()]);
    std::fs::remove_dir_all(&dir).unwrap();
}
