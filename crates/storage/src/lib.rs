//! # exodus-storage
//!
//! A storage manager in the mold of the EXODUS storage system: the substrate
//! the EXTRA data model and EXCESS query language were specified against.
//!
//! The paper ("A Data Model and Query Language for EXODUS", Carey, DeWitt &
//! Vandenberg, SIGMOD 1988) assumes a storage layer providing OID-addressed
//! persistent objects, collection scans, and pluggable access methods. This
//! crate provides:
//!
//! * [`page`] — 8 KiB slotted pages with a slot directory and in-page
//!   compaction.
//! * [`volume`] — the page space: in-memory or file-backed.
//! * [`buffer`] — a clock-replacement buffer pool with pin/unpin semantics
//!   and hit/miss statistics.
//! * [`heap`] — heap files (chained pages) holding variable-length records
//!   addressed by record id.
//! * [`object`] — the object table: stable logical OIDs mapped to record
//!   ids, so records may move without invalidating references (the storage
//!   half of EXTRA's object identity).
//! * [`btree`] — a B+-tree access method over order-preserving byte keys.
//! * [`lob`] — large storage objects (EXODUS's hallmark): byte sequences
//!   spanning many pages with positional read/write.
//! * [`encoding`] — order-preserving key encoding for composite keys.
//!
//! # Quick example
//!
//! ```
//! use exodus_storage::StorageManager;
//!
//! let sm = StorageManager::in_memory(64);
//! let file = sm.create_file().unwrap();
//! let rid = sm.insert(file, b"hello, exodus").unwrap();
//! assert_eq!(sm.read(rid).unwrap(), b"hello, exodus");
//! ```

pub mod btree;
pub mod buffer;
pub mod encoding;
pub mod error;
pub mod heap;
pub mod lob;
pub mod object;
pub mod page;
pub mod volume;

pub use buffer::BufferStats;
pub use error::{StorageError, StorageResult};
pub use heap::{FileId, RecordId};
pub use object::Oid;

use std::sync::Arc;

use buffer::BufferPool;
use volume::{FileVolume, MemVolume};

/// The top-level storage manager: a buffer pool over a volume, plus
/// factories for heap files, B+-trees, object tables and large objects.
///
/// Cloneable handle (`Arc` inside); safe to share across threads.
#[derive(Clone)]
pub struct StorageManager {
    pool: Arc<BufferPool>,
}

impl StorageManager {
    /// Create a storage manager over an in-memory volume with a buffer pool
    /// of `pool_pages` frames.
    pub fn in_memory(pool_pages: usize) -> Self {
        StorageManager {
            pool: Arc::new(BufferPool::new(Box::new(MemVolume::new()), pool_pages)),
        }
    }

    /// Create a storage manager backed by a file on disk.
    pub fn file_backed(path: &std::path::Path, pool_pages: usize) -> StorageResult<Self> {
        Ok(StorageManager {
            pool: Arc::new(BufferPool::new(
                Box::new(FileVolume::open(path)?),
                pool_pages,
            )),
        })
    }

    /// The underlying buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create a new heap file, returning its id.
    pub fn create_file(&self) -> StorageResult<FileId> {
        heap::HeapFile::create(&self.pool)
    }

    /// Insert a record into a heap file.
    pub fn insert(&self, file: FileId, data: &[u8]) -> StorageResult<RecordId> {
        heap::HeapFile::open(file).insert(&self.pool, data)
    }

    /// Read a record by id.
    pub fn read(&self, rid: RecordId) -> StorageResult<Vec<u8>> {
        heap::read_record(&self.pool, rid)
    }

    /// Overwrite a record (the record may move; the new id is returned).
    pub fn update(&self, file: FileId, rid: RecordId, data: &[u8]) -> StorageResult<RecordId> {
        heap::HeapFile::open(file).update(&self.pool, rid, data)
    }

    /// Delete a record.
    pub fn delete(&self, rid: RecordId) -> StorageResult<()> {
        heap::delete_record(&self.pool, rid)
    }

    /// Scan every live record of a heap file.
    pub fn scan(&self, file: FileId) -> heap::HeapScan {
        heap::HeapFile::open(file).scan(self.pool.clone())
    }

    /// Flush all dirty pages to the volume.
    pub fn flush(&self) -> StorageResult<()> {
        self.pool.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_records() {
        let sm = StorageManager::in_memory(16);
        let f = sm.create_file().unwrap();
        let mut rids = Vec::new();
        for i in 0..100u32 {
            let data = format!("record-{i}");
            rids.push((sm.insert(f, data.as_bytes()).unwrap(), data));
        }
        for (rid, data) in &rids {
            assert_eq!(sm.read(*rid).unwrap(), data.as_bytes());
        }
    }

    #[test]
    fn scan_sees_all_records() {
        let sm = StorageManager::in_memory(16);
        let f = sm.create_file().unwrap();
        for i in 0..500u32 {
            sm.insert(f, &i.to_be_bytes()).unwrap();
        }
        let seen: Vec<Vec<u8>> = sm.scan(f).map(|r| r.unwrap().1).collect();
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn delete_removes_from_scan() {
        let sm = StorageManager::in_memory(16);
        let f = sm.create_file().unwrap();
        let keep = sm.insert(f, b"keep").unwrap();
        let kill = sm.insert(f, b"kill").unwrap();
        sm.delete(kill).unwrap();
        let seen: Vec<_> = sm.scan(f).map(|r| r.unwrap()).collect();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, keep);
        assert!(sm.read(kill).is_err());
    }

    #[test]
    fn update_preserves_other_records() {
        let sm = StorageManager::in_memory(16);
        let f = sm.create_file().unwrap();
        let a = sm.insert(f, b"aaaa").unwrap();
        let b = sm.insert(f, b"bbbb").unwrap();
        let a2 = sm.update(f, a, &vec![b'x'; 3000]).unwrap();
        assert_eq!(sm.read(a2).unwrap(), vec![b'x'; 3000]);
        assert_eq!(sm.read(b).unwrap(), b"bbbb");
    }
}
