//! # exodus-storage
//!
//! A storage manager in the mold of the EXODUS storage system: the substrate
//! the EXTRA data model and EXCESS query language were specified against.
//!
//! The paper ("A Data Model and Query Language for EXODUS", Carey, DeWitt &
//! Vandenberg, SIGMOD 1988) assumes a storage layer providing OID-addressed
//! persistent objects, collection scans, and pluggable access methods. This
//! crate provides:
//!
//! * [`page`] — 8 KiB slotted pages with a slot directory and in-page
//!   compaction.
//! * [`volume`] — the page space: in-memory or file-backed.
//! * [`buffer`] — a clock-replacement buffer pool with pin/unpin semantics
//!   and hit/miss statistics.
//! * [`heap`] — heap files (chained pages) holding variable-length records
//!   addressed by record id.
//! * [`object`] — the object table: stable logical OIDs mapped to record
//!   ids, so records may move without invalidating references (the storage
//!   half of EXTRA's object identity).
//! * [`btree`] — a B+-tree access method over order-preserving byte keys.
//! * [`lob`] — large storage objects (EXODUS's hallmark): byte sequences
//!   spanning many pages with positional read/write.
//! * [`encoding`] — order-preserving key encoding for composite keys.
//! * [`wal`] — a segmented, CRC-checksummed write-ahead log with logged
//!   units as the unit of atomicity.
//! * [`recovery`] — the analysis/redo pass that brings a volume back to a
//!   consistent state after a crash.
//! * [`txn`] — snapshot-isolated transactions: a commit-timestamp clock,
//!   versioned-record visibility rules, reader snapshots that never block
//!   the writer, and runtime abort via in-memory before-images.
//! * [`failpoint`] — deterministic crash injection for testing the two
//!   modules above (`cfg(test)` / the `failpoints` cargo feature).
//!
//! # Quick example
//!
//! ```
//! use exodus_storage::StorageManager;
//!
//! let sm = StorageManager::in_memory(64);
//! let file = sm.create_file().unwrap();
//! let rid = sm.insert(file, b"hello, exodus").unwrap();
//! assert_eq!(sm.read(rid).unwrap(), b"hello, exodus");
//! ```
//!
//! # Durability
//!
//! A file-backed manager opened with [`StorageManager::open`] and a
//! [`Durability`] other than [`Durability::None`] is crash-consistent:
//! mutations grouped under a [`Unit`] either survive a crash entirely or
//! disappear entirely, and opening the database again runs recovery
//! automatically. See [`wal`] for the protocol and DESIGN.md §11 for the
//! guarantees per level.
//!
//! ```no_run
//! use exodus_storage::{Durability, StorageManager};
//!
//! let path = std::path::Path::new("/tmp/example.vol");
//! let (sm, report) = StorageManager::open(path, 1024, Durability::Fsync).unwrap();
//! assert!(report.was_clean());
//! let unit = sm.begin_unit().unwrap();
//! let file = sm.create_file().unwrap();
//! sm.insert(file, b"durable").unwrap();
//! unit.commit().unwrap(); // after-images + commit record hit the log
//! sm.checkpoint().unwrap();
//! ```

#![deny(rustdoc::broken_intra_doc_links)]
pub mod btree;
pub mod buffer;
pub mod crc;
pub mod encoding;
pub mod error;
pub mod failpoint;
pub mod heap;
pub mod lob;
pub mod object;
pub mod page;
pub mod recovery;
pub mod repl;
pub mod txn;
pub mod volume;
pub mod wal;

pub use buffer::BufferStats;
pub use error::{StorageError, StorageResult};
pub use heap::{FileId, RecordId};
pub use object::Oid;
pub use recovery::RecoveryReport;
pub use repl::{ApplierCounters, ApplyStats, ReplicaApplier, ReplicationSource};
pub use txn::{visible, ReclaimOp, Snapshot, TxnManager, WriteTxn, TS_INF, TS_LATEST};
pub use wal::{Durability, Lsn, Wal, WalEntry, WalRecord};

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use buffer::BufferPool;
use exodus_obs::MetricsRegistry;
use volume::{FileVolume, MemVolume};

/// The top-level storage manager: a buffer pool over a volume, plus
/// factories for heap files, B+-trees, object tables and large objects.
///
/// Cloneable handle (`Arc` inside); safe to share across threads.
#[derive(Clone)]
pub struct StorageManager {
    pool: Arc<BufferPool>,
    /// Checkpoints taken through this manager (shared across clones).
    checkpoints: Arc<AtomicU64>,
    /// Transaction manager (shared across clones).
    txn: Arc<TxnManager>,
}

impl StorageManager {
    /// Create a storage manager over an in-memory volume with a buffer pool
    /// of `pool_pages` frames.
    pub fn in_memory(pool_pages: usize) -> Self {
        StorageManager {
            pool: Arc::new(BufferPool::new(Box::new(MemVolume::new()), pool_pages)),
            checkpoints: Arc::new(AtomicU64::new(0)),
            txn: Arc::new(TxnManager::new()),
        }
    }

    /// Create a storage manager backed by a file on disk.
    ///
    /// No write-ahead log is attached: equivalent to
    /// [`StorageManager::open`] with [`Durability::None`], minus the
    /// recovery pass. Prefer `open` for anything that must survive a
    /// crash.
    pub fn file_backed(path: &std::path::Path, pool_pages: usize) -> StorageResult<Self> {
        Ok(StorageManager {
            pool: Arc::new(BufferPool::new(
                Box::new(FileVolume::open(path)?),
                pool_pages,
            )),
            checkpoints: Arc::new(AtomicU64::new(0)),
            txn: Arc::new(TxnManager::new()),
        })
    }

    /// Open (or create) a file-backed database at `path`, running crash
    /// recovery first. Returns the manager and a [`RecoveryReport`]
    /// describing what recovery found.
    ///
    /// The write-ahead log lives in a sibling directory named
    /// `<path>.wal`. With [`Durability::None`] any leftover log is
    /// replayed one final time and then deleted — subsequent writes are
    /// unlogged, and a stale log must not outlive them.
    pub fn open(
        path: &Path,
        pool_pages: usize,
        durability: Durability,
    ) -> StorageResult<(Self, RecoveryReport)> {
        Self::open_with_config(path, pool_pages, durability, wal::DEFAULT_SEGMENT_BYTES)
    }

    /// [`StorageManager::open`] with an explicit log segment size
    /// (rollover boundary tests use tiny segments).
    pub fn open_with_config(
        path: &Path,
        pool_pages: usize,
        durability: Durability,
        segment_bytes: u64,
    ) -> StorageResult<(Self, RecoveryReport)> {
        let wal_dir = wal_dir_for(path);
        let report = recovery::recover(&wal_dir, path)?;
        let pool = match durability {
            Durability::None => {
                // Unlogged mode: recovery ran above; a log kept around any
                // longer could replay stale images over unlogged writes.
                if wal_dir.exists() {
                    std::fs::remove_dir_all(&wal_dir)?;
                }
                BufferPool::new(Box::new(FileVolume::open(path)?), pool_pages)
            }
            Durability::Buffered | Durability::Fsync => {
                let volume = FileVolume::open(path)?;
                let wal = Arc::new(Wal::open(&wal_dir, durability, segment_bytes)?);
                BufferPool::with_wal(Box::new(volume), pool_pages, wal)
            }
        };
        let txn = Arc::new(TxnManager::new());
        // The commit clock restarts from the highest durable timestamp so
        // recovered versions stay visible and new commits sort after old.
        txn.seed_clock(report.clock);
        Ok((
            StorageManager {
                pool: Arc::new(pool),
                checkpoints: Arc::new(AtomicU64::new(0)),
                txn,
            },
            report,
        ))
    }

    /// The configured durability level ([`Durability::None`] when no log
    /// is attached).
    pub fn durability(&self) -> Durability {
        self.pool.wal().map_or(Durability::None, |w| w.durability())
    }

    /// Open a logged unit: every page dirtied until [`Unit::commit`] is
    /// pinned in the pool (no-steal) and after-imaged to the log at
    /// commit, so a crash anywhere inside the unit rolls the whole unit
    /// back on recovery. One unit is active at a time; this blocks until
    /// the slot frees. Without a WAL the guard is a no-op.
    ///
    /// Note the buffer pool must have room for the unit's whole write set
    /// — gated pages cannot be evicted.
    pub fn begin_unit(&self) -> StorageResult<Unit> {
        let id = match self.pool.wal() {
            Some(wal) => wal.begin_unit()?,
            None => 0,
        };
        Ok(Unit {
            pool: self.pool.clone(),
            id,
            open: true,
        })
    }

    /// Take a checkpoint: bring the volume up to date with the log and
    /// prune log segments that can never be replayed again.
    ///
    /// Protocol (with a WAL attached): pause new units, flush the log,
    /// append unit-0 after-images of every dirty page (covering
    /// out-of-unit mutations), flush again, write all dirty pages back,
    /// sync the volume, append [`WalRecord::Checkpoint`], flush it, then
    /// delete dead segments. If a crash lands anywhere inside, recovery
    /// replays from the *previous* checkpoint — the new record only
    /// becomes the cutoff once durable. Without a WAL this degrades to
    /// flush-and-sync.
    pub fn checkpoint(&self) -> StorageResult<()> {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        let Some(wal) = self.pool.wal().cloned() else {
            self.pool.flush_all()?;
            return self.pool.sync_volume();
        };
        let _pause = wal.pause_units();
        wal.flush()?;
        for page_no in self.pool.dirty_page_numbers() {
            let image = self.pool.page_image(page_no)?;
            let lsn = wal.append(0, &WalRecord::PageImage { page_no, image })?;
            self.pool.stamp_page_lsn(page_no, lsn)?;
        }
        wal.flush()?;
        self.pool.flush_all()?;
        self.pool.sync_volume()?;
        let cp_lsn = wal.append(
            0,
            &WalRecord::Checkpoint {
                clock: self.txn.clock(),
            },
        )?;
        wal.flush()?;
        wal.gc_segments(cp_lsn)?;
        Ok(())
    }

    /// The underlying buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The transaction manager (shared across clones of this handle).
    pub fn txn(&self) -> &Arc<TxnManager> {
        &self.txn
    }

    /// Take a read snapshot at the current commit clock. The snapshot
    /// never blocks the writer and the writer never blocks it.
    pub fn begin_snapshot(&self) -> Snapshot {
        self.txn.begin_snapshot()
    }

    /// Begin a write transaction: claim the writer gate (blocking until
    /// it frees), open a logged unit, and start before-image capture so
    /// the transaction can abort at runtime. Mutations made through the
    /// returned guard are stamped with its provisional timestamp by the
    /// versioned heap APIs.
    pub fn begin_txn(&self) -> StorageResult<WriteTxn> {
        let ts = self.txn.acquire_writer();
        self.begin_txn_with(ts)
    }

    /// [`StorageManager::begin_txn`], but give up immediately when a
    /// writer is already active (vacuum's politeness).
    pub fn try_begin_txn(&self) -> StorageResult<Option<WriteTxn>> {
        match self.txn.try_acquire_writer() {
            Some(ts) => self.begin_txn_with(ts).map(Some),
            None => Ok(None),
        }
    }

    fn begin_txn_with(&self, ts: u64) -> StorageResult<WriteTxn> {
        let unit = match self.pool.wal() {
            Some(wal) => match wal.begin_unit() {
                Ok(unit) => unit,
                Err(e) => {
                    self.txn.release_writer(ts, false);
                    return Err(e);
                }
            },
            None => 0,
        };
        self.pool.begin_undo_capture();
        Ok(WriteTxn::new(self.txn.clone(), self.pool.clone(), ts, unit))
    }

    /// Register this manager's instruments on `reg` under the `storage_`
    /// prefix: buffer-pool counters, checkpoint count, and — when a WAL
    /// is attached — append/fsync/group-commit activity. All values are
    /// read through callbacks over counters the subsystems maintain
    /// anyway, so registration adds no hot-path cost.
    pub fn register_metrics(&self, reg: &MetricsRegistry) {
        let pool = self.pool.clone();
        reg.counter_fn(
            "storage_pool_hits_total",
            "Page pins satisfied from the buffer pool.",
            {
                let pool = pool.clone();
                move || pool.stats().hits
            },
        );
        reg.counter_fn(
            "storage_pool_misses_total",
            "Page pins that required a volume read.",
            {
                let pool = pool.clone();
                move || pool.stats().misses
            },
        );
        reg.counter_fn(
            "storage_pool_evictions_total",
            "Frames reclaimed by the clock hand.",
            {
                let pool = pool.clone();
                move || pool.stats().evictions
            },
        );
        reg.counter_fn(
            "storage_pool_writebacks_total",
            "Dirty pages written back to the volume.",
            {
                let pool = pool.clone();
                move || pool.stats().writebacks
            },
        );
        let checkpoints = self.checkpoints.clone();
        reg.counter_fn(
            "storage_checkpoints_total",
            "Checkpoints taken.",
            move || checkpoints.load(Ordering::Relaxed),
        );
        let txn = self.txn.clone();
        reg.gauge_fn(
            "storage_txn_active",
            "Active transactions: registered snapshots plus the in-flight writer.",
            move || txn.active_count() as i64,
        );
        let txn = self.txn.clone();
        reg.counter_fn(
            "storage_txn_committed_total",
            "Write transactions committed.",
            move || txn.committed_total(),
        );
        let txn = self.txn.clone();
        reg.counter_fn(
            "storage_txn_aborted_total",
            "Write transactions aborted (runtime abort, not crash rollback).",
            move || txn.aborted_total(),
        );
        let txn = self.txn.clone();
        reg.counter_fn(
            "storage_txn_commit_indeterminate_total",
            "Commits parked after a failed fsync: the commit record is in the log but \
             unpublished, so a restart may surface transactions this process never showed.",
            move || txn.parked_total(),
        );
        reg.histogram_shared(
            "storage_txn_commit_wait_ns",
            "Wall-clock commit latency in nanoseconds (images + commit record + fsync wait).",
            self.txn.commit_wait_histogram(),
        );
        if let Some(wal) = self.pool.wal() {
            let w = wal.clone();
            reg.counter_fn(
                "storage_wal_appends_total",
                "Log records appended.",
                move || w.metrics().appends.load(Ordering::Relaxed),
            );
            let w = wal.clone();
            reg.counter_fn(
                "storage_wal_append_bytes_total",
                "Log frame bytes appended.",
                move || w.metrics().append_bytes.load(Ordering::Relaxed),
            );
            let w = wal.clone();
            reg.counter_fn(
                "storage_wal_fsyncs_total",
                "Log fsyncs issued.",
                move || w.metrics().fsyncs.load(Ordering::Relaxed),
            );
            reg.histogram_shared(
                "storage_wal_group_commit_records",
                "Records made durable per fsync (group-commit batch size).",
                wal.metrics().group_commit_records.clone(),
            );
            reg.histogram_shared(
                "storage_wal_fsync_ns",
                "Wall-clock log fsync latency in nanoseconds.",
                wal.metrics().fsync_ns.clone(),
            );
        }
    }

    /// Create a new heap file, returning its id.
    pub fn create_file(&self) -> StorageResult<FileId> {
        heap::HeapFile::create(&self.pool)
    }

    /// Insert a record into a heap file.
    pub fn insert(&self, file: FileId, data: &[u8]) -> StorageResult<RecordId> {
        heap::HeapFile::open(file).insert(&self.pool, data)
    }

    /// Read a record by id.
    pub fn read(&self, rid: RecordId) -> StorageResult<Vec<u8>> {
        heap::read_record(&self.pool, rid)
    }

    /// Overwrite a record (the record may move; the new id is returned).
    pub fn update(&self, file: FileId, rid: RecordId, data: &[u8]) -> StorageResult<RecordId> {
        heap::HeapFile::open(file).update(&self.pool, rid, data)
    }

    /// Delete a record.
    pub fn delete(&self, rid: RecordId) -> StorageResult<()> {
        heap::delete_record(&self.pool, rid)
    }

    /// Scan every live record of a heap file.
    pub fn scan(&self, file: FileId) -> heap::HeapScan {
        heap::HeapFile::open(file).scan(self.pool.clone())
    }

    /// Flush all dirty pages to the volume.
    pub fn flush(&self) -> StorageResult<()> {
        self.pool.flush_all()
    }
}

/// A logged unit: the storage-level unit of atomicity (see
/// [`StorageManager::begin_unit`]). Mutations made while the guard is
/// alive either all survive a crash (after [`Unit::commit`] returns) or
/// all disappear on recovery.
///
/// Dropping the guard commits too (swallowing errors): rollback in this
/// redo-only design happens *only* via crash recovery, by omission of the
/// commit record — there is no runtime abort.
#[must_use = "dropping a Unit commits it with errors swallowed; call commit()"]
pub struct Unit {
    pool: Arc<BufferPool>,
    id: u64,
    open: bool,
}

impl Unit {
    /// The unit's id as it appears in the log (0 for a no-op unit without
    /// a WAL).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Commit: append an after-image of every page the unit dirtied, then
    /// the commit record, then flush the log per the durability level.
    /// The unit's pages become evictable again afterwards.
    pub fn commit(mut self) -> StorageResult<()> {
        self.finish()
    }

    fn finish(&mut self) -> StorageResult<()> {
        if !self.open {
            return Ok(());
        }
        self.open = false;
        let Some(wal) = self.pool.wal().cloned() else {
            return Ok(());
        };
        let result = (|| {
            for page_no in wal.unit_dirty_pages(self.id) {
                let image = self.pool.page_image(page_no)?;
                let lsn = wal.append(self.id, &WalRecord::PageImage { page_no, image })?;
                self.pool.stamp_page_lsn(page_no, lsn)?;
            }
            wal.append(self.id, &WalRecord::Commit { ts: 0 })?;
            wal.flush()
        })();
        // Success or not, release the slot: after an append error the
        // commit record is absent, so recovery rolls the unit back.
        wal.end_unit(self.id);
        result
    }
}

impl Drop for Unit {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// The log directory for a volume at `path`: a sibling named
/// `<path>.wal`.
fn wal_dir_for(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".wal");
    std::path::PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_records() {
        let sm = StorageManager::in_memory(16);
        let f = sm.create_file().unwrap();
        let mut rids = Vec::new();
        for i in 0..100u32 {
            let data = format!("record-{i}");
            rids.push((sm.insert(f, data.as_bytes()).unwrap(), data));
        }
        for (rid, data) in &rids {
            assert_eq!(sm.read(*rid).unwrap(), data.as_bytes());
        }
    }

    #[test]
    fn scan_sees_all_records() {
        let sm = StorageManager::in_memory(16);
        let f = sm.create_file().unwrap();
        for i in 0..500u32 {
            sm.insert(f, &i.to_be_bytes()).unwrap();
        }
        let seen: Vec<Vec<u8>> = sm.scan(f).map(|r| r.unwrap().1).collect();
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn delete_removes_from_scan() {
        let sm = StorageManager::in_memory(16);
        let f = sm.create_file().unwrap();
        let keep = sm.insert(f, b"keep").unwrap();
        let kill = sm.insert(f, b"kill").unwrap();
        sm.delete(kill).unwrap();
        let seen: Vec<_> = sm.scan(f).map(|r| r.unwrap()).collect();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, keep);
        assert!(sm.read(kill).is_err());
    }

    #[test]
    fn update_preserves_other_records() {
        let sm = StorageManager::in_memory(16);
        let f = sm.create_file().unwrap();
        let a = sm.insert(f, b"aaaa").unwrap();
        let b = sm.insert(f, b"bbbb").unwrap();
        let a2 = sm.update(f, a, &vec![b'x'; 3000]).unwrap();
        assert_eq!(sm.read(a2).unwrap(), vec![b'x'; 3000]);
        assert_eq!(sm.read(b).unwrap(), b"bbbb");
    }
}
