//! Large storage objects.
//!
//! The EXODUS storage manager's signature feature was the *large storage
//! object*: an uninterpreted byte sequence of arbitrary size supporting
//! positional reads and writes. EXTRA needs them for long `varchar` values
//! and big variable-length arrays that exceed a page.
//!
//! This implementation stores a LOB as a chain of pages. The first page's
//! body starts with the total length (u64); the remainder of every body is
//! data. Reads and writes are positional; `append`, `truncate`, and
//! byte-range `insert`/`remove` are provided. Unlike the original (which
//! used a B-tree of byte ranges for O(log n) mid-object edits),
//! mid-object `insert`/`remove` here rewrite the tail — a documented
//! simplification that preserves the interface.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{PageKind, PageView, SlottedPage, NO_PAGE, PAGE_SIZE};
use crate::wal::WalRecord;

const BODY: usize = PAGE_SIZE - crate::page::HEADER_SIZE;
/// Data capacity of the first page (length header uses 8 bytes).
const FIRST_CAP: usize = BODY - 8;
/// Data capacity of continuation pages.
const CONT_CAP: usize = BODY;

/// Handle to a large object, identified by its first page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LobId(pub u64);

/// Large-object operations over a buffer pool.
#[derive(Debug, Clone, Copy)]
pub struct Lob {
    id: LobId,
}

impl Lob {
    /// Create an empty large object.
    pub fn create(pool: &Arc<BufferPool>) -> StorageResult<Lob> {
        let page = pool.allocate()?;
        page.with_write(|buf| {
            let mut p = SlottedPage::format(buf, PageKind::Lob);
            p.body_mut()[..8].copy_from_slice(&0u64.to_le_bytes());
        });
        Ok(Lob {
            id: LobId(page.page_no()),
        })
    }

    /// Open an existing large object.
    pub fn open(id: LobId) -> Lob {
        Lob { id }
    }

    /// The object's id.
    pub fn id(&self) -> LobId {
        self.id
    }

    /// Total length in bytes.
    pub fn len(&self, pool: &Arc<BufferPool>) -> StorageResult<u64> {
        let page = pool.pin(self.id.0)?;
        Ok(page.with_read(|buf| {
            let body = PageView::new(buf).body();
            let mut a = [0u8; 8];
            a.copy_from_slice(&body[..8]);
            u64::from_le_bytes(a)
        }))
    }

    /// Whether the object is empty.
    pub fn is_empty(&self, pool: &Arc<BufferPool>) -> StorageResult<bool> {
        Ok(self.len(pool)? == 0)
    }

    fn set_len(&self, pool: &Arc<BufferPool>, len: u64) -> StorageResult<()> {
        let page = pool.pin(self.id.0)?;
        page.with_write(|buf| {
            let mut p = SlottedPage::new(buf);
            p.body_mut()[..8].copy_from_slice(&len.to_le_bytes());
        });
        Ok(())
    }

    /// Map a byte offset to `(chain index, offset within that page's data)`.
    fn locate(offset: u64) -> (u64, usize) {
        if offset < FIRST_CAP as u64 {
            (0, offset as usize)
        } else {
            let rest = offset - FIRST_CAP as u64;
            (
                1 + rest / CONT_CAP as u64,
                (rest % CONT_CAP as u64) as usize,
            )
        }
    }

    fn cap(chain_idx: u64) -> usize {
        if chain_idx == 0 {
            FIRST_CAP
        } else {
            CONT_CAP
        }
    }

    fn data_start(chain_idx: u64) -> usize {
        if chain_idx == 0 {
            8
        } else {
            0
        }
    }

    /// Page number of chain index `idx`, extending the chain when
    /// `extend` is set.
    fn page_at(&self, pool: &Arc<BufferPool>, idx: u64, extend: bool) -> StorageResult<u64> {
        let mut page_no = self.id.0;
        for _ in 0..idx {
            let page = pool.pin(page_no)?;
            let next = page.with_read(|buf| PageView::new(buf).next());
            if next != NO_PAGE {
                page_no = next;
                continue;
            }
            if !extend {
                return Err(StorageError::LobOutOfBounds { offset: 0, len: 0 });
            }
            let new_page = pool.allocate()?;
            let new_no = new_page.page_no();
            new_page.with_write(|buf| {
                let mut p = SlottedPage::format(buf, PageKind::Lob);
                p.set_prev(page_no);
            });
            page.with_write(|buf| SlottedPage::new(buf).set_next(new_no));
            page_no = new_no;
        }
        Ok(page_no)
    }

    /// Read `len` bytes starting at `offset`.
    pub fn read(&self, pool: &Arc<BufferPool>, offset: u64, len: usize) -> StorageResult<Vec<u8>> {
        let total = self.len(pool)?;
        if offset + len as u64 > total {
            return Err(StorageError::LobOutOfBounds { offset, len: total });
        }
        let mut out = Vec::with_capacity(len);
        let (mut idx, mut in_page) = Self::locate(offset);
        let mut page_no = self.page_at(pool, idx, false)?;
        while out.len() < len {
            let page = pool.pin(page_no)?;
            let take = (Self::cap(idx) - in_page).min(len - out.len());
            page.with_read(|buf| {
                let body = PageView::new(buf).body();
                let start = Self::data_start(idx) + in_page;
                out.extend_from_slice(&body[start..start + take]);
            });
            if out.len() < len {
                let next = page.with_read(|buf| PageView::new(buf).next());
                if next == NO_PAGE {
                    return Err(StorageError::LobOutOfBounds { offset, len: total });
                }
                page_no = next;
                idx += 1;
                in_page = 0;
            }
        }
        Ok(out)
    }

    /// Read the whole object.
    pub fn read_all(&self, pool: &Arc<BufferPool>) -> StorageResult<Vec<u8>> {
        let n = self.len(pool)?;
        self.read(pool, 0, n as usize)
    }

    /// Write `data` at `offset`. Writing at or past the current end
    /// extends the object (a gap is an error).
    pub fn write(&self, pool: &Arc<BufferPool>, offset: u64, data: &[u8]) -> StorageResult<()> {
        let total = self.len(pool)?;
        if offset > total {
            return Err(StorageError::LobOutOfBounds { offset, len: total });
        }
        let (mut idx, mut in_page) = Self::locate(offset);
        let mut page_no = self.page_at(pool, idx, true)?;
        let mut written = 0usize;
        while written < data.len() {
            let page = pool.pin(page_no)?;
            let take = (Self::cap(idx) - in_page).min(data.len() - written);
            page.with_write(|buf| {
                let mut p = SlottedPage::new(buf);
                let start = Self::data_start(idx) + in_page;
                p.body_mut()[start..start + take].copy_from_slice(&data[written..written + take]);
            });
            written += take;
            if written < data.len() {
                idx += 1;
                in_page = 0;
                page_no = self.page_at(pool, idx, true)?;
            }
        }
        let new_end = offset + data.len() as u64;
        if new_end > total {
            self.set_len(pool, new_end)?;
        }
        pool.log_op(&WalRecord::LobWrite {
            first: self.id.0,
            offset,
            len: data.len() as u64,
        })
    }

    /// Append `data` at the end.
    pub fn append(&self, pool: &Arc<BufferPool>, data: &[u8]) -> StorageResult<()> {
        let end = self.len(pool)?;
        self.write(pool, end, data)
    }

    /// Shrink the object to `len` bytes (no-op if already shorter).
    pub fn truncate(&self, pool: &Arc<BufferPool>, len: u64) -> StorageResult<()> {
        let total = self.len(pool)?;
        if len < total {
            self.set_len(pool, len)?;
            pool.log_op(&WalRecord::LobTruncate {
                first: self.id.0,
                len,
            })?;
        }
        Ok(())
    }

    /// Insert `data` at `offset`, shifting the tail right (EXODUS byte-range
    /// insert; implemented by tail rewrite).
    pub fn insert(&self, pool: &Arc<BufferPool>, offset: u64, data: &[u8]) -> StorageResult<()> {
        let total = self.len(pool)?;
        if offset > total {
            return Err(StorageError::LobOutOfBounds { offset, len: total });
        }
        let tail = self.read(pool, offset, (total - offset) as usize)?;
        self.write(pool, offset, data)?;
        self.write(pool, offset + data.len() as u64, &tail)
    }

    /// Remove `len` bytes at `offset`, shifting the tail left (EXODUS
    /// byte-range delete; implemented by tail rewrite).
    pub fn remove(&self, pool: &Arc<BufferPool>, offset: u64, len: u64) -> StorageResult<()> {
        let total = self.len(pool)?;
        if offset + len > total {
            return Err(StorageError::LobOutOfBounds { offset, len: total });
        }
        let tail = self.read(pool, offset + len, (total - offset - len) as usize)?;
        self.write(pool, offset, &tail)?;
        self.set_len(pool, total - len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Box::new(MemVolume::new()), 128))
    }

    #[test]
    fn small_round_trip() {
        let pool = pool();
        let lob = Lob::create(&pool).unwrap();
        lob.append(&pool, b"hello").unwrap();
        lob.append(&pool, b", world").unwrap();
        assert_eq!(lob.read_all(&pool).unwrap(), b"hello, world");
        assert_eq!(lob.len(&pool).unwrap(), 12);
    }

    #[test]
    fn multi_page_object() {
        let pool = pool();
        let lob = Lob::create(&pool).unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        lob.append(&pool, &data).unwrap();
        assert_eq!(lob.len(&pool).unwrap(), 100_000);
        assert_eq!(lob.read_all(&pool).unwrap(), data);
        // Positional read across a page boundary.
        let chunk = lob.read(&pool, FIRST_CAP as u64 - 10, 20).unwrap();
        assert_eq!(&chunk[..], &data[FIRST_CAP - 10..FIRST_CAP + 10]);
    }

    #[test]
    fn positional_overwrite() {
        let pool = pool();
        let lob = Lob::create(&pool).unwrap();
        lob.append(&pool, &vec![0u8; 20_000]).unwrap();
        lob.write(&pool, 9_995, b"MARKER").unwrap();
        let got = lob.read(&pool, 9_990, 16).unwrap();
        assert_eq!(&got[5..11], b"MARKER");
        assert_eq!(lob.len(&pool).unwrap(), 20_000, "overwrite keeps length");
    }

    #[test]
    fn out_of_bounds_rejected() {
        let pool = pool();
        let lob = Lob::create(&pool).unwrap();
        lob.append(&pool, b"abc").unwrap();
        assert!(lob.read(&pool, 2, 5).is_err());
        assert!(lob.write(&pool, 10, b"x").is_err(), "gap write rejected");
    }

    #[test]
    fn truncate_then_regrow() {
        let pool = pool();
        let lob = Lob::create(&pool).unwrap();
        lob.append(&pool, b"0123456789").unwrap();
        lob.truncate(&pool, 4).unwrap();
        assert_eq!(lob.read_all(&pool).unwrap(), b"0123");
        lob.append(&pool, b"XY").unwrap();
        assert_eq!(lob.read_all(&pool).unwrap(), b"0123XY");
    }

    #[test]
    fn insert_and_remove_mid_object() {
        let pool = pool();
        let lob = Lob::create(&pool).unwrap();
        lob.append(&pool, b"hello world").unwrap();
        lob.insert(&pool, 5, b" brave").unwrap();
        assert_eq!(lob.read_all(&pool).unwrap(), b"hello brave world");
        lob.remove(&pool, 5, 6).unwrap();
        assert_eq!(lob.read_all(&pool).unwrap(), b"hello world");
    }

    #[test]
    fn insert_spanning_pages() {
        let pool = pool();
        let lob = Lob::create(&pool).unwrap();
        let base: Vec<u8> = (0..30_000u32).map(|i| (i % 127) as u8).collect();
        lob.append(&pool, &base).unwrap();
        let wedge = vec![0xEEu8; 5000];
        lob.insert(&pool, 15_000, &wedge).unwrap();
        let all = lob.read_all(&pool).unwrap();
        assert_eq!(all.len(), 35_000);
        assert_eq!(&all[..15_000], &base[..15_000]);
        assert_eq!(&all[15_000..20_000], &wedge[..]);
        assert_eq!(&all[20_000..], &base[15_000..]);
    }
}
