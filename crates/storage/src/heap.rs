//! Heap files: unordered collections of variable-length records.
//!
//! A heap file is identified by its header page ([`FileId`]). The header
//! page records the first and last data pages; data pages form a doubly
//! linked chain. Records are addressed by [`RecordId`] — `(page, slot)` —
//! which stays valid until the record is deleted or moved by an update.
//!
//! Inserts go to the last page of the chain if the record fits, otherwise a
//! new page is appended (first-fit on the tail keeps inserts O(1); the
//! free-space of interior pages is reused only by in-page updates, which
//! matches the simple space management the EXODUS-era storage managers
//! shipped with).
//!
//! # Record versioning
//!
//! Every stored record is prefixed with a [`VERSION_HEADER`]-byte
//! `(begin_ts, end_ts)` pair (little-endian), the MVCC stamps
//! [`crate::txn::visible`] is evaluated against. [`HeapFile::insert`]
//! stamps `(0, TS_INF)` — visible to every snapshot — so non-transactional
//! callers never notice; [`HeapFile::insert_at`] stamps a real begin
//! timestamp, and [`set_record_end`] / [`HeapFile::delete_versioned`]
//! end-stamp a version in place (same-length update, so the record never
//! moves). Scans carry a snapshot timestamp and filter invisible versions
//! before the caller sees them.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{PageKind, PageView, SlottedPage, NO_PAGE};
use crate::txn::{visible, TS_INF, TS_LATEST};
use crate::wal::WalRecord;

/// Identifies a heap file by its header page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Identifies a record: the page it lives on and its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page number.
    pub page: u64,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Pack into a u64 (page in the high 48 bits, slot in the low 16) for
    /// storage inside index entries.
    pub fn pack(self) -> u64 {
        (self.page << 16) | self.slot as u64
    }

    /// Inverse of [`RecordId::pack`].
    pub fn unpack(v: u64) -> RecordId {
        RecordId {
            page: v >> 16,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// Bytes of MVCC version header — `begin_ts(8) | end_ts(8)`, little-endian
/// — prepended to every stored record.
pub const VERSION_HEADER: usize = 16;

/// Prepend a `(begin, end)` version header to `data`.
fn with_header(begin: u64, end: u64, data: &[u8]) -> Vec<u8> {
    let mut raw = Vec::with_capacity(VERSION_HEADER + data.len());
    raw.extend_from_slice(&begin.to_le_bytes());
    raw.extend_from_slice(&end.to_le_bytes());
    raw.extend_from_slice(data);
    raw
}

/// Split a stored record into `(begin_ts, end_ts, payload)`.
fn split_version(raw: &[u8]) -> StorageResult<(u64, u64, &[u8])> {
    if raw.len() < VERSION_HEADER {
        return Err(StorageError::Corrupt(format!(
            "heap record shorter than its version header ({} bytes)",
            raw.len()
        )));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&raw[..8]);
    let begin = u64::from_le_bytes(b);
    b.copy_from_slice(&raw[8..16]);
    let end = u64::from_le_bytes(b);
    Ok((begin, end, &raw[VERSION_HEADER..]))
}

// Header-page body layout: first(8) | last(8) | record_count(8).
const HB_FIRST: usize = 0;
const HB_LAST: usize = 8;
const HB_COUNT: usize = 16;

fn body_get_u64(body: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&body[off..off + 8]);
    u64::from_le_bytes(b)
}

fn body_put_u64(body: &mut [u8], off: usize, v: u64) {
    body[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Handle to a heap file. Stateless: all state lives on pages.
#[derive(Debug, Clone, Copy)]
pub struct HeapFile {
    id: FileId,
}

impl HeapFile {
    /// Create a new heap file, returning its id.
    pub fn create(pool: &Arc<BufferPool>) -> StorageResult<FileId> {
        let header = pool.allocate()?;
        header.with_write(|buf| {
            let mut p = SlottedPage::format(buf, PageKind::HeapHeader);
            let body = p.body_mut();
            body_put_u64(body, HB_FIRST, NO_PAGE);
            body_put_u64(body, HB_LAST, NO_PAGE);
            body_put_u64(body, HB_COUNT, 0);
        });
        Ok(FileId(header.page_no()))
    }

    /// Open an existing heap file by id.
    pub fn open(id: FileId) -> HeapFile {
        HeapFile { id }
    }

    /// The file's id.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// Number of live records (maintained on the header page).
    pub fn record_count(&self, pool: &Arc<BufferPool>) -> StorageResult<u64> {
        let header = pool.pin(self.id.0)?;
        Ok(header.with_read(|buf| body_get_u64(PageView::new(buf).body(), HB_COUNT)))
    }

    fn bump_count(&self, pool: &Arc<BufferPool>, delta: i64) -> StorageResult<()> {
        let header = pool.pin(self.id.0)?;
        header.with_write(|buf| {
            let mut p = SlottedPage::new(buf);
            let body = p.body_mut();
            let c = body_get_u64(body, HB_COUNT) as i64 + delta;
            body_put_u64(body, HB_COUNT, c.max(0) as u64);
        });
        Ok(())
    }

    /// Insert a record, returning its id. The version is stamped
    /// `(0, TS_INF)`: visible to every snapshot. Serialized per file so
    /// chain extension cannot orphan pages under concurrency.
    pub fn insert(&self, pool: &Arc<BufferPool>, data: &[u8]) -> StorageResult<RecordId> {
        self.insert_at(pool, data, 0)
    }

    /// Insert a record version beginning at `begin_ts`: invisible to any
    /// snapshot before it, so an in-flight transaction's inserts (stamped
    /// with its provisional timestamp) hide from concurrent readers.
    pub fn insert_at(
        &self,
        pool: &Arc<BufferPool>,
        data: &[u8],
        begin_ts: u64,
    ) -> StorageResult<RecordId> {
        if data.len() + VERSION_HEADER > SlottedPage::MAX_RECORD {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        self.insert_raw(pool, &with_header(begin_ts, TS_INF, data))
    }

    /// Insert pre-stamped record bytes (version header already attached).
    fn insert_raw(&self, pool: &Arc<BufferPool>, raw: &[u8]) -> StorageResult<RecordId> {
        let len = (raw.len() - VERSION_HEADER) as u32;
        let lock = pool.smo_lock(self.id.0);
        let _guard = lock.lock();
        let header = pool.pin(self.id.0)?;
        let last = header.with_read(|buf| body_get_u64(PageView::new(buf).body(), HB_LAST));
        if last != NO_PAGE {
            let page = pool.pin(last)?;
            let slot = page.with_write(|buf| {
                let mut p = SlottedPage::new(buf);
                if p.can_fit(raw.len()) {
                    Some(p.insert(raw))
                } else {
                    None
                }
            });
            if let Some(slot) = slot {
                drop(header);
                self.bump_count(pool, 1)?;
                let rid = RecordId {
                    page: last,
                    slot: slot?,
                };
                pool.log_op(&WalRecord::HeapInsert {
                    file: self.id.0,
                    rid: rid.pack(),
                    len,
                })?;
                return Ok(rid);
            }
        }
        // Append a new data page to the chain.
        let new_page = pool.allocate()?;
        let new_no = new_page.page_no();
        let slot = new_page.with_write(|buf| {
            let mut p = SlottedPage::format(buf, PageKind::Heap);
            p.set_prev(last);
            p.insert(raw)
        })?;
        if last != NO_PAGE {
            let prev = pool.pin(last)?;
            prev.with_write(|buf| SlottedPage::new(buf).set_next(new_no));
        }
        header.with_write(|buf| {
            let mut p = SlottedPage::new(buf);
            let body = p.body_mut();
            if body_get_u64(body, HB_FIRST) == NO_PAGE {
                body_put_u64(body, HB_FIRST, new_no);
            }
            body_put_u64(body, HB_LAST, new_no);
        });
        pool.chain_append(self.id.0, new_no);
        drop(header);
        self.bump_count(pool, 1)?;
        let rid = RecordId { page: new_no, slot };
        pool.log_op(&WalRecord::HeapInsert {
            file: self.id.0,
            rid: rid.pack(),
            len,
        })?;
        Ok(rid)
    }

    /// Update a record in place, carrying its version stamps over. If the
    /// new value no longer fits on its page the record is deleted and
    /// re-inserted, so the returned id may differ.
    pub fn update(
        &self,
        pool: &Arc<BufferPool>,
        rid: RecordId,
        data: &[u8],
    ) -> StorageResult<RecordId> {
        if data.len() + VERSION_HEADER > SlottedPage::MAX_RECORD {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        let page = pool.pin(rid.page)?;
        let (begin, end) = page.with_read(|buf| {
            PageView::new(buf)
                .read(rid.page, rid.slot)
                .and_then(|raw| split_version(raw).map(|(b, e, _)| (b, e)))
        })?;
        let raw = with_header(begin, end, data);
        let fit = page.with_write(|buf| SlottedPage::new(buf).update(rid.page, rid.slot, &raw))?;
        if fit {
            pool.log_op(&WalRecord::HeapUpdate {
                file: self.id.0,
                old_rid: rid.pack(),
                new_rid: rid.pack(),
                len: data.len() as u32,
            })?;
            return Ok(rid);
        }
        page.with_write(|buf| SlottedPage::new(buf).delete(rid.page, rid.slot))?;
        drop(page);
        self.bump_count(pool, -1)?;
        let new_rid = self.insert_raw(pool, &raw)?;
        pool.log_op(&WalRecord::HeapUpdate {
            file: self.id.0,
            old_rid: rid.pack(),
            new_rid: new_rid.pack(),
            len: data.len() as u32,
        })?;
        Ok(new_rid)
    }

    /// Physically delete a record.
    pub fn delete(&self, pool: &Arc<BufferPool>, rid: RecordId) -> StorageResult<()> {
        let page = pool.pin(rid.page)?;
        page.with_write(|buf| SlottedPage::new(buf).delete(rid.page, rid.slot))?;
        drop(page);
        self.bump_count(pool, -1)?;
        pool.log_op(&WalRecord::HeapDelete {
            file: self.id.0,
            rid: rid.pack(),
        })
    }

    /// Logically delete: end-stamp the record's version at `end_ts` and
    /// decrement the live-record count. The bytes stay in place so older
    /// snapshots keep reading them; vacuum reclaims the space once no
    /// snapshot can see the version ([`crate::txn::TxnManager::take_ripe`]).
    pub fn delete_versioned(
        &self,
        pool: &Arc<BufferPool>,
        rid: RecordId,
        end_ts: u64,
    ) -> StorageResult<()> {
        set_record_end(pool, rid, end_ts)?;
        self.bump_count(pool, -1)?;
        pool.log_op(&WalRecord::HeapDelete {
            file: self.id.0,
            rid: rid.pack(),
        })
    }

    /// First data page of the chain, if any.
    pub fn first_page(&self, pool: &Arc<BufferPool>) -> StorageResult<u64> {
        let header = pool.pin(self.id.0)?;
        Ok(header.with_read(|buf| body_get_u64(PageView::new(buf).body(), HB_FIRST)))
    }

    /// Iterate over all live records, at the [`TS_LATEST`] pseudo-snapshot
    /// (every live version; see [`HeapScan::with_snapshot`]).
    pub fn scan(&self, pool: Arc<BufferPool>) -> HeapScan {
        HeapScan {
            pool,
            file: *self,
            page: None,
            slot: 0,
            done: false,
            run: None,
            snap: TS_LATEST,
        }
    }

    /// Split the file into at most `k` scans over contiguous runs of the
    /// page chain (morsel sources for parallel execution). Every live
    /// record appears in exactly one partition, and concatenating the
    /// partitions in order reproduces the full-scan record order. Fewer
    /// than `k` scans come back when the chain has fewer pages; an empty
    /// file yields no partitions.
    pub fn partitions(&self, pool: &Arc<BufferPool>, k: usize) -> StorageResult<Vec<HeapScan>> {
        let pages = match pool.chain_get(self.id.0) {
            Some(pages) => pages,
            None => {
                // Build the chain once and cache it. Pages are never
                // unlinked (deletes only empty them), so the cache stays
                // valid; inserts extend it via `chain_append`. Built under
                // the SMO lock so a concurrent chain extension cannot slip
                // between the walk and the install.
                let lock = pool.smo_lock(self.id.0);
                let _guard = lock.lock();
                let mut pages = Vec::new();
                let mut page_no = self.first_page(pool)?;
                while page_no != NO_PAGE {
                    pages.push(page_no);
                    let page = pool.pin(page_no)?;
                    page_no = page.with_read(|buf| PageView::new(buf).next());
                }
                pool.chain_put(self.id.0, pages.clone());
                pages
            }
        };
        if pages.is_empty() {
            return Ok(Vec::new());
        }
        let per = pages.len().div_ceil(k.max(1));
        Ok(pages
            .chunks(per)
            .map(|run| HeapScan {
                pool: pool.clone(),
                file: *self,
                page: None,
                slot: 0,
                done: false,
                run: Some(Run {
                    pages: run.to_vec(),
                    next: 0,
                }),
                snap: TS_LATEST,
            })
            .collect())
    }
}

/// Read one record by id (file-independent: the id names the page),
/// stripping the version header.
pub fn read_record(pool: &Arc<BufferPool>, rid: RecordId) -> StorageResult<Vec<u8>> {
    read_record_versioned(pool, rid).map(|(_, _, data)| data)
}

/// Read one record with its version stamps: `(begin_ts, end_ts, bytes)`.
pub fn read_record_versioned(
    pool: &Arc<BufferPool>,
    rid: RecordId,
) -> StorageResult<(u64, u64, Vec<u8>)> {
    let page = pool.pin(rid.page)?;
    page.with_read(|buf| {
        PageView::new(buf)
            .read(rid.page, rid.slot)
            .and_then(|raw| split_version(raw).map(|(b, e, d)| (b, e, d.to_vec())))
    })
}

/// Read many records with their version stamps, pinning each distinct
/// page once (records are grouped by page internally; input order is
/// preserved in the output). Per-record failures — a stale id naming a
/// freed slot or an unreadable page — yield `None` for that entry
/// instead of failing the batch, mirroring the tolerant per-record
/// probing of version-chain walks.
pub fn read_records_versioned(
    pool: &Arc<BufferPool>,
    rids: &[RecordId],
) -> Vec<Option<(u64, u64, Vec<u8>)>> {
    let mut order: Vec<usize> = (0..rids.len()).collect();
    order.sort_unstable_by_key(|&i| (rids[i].page, rids[i].slot));
    let mut out: Vec<Option<(u64, u64, Vec<u8>)>> = vec![None; rids.len()];
    let mut i = 0;
    while i < order.len() {
        let page_no = rids[order[i]].page;
        let mut j = i;
        while j < order.len() && rids[order[j]].page == page_no {
            j += 1;
        }
        if let Ok(page) = pool.pin(page_no) {
            page.with_read(|buf| {
                let view = PageView::new(buf);
                for &idx in &order[i..j] {
                    if let Ok((b, e, d)) =
                        view.read(page_no, rids[idx].slot).and_then(split_version)
                    {
                        out[idx] = Some((b, e, d.to_vec()));
                    }
                }
            });
        }
        i = j;
    }
    out
}

/// Read one record only if its version is visible to snapshot `snap`;
/// `Ok(None)` when the version exists but is invisible (uncommitted, or
/// deleted at or before the snapshot).
pub fn read_record_visible(
    pool: &Arc<BufferPool>,
    rid: RecordId,
    snap: u64,
) -> StorageResult<Option<Vec<u8>>> {
    let (begin, end, data) = read_record_versioned(pool, rid)?;
    Ok(visible(begin, end, snap).then_some(data))
}

/// End-stamp a record version in place at `end_ts` (same-length update:
/// the record never moves). Does not touch the file's record counter —
/// use [`HeapFile::delete_versioned`] for a counted logical delete.
pub fn set_record_end(pool: &Arc<BufferPool>, rid: RecordId, end_ts: u64) -> StorageResult<()> {
    let page = pool.pin(rid.page)?;
    page.with_write(|buf| {
        let mut raw = PageView::new(buf).read(rid.page, rid.slot)?.to_vec();
        if raw.len() < VERSION_HEADER {
            return Err(StorageError::Corrupt(format!(
                "heap record shorter than its version header ({} bytes)",
                raw.len()
            )));
        }
        raw[8..16].copy_from_slice(&end_ts.to_le_bytes());
        let fit = SlottedPage::new(buf).update(rid.page, rid.slot, &raw)?;
        debug_assert!(fit, "same-length update never moves");
        Ok(())
    })
}

/// Delete one record by id without touching the file's record counter.
/// Prefer [`HeapFile::delete`] when the file is known (the log record then
/// names the file instead of `u64::MAX`).
pub fn delete_record(pool: &Arc<BufferPool>, rid: RecordId) -> StorageResult<()> {
    let page = pool.pin(rid.page)?;
    page.with_write(|buf| SlottedPage::new(buf).delete(rid.page, rid.slot))?;
    drop(page);
    pool.log_op(&WalRecord::HeapDelete {
        file: u64::MAX,
        rid: rid.pack(),
    })
}

/// A batch of records packed into one contiguous byte arena.
///
/// `HeapScan::next_batch_into` refills a caller-owned `RecordBatch` so the
/// per-record copies land in a single reused allocation instead of one
/// `Vec<u8>` per record. Record slices stay valid until the next refill.
#[derive(Debug, Default)]
pub struct RecordBatch {
    /// Concatenated record payload bytes (version headers stripped).
    bytes: Vec<u8>,
    /// Per-record `(rid, begin_ts, end_ts, start, end)` — version stamps
    /// plus payload offsets into `bytes`.
    index: Vec<(RecordId, u64, u64, u32, u32)>,
}

impl RecordBatch {
    /// An empty batch (no backing capacity yet).
    pub fn new() -> RecordBatch {
        RecordBatch::default()
    }

    /// Drop all records but keep the arena capacity for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.index.clear();
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn push(&mut self, rid: RecordId, begin: u64, end: u64, data: &[u8]) {
        let start = self.bytes.len() as u32;
        self.bytes.extend_from_slice(data);
        self.index
            .push((rid, begin, end, start, self.bytes.len() as u32));
    }

    /// Iterate over `(rid, record bytes)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &[u8])> {
        self.index
            .iter()
            .map(|&(rid, _, _, s, e)| (rid, &self.bytes[s as usize..e as usize]))
    }

    /// Iterate over `(rid, begin_ts, end_ts, record bytes)` tuples.
    pub fn iter_versioned(&self) -> impl Iterator<Item = (RecordId, u64, u64, &[u8])> {
        self.index
            .iter()
            .map(|&(rid, b, en, s, e)| (rid, b, en, &self.bytes[s as usize..e as usize]))
    }
}

/// An explicit run of chain pages a partitioned scan is confined to.
#[derive(Debug)]
struct Run {
    pages: Vec<u64>,
    /// Index of the next page to visit after the current one.
    next: usize,
}

/// Iterator over `(RecordId, bytes)` pairs of a heap file.
pub struct HeapScan {
    pool: Arc<BufferPool>,
    file: HeapFile,
    /// Current page number; `None` before the first advance.
    page: Option<u64>,
    slot: u16,
    done: bool,
    /// `Some` confines the scan to an explicit page run (see
    /// [`HeapFile::partitions`]); `None` follows the on-page chain.
    run: Option<Run>,
    /// Snapshot timestamp the scan filters against ([`TS_LATEST`] = every
    /// live version).
    snap: u64,
}

impl HeapScan {
    /// Confine the scan to the versions visible at snapshot `snap`.
    pub fn with_snapshot(mut self, snap: u64) -> HeapScan {
        self.snap = snap;
        self
    }
    /// The first page this scan should visit, or `None` when empty.
    fn start_page(&mut self) -> StorageResult<Option<u64>> {
        match &mut self.run {
            Some(run) => {
                let first = run.pages.first().copied();
                run.next = 1;
                Ok(first)
            }
            None => {
                let first = self.file.first_page(&self.pool)?;
                Ok((first != NO_PAGE).then_some(first))
            }
        }
    }

    /// The page after the current one: the next entry of an explicit run,
    /// or `chain_next` read from the page itself.
    fn follow(&mut self, chain_next: u64) -> Option<u64> {
        match &mut self.run {
            Some(run) => {
                let n = run.pages.get(run.next).copied();
                run.next += 1;
                n
            }
            // Page 0 is never a heap data page: a zeroed page (a chain
            // extension rewound by transaction abort) reads `next == 0`,
            // which must terminate the walk, not jump to page 0.
            None => (chain_next != NO_PAGE && chain_next != 0).then_some(chain_next),
        }
    }

    /// Drain up to `n` records into a batch, pinning each visited page
    /// once (the row-at-a-time [`Iterator`] path re-pins per record).
    /// Returns an empty vector when the scan is exhausted.
    pub fn next_batch(&mut self, n: usize) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        let mut batch = RecordBatch::new();
        self.next_batch_into(n, &mut batch)?;
        Ok(batch.iter().map(|(rid, b)| (rid, b.to_vec())).collect())
    }

    /// Refill `out` with up to `n` records, reusing its arena. `out` is
    /// cleared first; it stays empty when the scan is exhausted.
    pub fn next_batch_into(&mut self, n: usize, out: &mut RecordBatch) -> StorageResult<()> {
        out.clear();
        if self.done || n == 0 {
            return Ok(());
        }
        loop {
            let page_no = match self.page {
                Some(p) => p,
                None => match self.start_page().inspect_err(|_| self.done = true)? {
                    Some(first) => {
                        self.page = Some(first);
                        self.slot = 0;
                        first
                    }
                    None => {
                        self.done = true;
                        return Ok(());
                    }
                },
            };
            let page = self.pool.pin(page_no).inspect_err(|_| {
                self.done = true;
            })?;
            // One pin per page: copy every live slot we still need.
            let next = page.with_read(|buf| {
                let p = PageView::new(buf);
                let slots = p.slot_count();
                while self.slot < slots && out.len() < n {
                    let s = self.slot;
                    self.slot += 1;
                    if p.is_live(s) {
                        let raw = p.read(page_no, s).expect("live slot readable");
                        let (begin, end, data) =
                            split_version(raw).expect("record carries a version header");
                        if visible(begin, end, self.snap) {
                            out.push(
                                RecordId {
                                    page: page_no,
                                    slot: s,
                                },
                                begin,
                                end,
                                data,
                            );
                        }
                    }
                }
                if self.slot < slots {
                    None // batch filled mid-page; resume here next call
                } else {
                    Some(p.next())
                }
            });
            match next {
                None => return Ok(()),
                Some(chain_next) => match self.follow(chain_next) {
                    None => {
                        self.done = true;
                        return Ok(());
                    }
                    Some(next_page) => {
                        self.page = Some(next_page);
                        self.slot = 0;
                        if out.len() == n {
                            return Ok(());
                        }
                    }
                },
            }
        }
    }
}

impl Iterator for HeapScan {
    type Item = StorageResult<(RecordId, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let page_no = match self.page {
                Some(p) => p,
                None => {
                    let first = match self.start_page() {
                        Ok(Some(p)) => p,
                        Ok(None) => {
                            self.done = true;
                            return None;
                        }
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e));
                        }
                    };
                    self.page = Some(first);
                    self.slot = 0;
                    first
                }
            };
            let page = match self.pool.pin(page_no) {
                Ok(p) => p,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            let found = page.with_read(|buf| {
                let p = PageView::new(buf);
                let n = p.slot_count();
                while self.slot < n {
                    let s = self.slot;
                    self.slot += 1;
                    if p.is_live(s) {
                        let raw = p.read(page_no, s).expect("live slot readable");
                        let (begin, end, data) =
                            split_version(raw).expect("record carries a version header");
                        if !visible(begin, end, self.snap) {
                            continue;
                        }
                        return Some((
                            RecordId {
                                page: page_no,
                                slot: s,
                            },
                            data.to_vec(),
                        ));
                    }
                }
                None
            });
            if let Some(hit) = found {
                return Some(Ok(hit));
            }
            // Advance to the next page in the chain (or explicit run).
            let chain_next = page.with_read(|buf| PageView::new(buf).next());
            match self.follow(chain_next) {
                None => {
                    self.done = true;
                    return None;
                }
                Some(next) => {
                    self.page = Some(next);
                    self.slot = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Box::new(MemVolume::new()), 32))
    }

    #[test]
    fn spans_many_pages() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        let rec = vec![5u8; 1000];
        let rids: Vec<_> = (0..100).map(|_| f.insert(&pool, &rec).unwrap()).collect();
        let pages: std::collections::HashSet<u64> = rids.iter().map(|r| r.page).collect();
        assert!(
            pages.len() > 1,
            "1000-byte × 100 records need multiple pages"
        );
        assert_eq!(f.record_count(&pool).unwrap(), 100);
        assert_eq!(f.scan(pool.clone()).count(), 100);
    }

    #[test]
    fn record_count_tracks_mutations() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        let a = f.insert(&pool, b"a").unwrap();
        let _b = f.insert(&pool, b"b").unwrap();
        assert_eq!(f.record_count(&pool).unwrap(), 2);
        f.delete(&pool, a).unwrap();
        assert_eq!(f.record_count(&pool).unwrap(), 1);
    }

    #[test]
    fn update_moving_record_keeps_count() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        // Nearly fill one page.
        f.insert(&pool, &vec![0u8; 7000]).unwrap();
        let small = f.insert(&pool, b"tiny").unwrap();
        let moved = f.update(&pool, small, &vec![1u8; 5000]).unwrap();
        assert_ne!(
            small.page, moved.page,
            "grown record must move off the full page"
        );
        assert_eq!(f.record_count(&pool).unwrap(), 2);
        assert_eq!(read_record(&pool, moved).unwrap(), vec![1u8; 5000]);
    }

    #[test]
    fn scan_empty_file() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        assert_eq!(f.scan(pool.clone()).count(), 0);
    }

    #[test]
    fn two_files_are_independent() {
        let pool = pool();
        let f1 = HeapFile::open(HeapFile::create(&pool).unwrap());
        let f2 = HeapFile::open(HeapFile::create(&pool).unwrap());
        f1.insert(&pool, b"one").unwrap();
        f2.insert(&pool, b"two").unwrap();
        f2.insert(&pool, b"three").unwrap();
        assert_eq!(f1.scan(pool.clone()).count(), 1);
        assert_eq!(f2.scan(pool.clone()).count(), 2);
    }

    #[test]
    fn batch_scan_matches_iterator() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        let rids: Vec<_> = (0..100u8)
            .map(|i| f.insert(&pool, &vec![i; 700]).unwrap())
            .collect();
        // Leave dead slots so batching must skip them.
        f.delete(&pool, rids[3]).unwrap();
        f.delete(&pool, rids[50]).unwrap();
        let want: Vec<_> = f.scan(pool.clone()).map(|r| r.unwrap()).collect();
        for n in [1usize, 7, 98, 200] {
            let mut s = f.scan(pool.clone());
            let mut got = Vec::new();
            loop {
                let b = s.next_batch(n).unwrap();
                if b.is_empty() {
                    break;
                }
                assert!(b.len() <= n);
                got.extend(b);
            }
            assert_eq!(got, want, "batch size {n}");
        }
    }

    #[test]
    fn batch_scan_empty_file() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        assert!(f.scan(pool.clone()).next_batch(16).unwrap().is_empty());
    }

    /// Concatenated partition output for a given `k`.
    fn partition_union(f: &HeapFile, pool: &Arc<BufferPool>, k: usize) -> Vec<(RecordId, Vec<u8>)> {
        let mut got = Vec::new();
        for mut part in f.partitions(pool, k).unwrap() {
            loop {
                let b = part.next_batch(17).unwrap();
                if b.is_empty() {
                    break;
                }
                got.extend(b);
            }
        }
        got
    }

    #[test]
    fn partitions_cover_file_in_order() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        let rids: Vec<_> = (0..120u8)
            .map(|i| f.insert(&pool, &vec![i; 600]).unwrap())
            .collect();
        f.delete(&pool, rids[10]).unwrap();
        f.delete(&pool, rids[77]).unwrap();
        let want: Vec<_> = f.scan(pool.clone()).map(|r| r.unwrap()).collect();
        let n_pages: std::collections::HashSet<u64> = want.iter().map(|(r, _)| r.page).collect();
        assert!(n_pages.len() >= 4, "fixture must span several pages");
        for k in [1usize, 2, 3, n_pages.len(), n_pages.len() + 50] {
            let parts = f.partitions(&pool, k).unwrap();
            assert!(!parts.is_empty() && parts.len() <= k);
            assert_eq!(partition_union(&f, &pool, k), want, "k={k}");
        }
    }

    #[test]
    fn partitions_k1_equals_full_scan() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        for i in 0..40u8 {
            f.insert(&pool, &vec![i; 500]).unwrap();
        }
        let parts = f.partitions(&pool, 1).unwrap();
        assert_eq!(parts.len(), 1);
        let want: Vec<_> = f.scan(pool.clone()).map(|r| r.unwrap()).collect();
        assert_eq!(partition_union(&f, &pool, 1), want);
    }

    #[test]
    fn partitions_single_page_file() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        f.insert(&pool, b"only").unwrap();
        let parts = f.partitions(&pool, 8).unwrap();
        assert_eq!(parts.len(), 1, "one page cannot split further");
        assert_eq!(partition_union(&f, &pool, 8).len(), 1);
    }

    #[test]
    fn partitions_see_pages_added_after_chain_is_cached() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        for i in 0..40u8 {
            f.insert(&pool, &vec![i; 600]).unwrap();
        }
        let _ = f.partitions(&pool, 4).unwrap(); // builds and caches the chain
        for i in 40..80u8 {
            f.insert(&pool, &vec![i; 600]).unwrap(); // must extend the cache
        }
        let want: Vec<_> = f.scan(pool.clone()).map(|r| r.unwrap()).collect();
        assert_eq!(partition_union(&f, &pool, 3), want);
        // And the cached walk costs no extra pins per call: two calls in
        // a row pin the same number of pages.
        pool.reset_stats();
        let _ = f.partitions(&pool, 4).unwrap();
        let first = pool.stats();
        let _ = f.partitions(&pool, 4).unwrap();
        let second = pool.stats();
        assert_eq!(
            first.hits + first.misses,
            0,
            "cached partitions pin nothing"
        );
        assert_eq!(second, first);
    }

    #[test]
    fn partitions_empty_file() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        assert!(f.partitions(&pool, 4).unwrap().is_empty());
    }

    #[test]
    fn batch_into_reuses_arena() {
        let pool = pool();
        let f = HeapFile::open(HeapFile::create(&pool).unwrap());
        for i in 0..30u8 {
            f.insert(&pool, &[i; 64]).unwrap();
        }
        let mut scan = f.scan(pool.clone());
        let mut batch = RecordBatch::new();
        let mut seen = 0usize;
        loop {
            scan.next_batch_into(7, &mut batch).unwrap();
            if batch.is_empty() {
                break;
            }
            for (_, bytes) in batch.iter() {
                assert_eq!(bytes, vec![seen as u8; 64]);
                seen += 1;
            }
        }
        assert_eq!(seen, 30);
    }

    #[test]
    fn rid_pack_round_trip() {
        let rid = RecordId {
            page: 123456789,
            slot: 4321,
        };
        assert_eq!(RecordId::unpack(rid.pack()), rid);
    }
}
