//! Buffer pool with clock (second-chance) replacement.
//!
//! All page access in the system goes through [`BufferPool::pin`], which
//! returns a [`PinnedPage`] guard. While pinned, a page cannot be evicted;
//! dropping the guard unpins it. Dirty pages are written back on eviction
//! and on [`BufferPool::flush_all`]. The pool records hit/miss/eviction
//! counters so the benchmark suite (experiment E9) can observe locality.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{StorageError, StorageResult};
use crate::page::{self, PAGE_SIZE};
use crate::volume::Volume;
use crate::wal::Wal;

struct Frame {
    page_no: u64,
    data: RwLock<Box<[u8; PAGE_SIZE]>>,
    dirty: AtomicBool,
    pins: AtomicU32,
    referenced: AtomicBool,
    /// LSN of the last WAL record covering this page (0 without a WAL).
    lsn: AtomicU64,
}

struct PoolState {
    /// page_no → index into `frames`.
    map: HashMap<u64, usize>,
    frames: Vec<Option<Arc<Frame>>>,
    hand: usize,
}

/// Before-image capture for transaction abort. While `capturing` is set
/// (one writer transaction at a time — the transaction manager's writer
/// gate guarantees this), the first exclusive write to each page squirrels
/// away a copy of its pre-write bytes; [`BufferPool::rollback_undo`]
/// writes them back. This is a purely in-memory undo: the WAL never sees
/// uncommitted images (rollback by omission covers the crash case), so
/// abort works identically with or without a log.
#[derive(Default)]
struct UndoState {
    capturing: AtomicBool,
    images: Mutex<HashMap<u64, Box<[u8; PAGE_SIZE]>>>,
}

/// Monotonic counters describing pool behaviour.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Pins satisfied from the pool.
    pub hits: u64,
    /// Pins that required a volume read.
    pub misses: u64,
    /// Frames reclaimed by the clock hand.
    pub evictions: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
}

/// A buffer pool over a [`Volume`].
///
/// The frame table is guarded by a read/write lock rather than a mutex so
/// concurrent scan workers can satisfy pin *hits* — by far the common case
/// under morsel-parallel execution — under a shared lock; only misses,
/// allocations, and eviction take the exclusive lock.
pub struct BufferPool {
    volume: Box<dyn Volume>,
    capacity: usize,
    state: RwLock<PoolState>,
    /// Structure-modification locks, keyed by a structure's root page
    /// (heap-file chain extension must be serialized per file).
    smo_locks: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
    /// Cached heap-file page chains, keyed by header page. Pages are
    /// never freed or reused (the volume allocator is append-only), so a
    /// cached chain can only grow: [`crate::heap::HeapFile::insert`]
    /// appends the new page under the file's SMO lock, and a missing
    /// entry is rebuilt by walking the chain. This keeps
    /// chain-partitioning (morsel-parallel scans) from re-pinning every
    /// page just to read next pointers — which would also make buffer
    /// counters depend on the degree of parallelism.
    chains: Mutex<HashMap<u64, Vec<u64>>>,
    /// The write-ahead log, when the pool is recoverable. Governs the
    /// no-steal eviction gate, the flush rule, and page checksums.
    wal: Option<Arc<Wal>>,
    /// Abort support: page before-images captured for the active writer
    /// transaction.
    undo: UndoState,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `volume`. Capacity is
    /// clamped to at least 4 frames (some operations pin a few pages at
    /// once).
    pub fn new(volume: Box<dyn Volume>, capacity: usize) -> Self {
        Self::build(volume, capacity, None)
    }

    /// Create a recoverable pool: exclusive page writes are registered
    /// with `wal`'s active logged unit, pages a unit dirtied are gated
    /// from eviction until it ends (no-steal), the log is flushed up to a
    /// page's LSN before any write-back (the flush rule), and pages are
    /// checksummed across the volume boundary.
    pub fn with_wal(volume: Box<dyn Volume>, capacity: usize, wal: Arc<Wal>) -> Self {
        Self::build(volume, capacity, Some(wal))
    }

    fn build(volume: Box<dyn Volume>, capacity: usize, wal: Option<Arc<Wal>>) -> Self {
        let capacity = capacity.max(4);
        BufferPool {
            volume,
            capacity,
            state: RwLock::new(PoolState {
                map: HashMap::with_capacity(capacity),
                frames: vec![None; capacity],
                hand: 0,
            }),
            smo_locks: Mutex::new(HashMap::new()),
            chains: Mutex::new(HashMap::new()),
            wal,
            undo: UndoState::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The attached write-ahead log, if the pool is recoverable.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Append a descriptive operation record under the active logged unit.
    /// A no-op without a WAL — structure code calls this unconditionally.
    pub(crate) fn log_op(&self, rec: &crate::wal::WalRecord) -> StorageResult<()> {
        if let Some(wal) = &self.wal {
            wal.log_op(rec)?;
        }
        Ok(())
    }

    /// The structure-modification lock for the structure rooted at
    /// `root_page`. Chain/tree shape changes must hold this lock so
    /// concurrent writers cannot orphan pages.
    pub fn smo_lock(&self, root_page: u64) -> Arc<Mutex<()>> {
        self.smo_locks
            .lock()
            .entry(root_page)
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone()
    }

    /// The cached page chain for the heap file headed at `header`, if
    /// one has been built (see the `chains` field).
    pub(crate) fn chain_get(&self, header: u64) -> Option<Vec<u64>> {
        self.chains.lock().get(&header).cloned()
    }

    /// Install the full page chain for the heap file headed at `header`.
    pub(crate) fn chain_put(&self, header: u64, pages: Vec<u64>) {
        self.chains.lock().insert(header, pages);
    }

    /// Record that a new page was linked onto the end of `header`'s
    /// chain. A no-op when the chain was never cached. Callers must hold
    /// the file's SMO lock (the same lock that serializes the link).
    pub(crate) fn chain_append(&self, header: u64, page: u64) {
        if let Some(pages) = self.chains.lock().get_mut(&header) {
            pages.push(page);
        }
    }

    /// Start capturing page before-images for a writer transaction.
    /// Callers must hold the transaction manager's writer gate (capture
    /// state is global to the pool).
    pub(crate) fn begin_undo_capture(&self) {
        self.undo.images.lock().clear();
        self.undo.capturing.store(true, Ordering::Release);
    }

    /// Stop capturing and discard the captured images (commit path).
    pub(crate) fn end_undo_capture(&self) {
        self.undo.capturing.store(false, Ordering::Release);
        self.undo.images.lock().clear();
    }

    /// Stop capturing and write every captured before-image back over its
    /// page (abort path). Pages that were evicted since capture are
    /// faulted back in and overwritten; restored frames are left dirty so
    /// normal write-back re-persists the pre-transaction bytes. Cached
    /// heap-page chains are dropped wholesale: an aborted chain extension
    /// leaves stale cached page lists, and chains are cheap to rebuild.
    /// Returns the number of pages restored.
    pub(crate) fn rollback_undo(self: &Arc<Self>) -> StorageResult<usize> {
        self.undo.capturing.store(false, Ordering::Release);
        let images: Vec<(u64, Box<[u8; PAGE_SIZE]>)> = self.undo.images.lock().drain().collect();
        let restored = images.len();
        for (page_no, image) in images {
            let page = self.pin(page_no)?;
            page.frame
                .lsn
                .store(page::page_lsn(&image[..]), Ordering::Release);
            let mut data = page.frame.data.write();
            data.copy_from_slice(&image[..]);
            page.frame.dirty.store(true, Ordering::Relaxed);
        }
        self.chains.lock().clear();
        Ok(restored)
    }

    /// Record `data` as `page_no`'s before-image if capture is on and this
    /// is the transaction's first write to the page.
    fn capture_undo(&self, page_no: u64, data: &[u8; PAGE_SIZE]) {
        if !self.undo.capturing.load(Ordering::Acquire) {
            return;
        }
        self.undo.images.lock().entry(page_no).or_insert_with(|| {
            let mut image = Box::new([0u8; PAGE_SIZE]);
            image.copy_from_slice(&data[..]);
            image
        });
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Reset the pool counters (benchmark harness convenience).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }

    /// Pin a page, reading it from the volume on a miss.
    pub fn pin(self: &Arc<Self>, page_no: u64) -> StorageResult<PinnedPage> {
        // Fast path: resident page, shared lock only. The pin count is
        // bumped while the lock is held, so the evictor (which needs the
        // exclusive lock) can never reclaim the frame underneath us.
        {
            let state = self.state.read();
            if let Some(frame) = Self::try_hit(&state, page_no) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PinnedPage {
                    pool: self.clone(),
                    frame,
                });
            }
        }
        let mut state = self.state.write();
        // Re-check: another thread may have faulted the page in between
        // the lock handoff.
        if let Some(frame) = Self::try_hit(&state, page_no) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PinnedPage {
                pool: self.clone(),
                frame,
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.find_victim(&mut state)?;
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.volume.read_page(page_no, &mut data[..])?;
        if self.wal.is_some() && !page::verify_page_checksum(&data[..]) {
            return Err(StorageError::Corrupt(format!(
                "page {page_no} failed its checksum (torn write?); \
                 recovery restores such pages from full-page images"
            )));
        }
        let frame = Arc::new(Frame {
            page_no,
            lsn: AtomicU64::new(page::page_lsn(&data[..])),
            data: RwLock::new(data),
            dirty: AtomicBool::new(false),
            pins: AtomicU32::new(1),
            referenced: AtomicBool::new(true),
        });
        state.map.insert(page_no, idx);
        state.frames[idx] = Some(frame.clone());
        Ok(PinnedPage {
            pool: self.clone(),
            frame,
        })
    }

    /// Look up a resident page and pin it. Must run under either lock
    /// mode (the pin bump is what fences out the evictor).
    fn try_hit(state: &PoolState, page_no: u64) -> Option<Arc<Frame>> {
        let &idx = state.map.get(&page_no)?;
        let frame = state.frames[idx]
            .as_ref()
            .expect("mapped frame exists")
            .clone();
        frame.pins.fetch_add(1, Ordering::Relaxed);
        frame.referenced.store(true, Ordering::Relaxed);
        Some(frame)
    }

    /// Allocate a fresh page on the volume and pin it (contents zeroed).
    pub fn allocate(self: &Arc<Self>) -> StorageResult<PinnedPage> {
        let page_no = self.volume.allocate_page()?;
        if let Some(wal) = &self.wal {
            // The fresh (dirty, zeroed) page belongs to whatever unit is
            // populating it.
            wal.note_write(page_no);
        }
        let mut state = self.state.write();
        let idx = self.find_victim(&mut state)?;
        let frame = Arc::new(Frame {
            page_no,
            lsn: AtomicU64::new(0),
            data: RwLock::new(Box::new([0u8; PAGE_SIZE])),
            dirty: AtomicBool::new(true),
            pins: AtomicU32::new(1),
            referenced: AtomicBool::new(true),
        });
        state.map.insert(page_no, idx);
        state.frames[idx] = Some(frame.clone());
        Ok(PinnedPage {
            pool: self.clone(),
            frame,
        })
    }

    /// Find a free or evictable frame index. Called with the state lock
    /// held; may write back a dirty victim.
    fn find_victim(&self, state: &mut PoolState) -> StorageResult<usize> {
        // First pass: any empty frame.
        if let Some(idx) = state.frames.iter().position(|f| f.is_none()) {
            return Ok(idx);
        }
        // Clock: up to two sweeps (first clears reference bits).
        let n = state.frames.len();
        for _ in 0..2 * n {
            let idx = state.hand;
            state.hand = (state.hand + 1) % n;
            let frame = state.frames[idx].as_ref().expect("full pool has no gaps");
            if frame.pins.load(Ordering::Relaxed) > 0 {
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            // The no-steal rule: a page dirtied by the active logged unit
            // must not reach the volume before the unit's commit record.
            if frame.dirty.load(Ordering::Relaxed)
                && self
                    .wal
                    .as_ref()
                    .is_some_and(|w| w.page_gated(frame.page_no))
            {
                continue;
            }
            // Victim found: write back if dirty, then drop.
            if frame.dirty.load(Ordering::Relaxed) {
                self.write_back(frame)?;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            let page_no = frame.page_no;
            state.map.remove(&page_no);
            state.frames[idx] = None;
            return Ok(idx);
        }
        Err(StorageError::PoolExhausted)
    }

    /// Write one dirty frame to the volume, honouring the flush rule and
    /// stamping the page checksum when the pool is recoverable.
    fn write_back(&self, frame: &Frame) -> StorageResult<()> {
        if let Some(wal) = &self.wal {
            // The flush rule: the log must be durable up to this page's
            // LSN before the page itself is.
            wal.flush_up_to(frame.lsn.load(Ordering::Acquire))?;
            let data = frame.data.read();
            let mut scratch = Box::new([0u8; PAGE_SIZE]);
            scratch.copy_from_slice(&data[..]);
            drop(data);
            page::stamp_page_checksum(&mut scratch[..]);
            self.volume.write_page(frame.page_no, &scratch[..])?;
        } else {
            let data = frame.data.read();
            self.volume.write_page(frame.page_no, &data[..])?;
        }
        frame.dirty.store(false, Ordering::Relaxed);
        self.writebacks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Write back every dirty page. Pages gated by an active logged unit
    /// are skipped (checkpoints run with no unit open, so they see
    /// everything).
    pub fn flush_all(&self) -> StorageResult<()> {
        let state = self.state.read();
        for frame in state.frames.iter().flatten() {
            if frame.dirty.load(Ordering::Relaxed) {
                if self
                    .wal
                    .as_ref()
                    .is_some_and(|w| w.page_gated(frame.page_no))
                {
                    continue;
                }
                self.write_back(frame)?;
            }
        }
        Ok(())
    }

    /// Page numbers of every dirty resident page, sorted (checkpoint
    /// collection order).
    pub fn dirty_page_numbers(&self) -> Vec<u64> {
        let state = self.state.read();
        let mut pages: Vec<u64> = state
            .frames
            .iter()
            .flatten()
            .filter(|f| f.dirty.load(Ordering::Relaxed))
            .map(|f| f.page_no)
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Copy of a page's current bytes (the commit path reads after-images
    /// with this).
    pub fn page_image(self: &Arc<Self>, page_no: u64) -> StorageResult<Vec<u8>> {
        let page = self.pin(page_no)?;
        Ok(page.with_read(|buf| buf.to_vec()))
    }

    /// Stamp `lsn` into a page's header and frame (see
    /// [`crate::page::page_lsn`]). Called by the commit path right after
    /// the page's after-image is appended to the log.
    pub fn stamp_page_lsn(self: &Arc<Self>, page_no: u64, lsn: u64) -> StorageResult<()> {
        let page = self.pin(page_no)?;
        page.frame.lsn.store(lsn, Ordering::Release);
        let mut data = page.frame.data.write();
        page::set_page_lsn(&mut data[..], lsn);
        page.frame.dirty.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Overwrite `page_no` with a full-page image whose effects end at
    /// `lsn` (replication replay — the live twin of recovery's
    /// image-install). The volume is extended with zeroed pages as
    /// needed; the frame is left dirty so normal write-back persists it,
    /// subject to the flush rule against the *local* log.
    pub fn install_page(
        self: &Arc<Self>,
        page_no: u64,
        image: &[u8],
        lsn: u64,
    ) -> StorageResult<()> {
        if image.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page image for {page_no} is {} bytes, want {PAGE_SIZE}",
                image.len()
            )));
        }
        while self.volume.page_count() <= page_no {
            self.volume.allocate_page()?;
        }
        let page = self.pin(page_no)?;
        page.frame.lsn.store(lsn, Ordering::Release);
        let mut data = page.frame.data.write();
        data.copy_from_slice(image);
        page::set_page_lsn(&mut data[..], lsn);
        page.frame.dirty.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Number of pages in the underlying volume.
    pub fn volume_pages(&self) -> u64 {
        self.volume.page_count()
    }

    /// Force the volume's written pages to stable storage.
    pub fn sync_volume(&self) -> StorageResult<()> {
        self.volume.sync()
    }
}

/// A pinned page: access the bytes with [`PinnedPage::with_read`] /
/// [`PinnedPage::with_write`]. The pin is released on drop.
pub struct PinnedPage {
    pool: Arc<BufferPool>,
    frame: Arc<Frame>,
}

impl PinnedPage {
    /// The page number this guard pins.
    pub fn page_no(&self) -> u64 {
        self.frame.page_no
    }

    /// Run `f` with shared access to the page bytes.
    pub fn with_read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let data = self.frame.data.read();
        f(&data[..])
    }

    /// Run `f` with exclusive access to the page bytes; marks the page
    /// dirty and, when the pool is recoverable, registers the page with
    /// the active logged unit (its after-image is captured at commit).
    pub fn with_write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        if let Some(wal) = &self.pool.wal {
            wal.note_write(self.frame.page_no);
        }
        let mut data = self.frame.data.write();
        // Before-image capture must see the pre-write bytes, so it runs
        // after the exclusive latch is held but before `f` mutates.
        self.pool.capture_undo(self.frame.page_no, &data);
        self.frame.dirty.store(true, Ordering::Relaxed);
        f(&mut data[..])
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::Relaxed);
        let _ = &self.pool; // keeps the pool alive while pages are pinned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Box::new(MemVolume::new()), frames))
    }

    #[test]
    fn pin_hit_and_miss_counters() {
        let p = pool(8);
        let page = p.allocate().unwrap();
        let no = page.page_no();
        drop(page);
        let _a = p.pin(no).unwrap();
        let _b = p.pin(no).unwrap();
        let s = p.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(4);
        let mut pages = Vec::new();
        for i in 0..12u8 {
            let page = p.allocate().unwrap();
            page.with_write(|buf| buf[0] = i);
            pages.push(page.page_no());
        }
        // Re-read everything: evicted dirty pages must have been persisted.
        for (i, &no) in pages.iter().enumerate() {
            let page = p.pin(no).unwrap();
            assert_eq!(page.with_read(|buf| buf[0]), i as u8);
        }
        assert!(p.stats().evictions > 0);
        assert!(p.stats().writebacks > 0);
    }

    #[test]
    fn pool_exhausted_when_all_pinned() {
        let p = pool(4);
        let _guards: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        assert!(matches!(p.allocate(), Err(StorageError::PoolExhausted)));
    }

    #[test]
    fn flush_all_persists() {
        let p = pool(8);
        let page = p.allocate().unwrap();
        let no = page.page_no();
        page.with_write(|buf| buf[7] = 77);
        drop(page);
        p.flush_all().unwrap();
        // Force eviction of the clean frame by filling the pool.
        for _ in 0..16 {
            let _ = p.allocate().unwrap();
        }
        let page = p.pin(no).unwrap();
        assert_eq!(page.with_read(|buf| buf[7]), 77);
    }

    #[test]
    fn concurrent_pins() {
        let p = pool(16);
        let page = p.allocate().unwrap();
        let no = page.page_no();
        page.with_write(|buf| buf[0] = 1);
        drop(page);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let page = p.pin(no).unwrap();
                    page.with_write(|buf| buf[0] = buf[0].wrapping_add(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let page = p.pin(no).unwrap();
        assert_eq!(
            page.with_read(|buf| buf[0]),
            1u8.wrapping_add((8 * 1000) as u8)
        );
    }
}
