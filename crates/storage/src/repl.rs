//! WAL-shipping replication, storage half.
//!
//! The segmented, CRC-framed write-ahead log already *is* a replication
//! stream: every committed unit travels as physical page images that the
//! redo-only recovery pass knows how to apply idempotently. This module
//! adds the two endpoints:
//!
//! * [`ReplicationSource`] — reads committed entries straight out of the
//!   primary's segment files (tail-following; the OS page cache makes
//!   freshly appended bytes visible) and pins segment GC so a checkpoint
//!   can never prune history a subscriber still needs. Shipping stops at
//!   the *durable* boundary — under [`crate::Durability::Fsync`] only
//!   fsynced records leave the primary, so a replica can never get ahead
//!   of what a primary crash would preserve.
//! * [`ReplicaApplier`] — appends received entries to the replica's own
//!   log (byte-identical frames at identical LSNs, so replica restart is
//!   ordinary [`crate::recovery::recover`]), then replays committed
//!   units into the buffer pool through [`crate::buffer::BufferPool::install_page`].
//!   Entries of a still-open unit wait in a pending buffer — exactly
//!   mirroring recovery's rule that only committed units redo — and a
//!   shipped `Checkpoint` becomes a real local checkpoint: flush
//!   everything, then prune the local log.
//!
//! Bootstrap requires the primary's log to reach back to LSN 1 (genesis
//! pages only ever appear there); a [`ReplicationSource`] therefore pins
//! the whole log for its lifetime. Seeding a replica from a primary
//! whose pre-source history is already pruned fails with a clear error —
//! base backups are future work (see ROADMAP).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};
use crate::wal::{read_log, Wal, WalEntry, WalRecord};
use crate::{Lsn, StorageManager};

/// The primary-side endpoint: hand out committed log entries after a
/// subscriber's cursor, and keep the segments they live in alive.
pub struct ReplicationSource {
    wal: Arc<Wal>,
    shipped_records: AtomicU64,
    shipped_bytes: AtomicU64,
}

impl ReplicationSource {
    /// Attach a source to a primary's log, pinning segment GC down to
    /// LSN 1 for the source's lifetime (see the module docs on
    /// bootstrap). Fails when pre-existing checkpoints already pruned
    /// the log's head — a subscriber could never replay genesis.
    pub fn new(wal: Arc<Wal>) -> StorageResult<ReplicationSource> {
        wal.set_gc_floor(1);
        // Verify LSN 1 is still on disk: the earliest segment must be
        // the one that starts the chain.
        match wal.read_entries_after(0, 1) {
            Ok(_) => {}
            Err(e) => {
                wal.set_gc_floor(u64::MAX);
                return Err(e);
            }
        }
        Ok(ReplicationSource {
            wal,
            shipped_records: AtomicU64::new(0),
            shipped_bytes: AtomicU64::new(0),
        })
    }

    /// Committed entries with LSNs strictly after `after_lsn`, capped at
    /// `max_records`, plus the primary's current durable frontier (the
    /// lag denominator). An empty batch means the subscriber is caught
    /// up.
    pub fn fetch(&self, after_lsn: Lsn, max_records: usize) -> StorageResult<(Vec<WalEntry>, Lsn)> {
        let entries = self.wal.read_entries_after(after_lsn, max_records)?;
        self.shipped_records
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        let bytes: usize = entries.iter().map(frame_cost).sum();
        self.shipped_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        Ok((entries, self.wal.durable_lsn()))
    }

    /// The primary's durable log frontier.
    pub fn durable_lsn(&self) -> Lsn {
        self.wal.durable_lsn()
    }

    /// Records shipped through this source so far.
    pub fn shipped_records(&self) -> u64 {
        self.shipped_records.load(Ordering::Relaxed)
    }

    /// Frame bytes shipped through this source so far.
    pub fn shipped_bytes(&self) -> u64 {
        self.shipped_bytes.load(Ordering::Relaxed)
    }

    /// Sequence number of the primary segment currently being shipped
    /// from (monotonic; the `repl_shipped_segments` gauge).
    pub fn segment_seq(&self) -> u64 {
        self.wal.segment_seq()
    }
}

impl Drop for ReplicationSource {
    fn drop(&mut self) {
        // Release the GC pin: without subscribers the checkpoint rule
        // alone governs pruning again.
        self.wal.set_gc_floor(u64::MAX);
    }
}

/// Approximate frame cost of an entry (header + lsn + unit + record
/// body), for the shipped-bytes counter without re-encoding.
fn frame_cost(e: &WalEntry) -> usize {
    let mut out = Vec::new();
    crate::wal::encode_frame(e, &mut out);
    out.len()
}

/// Counters describing one [`ReplicaApplier::ingest`] call.
#[derive(Debug, Default, Clone, Copy)]
pub struct ApplyStats {
    /// Entries appended to the local log.
    pub records: u64,
    /// Committed units whose page images were installed.
    pub units: u64,
    /// Full-page images installed into the pool.
    pub pages: u64,
    /// Shipped checkpoints executed locally (flush + local log GC).
    pub checkpoints: u64,
}

/// The replica-side endpoint: a cursor into the shipped stream plus the
/// pending buffer of the currently open unit. Operates on a perfectly
/// ordinary [`StorageManager`] — the local log is a real [`Wal`] and
/// restart recovery is the storage manager's own.
pub struct ReplicaApplier {
    sm: StorageManager,
    wal: Arc<Wal>,
    /// Entries of the trailing still-open unit: appended to the local
    /// log but not yet replayed (their commit has not arrived). Mirrors
    /// recovery's committed-units-only redo rule.
    pending: Vec<WalEntry>,
    records: Arc<AtomicU64>,
    units: Arc<AtomicU64>,
    checkpoints: Arc<AtomicU64>,
}

/// Shared handles onto a [`ReplicaApplier`]'s lifetime counters, for
/// metric callbacks that outlive a borrow of the applier.
#[derive(Clone)]
pub struct ApplierCounters {
    /// Entries appended to the local log.
    pub records: Arc<AtomicU64>,
    /// Committed units replayed.
    pub units: Arc<AtomicU64>,
    /// Shipped checkpoints executed locally.
    pub checkpoints: Arc<AtomicU64>,
}

impl ReplicaApplier {
    /// Wrap a freshly opened replica storage manager. `sm` must be
    /// WAL-backed (opened via [`StorageManager::open`], which already
    /// ran recovery); the trailing open unit, if the last session
    /// crashed mid-ship, is re-read into the pending buffer so its
    /// remainder can complete it.
    pub fn new(sm: StorageManager) -> StorageResult<ReplicaApplier> {
        let wal =
            sm.pool().wal().cloned().ok_or_else(|| {
                StorageError::Corrupt("a replica needs a WAL-backed store".into())
            })?;
        // Preload: entries of the unit left open at the log's tail.
        // Units are serialized on the primary, so the open unit's
        // entries are exactly the suffix from its Begin record.
        let (entries, _) = read_log(wal.dir())?;
        let mut open_at: Option<usize> = None;
        for (i, e) in entries.iter().enumerate() {
            match e.rec {
                WalRecord::Begin => open_at = Some(i),
                WalRecord::Commit { .. } => open_at = None,
                _ => {}
            }
        }
        let pending = match open_at {
            Some(i) => entries[i..].to_vec(),
            None => Vec::new(),
        };
        Ok(ReplicaApplier {
            sm,
            wal,
            pending,
            records: Arc::new(AtomicU64::new(0)),
            units: Arc::new(AtomicU64::new(0)),
            checkpoints: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Shared handles onto the lifetime counters (metric callbacks).
    pub fn counters(&self) -> ApplierCounters {
        ApplierCounters {
            records: self.records.clone(),
            units: self.units.clone(),
            checkpoints: self.checkpoints.clone(),
        }
    }

    /// The local write-ahead log (shared handle), e.g. for a
    /// segment-sequence gauge.
    pub fn wal(&self) -> Arc<Wal> {
        self.wal.clone()
    }

    /// The replica's storage manager (the one the applier replays
    /// into).
    pub fn storage(&self) -> &StorageManager {
        &self.sm
    }

    /// The LSN up to which the local log mirrors the primary's — the
    /// fetch cursor for the next batch.
    pub fn applied_lsn(&self) -> Lsn {
        self.wal.appended_lsn()
    }

    /// The replay horizon: the last commit timestamp made visible to
    /// replica readers (the storage clock — snapshots pin to it).
    pub fn horizon(&self) -> u64 {
        self.sm.txn().clock()
    }

    /// Total entries appended to the local log by this applier.
    pub fn records_applied(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Total committed units replayed by this applier.
    pub fn units_applied(&self) -> u64 {
        self.units.load(Ordering::Relaxed)
    }

    /// Shipped checkpoints executed locally.
    pub fn checkpoints_applied(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Sequence number of the local segment being appended to.
    pub fn segment_seq(&self) -> u64 {
        self.wal.segment_seq()
    }

    /// Append a batch of shipped entries to the local log and replay
    /// what became committed. Entries must continue the local log
    /// exactly (`first.lsn == applied_lsn() + 1`, consecutive after
    /// that) — the local [`Wal::append`] assigns the same LSNs the
    /// primary did, which is verified per record.
    ///
    /// Failure mid-batch leaves a prefix appended (and possibly
    /// applied); that is the crash case recovery and the pending-buffer
    /// preload in [`ReplicaApplier::new`] are built for. Callers drop
    /// the applier and reopen the replica.
    pub fn ingest(&mut self, entries: &[WalEntry]) -> StorageResult<ApplyStats> {
        let mut stats = ApplyStats::default();
        let mut max_ts = 0;
        let first = self.wal.appended_lsn() + 1;
        for (offset, e) in entries.iter().enumerate() {
            let expect = first + offset as u64;
            if e.lsn != expect {
                return Err(StorageError::Corrupt(format!(
                    "replication stream gap: got lsn {}, want {expect}",
                    e.lsn
                )));
            }
            match &e.rec {
                WalRecord::Checkpoint { clock } => {
                    self.apply_checkpoint(e, *clock, &mut stats)?;
                }
                rec => {
                    let lsn = self.wal.append(e.unit, rec)?;
                    debug_assert_eq!(lsn, e.lsn, "local log diverged from the stream");
                    stats.records += 1;
                    if e.unit == 0 {
                        // Outside any unit: checkpoint-written images
                        // apply unconditionally (recovery's `unit == 0`
                        // arm); descriptive records are informational.
                        if let WalRecord::PageImage { page_no, image } = &e.rec {
                            self.sm.pool().install_page(*page_no, image, e.lsn)?;
                            stats.pages += 1;
                        }
                    } else {
                        self.pending.push(e.clone());
                        if let WalRecord::Commit { ts } = e.rec {
                            self.apply_commit(e.unit, &mut stats)?;
                            max_ts = max_ts.max(ts);
                        }
                    }
                }
            }
        }
        // One durability point per batch: the local log holds everything
        // this call shipped before the caller reports progress — and
        // before any new horizon is published. Publishing only after the
        // flush means a reader can never be handed a horizon whose
        // commit record a crash could still lose; the recovered horizon
        // is always at least what readers were shown.
        self.wal.flush()?;
        if max_ts > 0 {
            self.advance_clock(max_ts);
        }
        self.records.fetch_add(stats.records, Ordering::Relaxed);
        self.units.fetch_add(stats.units, Ordering::Relaxed);
        self.checkpoints
            .fetch_add(stats.checkpoints, Ordering::Relaxed);
        Ok(stats)
    }

    /// A unit's commit arrived: replay its buffered page images. The
    /// commit's timestamp becomes the horizon only at the caller's
    /// batch-end flush — visibility must never run ahead of the local
    /// log's durability.
    fn apply_commit(&mut self, unit: u64, stats: &mut ApplyStats) -> StorageResult<()> {
        let pool = self.sm.pool();
        for e in &self.pending {
            if e.unit != unit {
                continue;
            }
            if let WalRecord::PageImage { page_no, image } = &e.rec {
                pool.install_page(*page_no, image, e.lsn)?;
                stats.pages += 1;
            }
        }
        self.pending.retain(|e| e.unit != unit);
        stats.units += 1;
        Ok(())
    }

    /// A shipped checkpoint becomes a local one. Order matters twice
    /// over: the local log must be durable before pages flush (the
    /// usual rule — `flush_all` enforces it per page), and every page
    /// must be on the volume before the checkpoint record enters the
    /// local log — otherwise a crash could recover from a checkpoint
    /// whose pre-images the local log no longer holds.
    fn apply_checkpoint(
        &mut self,
        e: &WalEntry,
        clock: u64,
        stats: &mut ApplyStats,
    ) -> StorageResult<()> {
        let pool = self.sm.pool();
        self.wal.flush()?;
        pool.flush_all()?;
        pool.sync_volume()?;
        let lsn = self.wal.append(0, &e.rec)?;
        debug_assert_eq!(lsn, e.lsn, "local log diverged from the stream");
        self.wal.flush()?;
        self.wal.gc_segments(lsn)?;
        stats.records += 1;
        stats.checkpoints += 1;
        if clock > 0 {
            self.advance_clock(clock);
        }
        Ok(())
    }

    /// Move the storage clock (never backwards): replica snapshots pin
    /// to it, so this is what publishes a new horizon to readers.
    fn advance_clock(&self, ts: u64) {
        let txn = self.sm.txn();
        if ts > txn.clock() {
            txn.seed_clock(ts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Durability, StorageManager};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("exodus-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn pump(src: &ReplicationSource, app: &mut ReplicaApplier) {
        loop {
            let (entries, _) = src.fetch(app.applied_lsn(), 512).unwrap();
            if entries.is_empty() {
                break;
            }
            app.ingest(&entries).unwrap();
        }
    }

    #[test]
    fn ships_and_replays_committed_units() {
        let dir = temp_dir("ship");
        let (sm, _) = StorageManager::open(&dir.join("p.vol"), 128, Durability::Fsync).unwrap();
        let file = sm.create_file().unwrap();
        let mut rids = Vec::new();
        for i in 0..20u8 {
            let unit = sm.begin_unit().unwrap();
            rids.push(sm.insert(file, &[i; 100]).unwrap());
            unit.commit().unwrap();
        }
        let src = ReplicationSource::new(sm.pool().wal().unwrap().clone()).unwrap();

        let (rsm, _) = StorageManager::open(&dir.join("r.vol"), 128, Durability::Fsync).unwrap();
        let mut app = ReplicaApplier::new(rsm.clone()).unwrap();
        pump(&src, &mut app);
        assert_eq!(app.applied_lsn(), src.durable_lsn());
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(rsm.read(*rid).unwrap(), vec![i as u8; 100]);
        }
        assert!(src.shipped_records() > 0);
        assert!(app.units_applied() >= 20);
    }

    #[test]
    fn shipped_checkpoint_prunes_local_log_and_survives_reopen() {
        let dir = temp_dir("ckpt");
        let (sm, _) = StorageManager::open(&dir.join("p.vol"), 128, Durability::Fsync).unwrap();
        let src = ReplicationSource::new(sm.pool().wal().unwrap().clone()).unwrap();
        let file = sm.create_file().unwrap();
        let rid_a = sm.insert(file, b"before checkpoint").unwrap();
        sm.checkpoint().unwrap();
        let unit = sm.begin_unit().unwrap();
        let rid_b = sm.insert(file, b"after checkpoint").unwrap();
        unit.commit().unwrap();

        let (rsm, _) = StorageManager::open(&dir.join("r.vol"), 128, Durability::Fsync).unwrap();
        let mut app = ReplicaApplier::new(rsm.clone()).unwrap();
        pump(&src, &mut app);
        assert!(app.checkpoints_applied() >= 1);
        let cursor = app.applied_lsn();
        drop(app);
        drop(rsm);

        // Reopen: recovery replays the (pruned) local log; the cursor
        // must come back exactly where shipping left off.
        let (rsm, _) = StorageManager::open(&dir.join("r.vol"), 128, Durability::Fsync).unwrap();
        let app = ReplicaApplier::new(rsm.clone()).unwrap();
        assert_eq!(app.applied_lsn(), cursor);
        assert_eq!(rsm.read(rid_a).unwrap(), b"before checkpoint".to_vec());
        assert_eq!(rsm.read(rid_b).unwrap(), b"after checkpoint".to_vec());
    }

    #[test]
    fn source_pins_gc_and_prune_detection_works() {
        let dir = temp_dir("pin");
        // Tiny segments so checkpoints would prune without the pin.
        let (sm, _) =
            StorageManager::open_with_config(&dir.join("p.vol"), 128, Durability::Fsync, 4096)
                .unwrap();
        let src = ReplicationSource::new(sm.pool().wal().unwrap().clone()).unwrap();
        let file = sm.create_file().unwrap();
        for i in 0..10u8 {
            sm.insert(file, &[i; 1000]).unwrap();
            sm.checkpoint().unwrap();
        }
        // With the source alive, history back to LSN 1 is still there.
        let (entries, _) = src.fetch(0, 10_000).unwrap();
        assert_eq!(entries.first().unwrap().lsn, 1);
        drop(src);
        // Dropping the source lifts the pin; the next checkpoint prunes,
        // and a late subscriber gets a clear error.
        sm.checkpoint().unwrap();
        let wal = sm.pool().wal().unwrap().clone();
        let err = match ReplicationSource::new(wal) {
            Err(e) => e,
            Ok(_) => panic!("subscribing to a pruned log must fail"),
        };
        assert!(err.to_string().contains("pruned"), "got: {err}");
    }

    #[test]
    fn frame_codec_round_trips() {
        let dir = temp_dir("codec");
        let (sm, _) = StorageManager::open(&dir.join("p.vol"), 128, Durability::Fsync).unwrap();
        let file = sm.create_file().unwrap();
        let unit = sm.begin_unit().unwrap();
        sm.insert(file, b"payload").unwrap();
        unit.commit().unwrap();
        let wal = sm.pool().wal().unwrap();
        let entries = wal.read_entries_after(0, 1024).unwrap();
        assert!(!entries.is_empty());
        let mut bytes = Vec::new();
        for e in &entries {
            crate::wal::encode_frame(e, &mut bytes);
        }
        let decoded = crate::wal::decode_frames(&bytes).unwrap();
        assert_eq!(decoded.len(), entries.len());
        for (a, b) in entries.iter().zip(&decoded) {
            assert_eq!(a.lsn, b.lsn);
            assert_eq!(a.unit, b.unit);
        }
        // A flipped byte is an error, not a silent tail.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        assert!(crate::wal::decode_frames(&corrupt).is_err());
    }
}
