//! Storage-level error type.

use std::fmt;

/// Errors raised by the storage manager.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O error from a file-backed volume.
    Io(std::io::Error),
    /// A page number beyond the end of the volume.
    PageOutOfBounds(u64),
    /// A slot that does not exist or has been deleted.
    InvalidSlot { page: u64, slot: u16 },
    /// A record too large to fit on a page (use a large object instead).
    RecordTooLarge(usize),
    /// The buffer pool has no evictable frame (everything is pinned).
    PoolExhausted,
    /// An OID that was never allocated or has been destroyed.
    UnknownOid(u64),
    /// Structural corruption detected while reading a page.
    Corrupt(String),
    /// A B+-tree key already present when uniqueness was required.
    DuplicateKey,
    /// A WAL segment written by an incompatible log-format version.
    /// Opening old data fails loudly instead of silently truncating the
    /// log or misreading records.
    UnsupportedLogVersion {
        /// Version stamped in the segment header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// Read past the end of a large object.
    LobOutOfBounds { offset: u64, len: u64 },
    /// A commit whose record reached the log but whose fsync failed:
    /// the outcome is unknown until the next recovery (the transaction
    /// is parked unpublished; a restart may surface it as committed).
    /// Carries the commit timestamp and the underlying flush error.
    IndeterminateCommit {
        /// The parked transaction's commit timestamp.
        ts: u64,
        /// The flush failure, rendered.
        cause: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "invalid slot {slot} on page {page}")
            }
            StorageError::RecordTooLarge(n) => {
                write!(f, "record of {n} bytes too large for a page")
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            StorageError::UnknownOid(o) => write!(f, "unknown oid {o}"),
            StorageError::Corrupt(m) => write!(f, "corrupt page: {m}"),
            StorageError::DuplicateKey => write!(f, "duplicate key in unique index"),
            StorageError::UnsupportedLogVersion { found, expected } => write!(
                f,
                "wal segment has log-format version {found}, this build requires {expected} \
                 (the on-disk format changed incompatibly; no migration exists)"
            ),
            StorageError::LobOutOfBounds { offset, len } => {
                write!(f, "large-object access at {offset} beyond length {len}")
            }
            StorageError::IndeterminateCommit { ts, cause } => write!(
                f,
                "commit at timestamp {ts} is indeterminate: the commit record is in the \
                 log but its fsync failed ({cause}); recovery will decide its fate"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type StorageResult<T> = Result<T, StorageError>;
