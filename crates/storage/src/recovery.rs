//! Crash recovery: analysis and redo over the write-ahead log.
//!
//! [`recover`] is run against the volume *file* before the volume, buffer
//! pool, or [`crate::wal::Wal`] are constructed (see
//! [`crate::StorageManager::open`]). It is a pure function of the log and
//! volume contents, so running it twice — or crashing halfway through and
//! running it again — converges to the same state (idempotent recovery).
//!
//! The state machine:
//!
//! 1. **Analysis.** Scan every segment, CRC-validating frames and the LSN
//!    chain. The scan yields the valid prefix of the log; a torn final
//!    record (or garbage tail) marks the end and is measured for
//!    truncation. Within the prefix, find the last
//!    [`WalRecord::Checkpoint`] and collect, after it: the set of
//!    committed units (those whose [`WalRecord::Commit`] made it into the
//!    valid prefix) and every [`WalRecord::PageImage`].
//! 2. **Redo.** Replay the page images of committed units (and unit-0
//!    images, which checkpoints log outside any unit) in LSN order,
//!    rewriting whole pages. Each restored page gets its image's LSN and a
//!    fresh checksum stamped, so a *torn page* — half-written by a crash
//!    mid-write-back — is simply overwritten; per-page checksums exist to
//!    *detect* such pages on later reads, full-page images are what
//!    repair them. Uncommitted units contribute nothing: that is the
//!    statement rollback. The volume file is padded to a whole number of
//!    pages first (a torn `allocate_page` can leave a ragged tail).
//! 3. **Truncate.** Physically truncate the torn tail and delete any
//!    segments past it, then fsync, so the next [`crate::wal::Wal::open`]
//!    appends from a clean end.
//!
//! There is no undo pass: the no-steal buffer-pool rule guarantees no
//! uncommitted page ever reached the volume, so there is nothing to undo.

use std::collections::HashSet;
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{StorageError, StorageResult};
use crate::failpoint::{self, WriteAction};
use crate::page::{self, PAGE_SIZE};
use crate::wal::{self, WalRecord};

/// What a recovery pass did. Returned by [`recover`] and surfaced through
/// [`crate::StorageManager::open`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid log records scanned (from the whole log, not only the
    /// replayed suffix).
    pub records_scanned: u64,
    /// Committed units whose images were replayed.
    pub units_replayed: u64,
    /// Units that had begun but not committed — rolled back by omission.
    pub units_rolled_back: u64,
    /// Page images written to the volume.
    pub pages_restored: u64,
    /// Whether the log ended in a torn/corrupt record.
    pub torn_tail: bool,
    /// Bytes of invalid log tail truncated.
    pub bytes_truncated: u64,
    /// LSN of the last valid record (0 for an empty log).
    pub last_lsn: u64,
    /// Highest commit timestamp made durable before the crash: the max
    /// over every [`WalRecord::Commit`]'s `ts` and every
    /// [`WalRecord::Checkpoint`]'s `clock` in the valid prefix. The
    /// transaction manager's commit clock restarts from here.
    pub clock: u64,
}

impl RecoveryReport {
    /// Whether recovery found anything to do at all.
    pub fn was_clean(&self) -> bool {
        self.pages_restored == 0 && self.units_rolled_back == 0 && !self.torn_tail
    }

    /// Register this report's figures on `reg` under the
    /// `storage_recovery_` prefix. Recovery runs once, before the rest of
    /// the system comes up, so the values are constants captured at
    /// registration time.
    pub fn register_metrics(&self, reg: &exodus_obs::MetricsRegistry) {
        let fields: [(&str, &str, u64); 5] = [
            (
                "storage_recovery_records_scanned",
                "Valid log records scanned by the last recovery pass.",
                self.records_scanned,
            ),
            (
                "storage_recovery_units_replayed",
                "Committed units replayed by the last recovery pass.",
                self.units_replayed,
            ),
            (
                "storage_recovery_units_rolled_back",
                "Uncommitted units rolled back by the last recovery pass.",
                self.units_rolled_back,
            ),
            (
                "storage_recovery_pages_restored",
                "Page images written to the volume by the last recovery pass.",
                self.pages_restored,
            ),
            (
                "storage_recovery_bytes_truncated",
                "Bytes of invalid log tail truncated by the last recovery pass.",
                self.bytes_truncated,
            ),
        ];
        for (name, help, value) in fields {
            reg.counter_fn(name, help, move || value);
        }
    }
}

/// Run analysis + redo + tail truncation. `wal_dir` may not exist yet (a
/// fresh database): recovery is then a no-op. See the module docs for the
/// protocol.
pub fn recover(wal_dir: &Path, volume_path: &Path) -> StorageResult<RecoveryReport> {
    let (entries, tail) = wal::read_log(wal_dir)?;
    let mut report = RecoveryReport {
        records_scanned: entries.len() as u64,
        torn_tail: tail.torn,
        bytes_truncated: tail.torn_bytes,
        last_lsn: tail.last_lsn,
        ..Default::default()
    };

    // The commit clock survives anywhere in the valid prefix: commits
    // carry their timestamp, checkpoints carry the clock so segment GC
    // (which drops pre-checkpoint segments) cannot lose it.
    report.clock = entries
        .iter()
        .map(|e| match e.rec {
            WalRecord::Commit { ts } => ts,
            WalRecord::Checkpoint { clock } => clock,
            _ => 0,
        })
        .max()
        .unwrap_or(0);

    // Analysis: committed units and images after the last checkpoint.
    let after_checkpoint = entries
        .iter()
        .rposition(|e| matches!(e.rec, WalRecord::Checkpoint { .. }))
        .map_or(0, |i| i + 1);
    let live = &entries[after_checkpoint..];
    let mut begun: HashSet<u64> = HashSet::new();
    let mut committed: HashSet<u64> = HashSet::new();
    for e in live {
        match e.rec {
            WalRecord::Begin => {
                begun.insert(e.unit);
            }
            WalRecord::Commit { .. } => {
                committed.insert(e.unit);
            }
            _ => {}
        }
    }
    report.units_replayed = committed.len() as u64;
    report.units_rolled_back = begun.difference(&committed).count() as u64;

    // Redo: committed (or checkpoint-time unit-0) page images, LSN order.
    let images: Vec<_> = live
        .iter()
        .filter_map(|e| match &e.rec {
            WalRecord::PageImage { page_no, image }
                if e.unit == 0 || committed.contains(&e.unit) =>
            {
                Some((e.lsn, *page_no, image))
            }
            _ => None,
        })
        .collect();
    if !images.is_empty() || volume_path.exists() {
        let mut vol = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(volume_path)?;
        // A torn allocate_page can leave a ragged tail; square it off
        // (even with nothing to replay — the volume must reopen cleanly).
        let len = vol.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            let padded = len.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64;
            vol.set_len(padded)?;
            vol.sync_data()?;
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        for (lsn, page_no, image) in images {
            if image.len() != PAGE_SIZE {
                return Err(StorageError::Corrupt(format!(
                    "page image for page {page_no} has {} bytes",
                    image.len()
                )));
            }
            buf.copy_from_slice(image);
            page::set_page_lsn(&mut buf, lsn);
            page::stamp_page_checksum(&mut buf);
            match failpoint::check_write("recovery.write_page", PAGE_SIZE)? {
                WriteAction::Full => {
                    vol.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
                    vol.write_all(&buf)?;
                }
                WriteAction::Torn(n) => {
                    vol.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
                    vol.write_all(&buf[..n])?;
                    // Writing half a page may also leave a ragged file end.
                    let len = vol.metadata()?.len();
                    if len % PAGE_SIZE as u64 != 0 {
                        vol.set_len(len.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64)?;
                    }
                    return Err(StorageError::Io(std::io::Error::other(
                        "failpoint: torn recovery write",
                    )));
                }
            }
            report.pages_restored += 1;
        }
        // Restored pages may land past the old end with a gap: the gap
        // pages read as zero, i.e. PageKind::Free — harmless.
        vol.sync_data()?;
    }

    // Truncate the invalid tail so the reopened log ends cleanly.
    if tail.torn {
        truncate_tail(wal_dir, tail.valid_end)?;
    }
    Ok(report)
}

/// Physically remove everything past the last valid frame: truncate the
/// segment holding it and delete any later segments. With no valid end
/// (the very first segment's header was torn), all segments go.
fn truncate_tail(wal_dir: &Path, valid_end: Option<(u64, u64)>) -> StorageResult<()> {
    for (seq, path) in wal::list_segments(wal_dir)? {
        match valid_end {
            Some((keep_seq, keep_off)) if seq == keep_seq => {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(keep_off)?;
                f.sync_data()?;
            }
            Some((keep_seq, _)) if seq < keep_seq => {}
            _ => std::fs::remove_file(&path)?,
        }
    }
    Ok(())
}
