//! Multi-version concurrency control: snapshot-isolated transactions.
//!
//! This module adds a transaction layer over the logged-unit machinery of
//! [`crate::wal`]: a [`TxnManager`] issuing monotonic commit timestamps, a
//! [`Snapshot`] guard giving readers a frozen, consistent view that never
//! blocks (or is blocked by) the writer, and a [`WriteTxn`] guard wrapping
//! a logged unit with in-memory rollback so `abort` works at runtime, not
//! just across a crash.
//!
//! # The protocol
//!
//! * **Record versioning.** Every heap record carries a
//!   `(begin_ts, end_ts)` header stamped by [`crate::heap`]. A version is
//!   [`visible`] to a snapshot `s` when `begin <= s && (end == TS_INF ||
//!   s < end)`. Updates insert a *new* version and end-stamp the old one;
//!   deletes just end-stamp. Old versions are reachable through per-object
//!   version chains ([`TxnManager::note_chain`]) until vacuum reclaims
//!   them.
//! * **Single writer, many readers.** One write transaction runs at a
//!   time, serialized by the writer gate (this matches the one-active-unit
//!   rule the WAL already imposes). Its provisional timestamp — drawn
//!   from a dedicated `next_ts` counter, always above the clock — is
//!   also its commit timestamp, valid precisely because writers are
//!   serialized. Readers take snapshots at the *published* clock, so an
//!   in-flight (or committed-but-not-yet-durable) writer's versions are
//!   invisible to everyone but itself.
//! * **Commit.** Append the unit's page after-images, then
//!   [`crate::wal::WalRecord::Commit`]`{ ts }` — the commit point — then
//!   *release the writer gate before flushing*: the next writer appends
//!   its records while this one waits on the fsync, and committers
//!   queued on the same fsync share it (group commit; see
//!   [`crate::wal::Wal::flush_up_to`]). The clock is published only
//!   after the record is durable, so a commit is never visible before
//!   it would survive a crash. Crash before the commit record ⇒
//!   recovery rolls the whole transaction back by omission.
//! * **Abort.** Restore the buffer pool's captured before-images
//!   ([`crate::buffer`]'s undo capture), drop the version-chain and
//!   reclaim bookkeeping the transaction accumulated, and end the unit
//!   *without* a commit record. Pages the transaction allocated leak
//!   (zeroed) — the volume allocator is append-only and a leaked free
//!   page is harmless.
//! * **Vacuum.** Structural garbage — dead record versions, object-table
//!   slots of deleted objects — cannot be reclaimed at commit time
//!   because older snapshots may still need them. Mutators defer
//!   [`ReclaimOp`]s instead; [`TxnManager::take_ripe`] hands back the ops
//!   whose commit timestamp is at or below the reclaim watermark (the
//!   oldest active snapshot, or the clock when none are active).
//!
//! See DESIGN.md §13 for the visibility rules and the documented
//! limitations (secondary-index reads under old snapshots, page leaks on
//! abort).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use parking_lot::Mutex;

use crate::error::StorageResult;
use crate::heap::RecordId;
use crate::object::Oid;

/// `end_ts` of a live (not yet deleted or superseded) record version.
pub const TS_INF: u64 = u64::MAX;

/// A pseudo-snapshot that sees every live version regardless of begin
/// timestamp — the legacy "no transactions in play" view. Storage-level
/// callers that never run concurrently with a writer (unit tests, offline
/// tools) may use it; session code must take real snapshots, because at
/// `TS_LATEST` an in-flight writer's uncommitted versions are visible.
pub const TS_LATEST: u64 = u64::MAX;

/// Is the version stamped `(begin, end)` visible to snapshot `snap`?
///
/// Visible iff the version was committed at or before the snapshot and
/// not end-stamped at or before it: `begin <= snap && (end == TS_INF ||
/// snap < end)`.
#[inline]
pub fn visible(begin: u64, end: u64, snap: u64) -> bool {
    begin <= snap && (end == TS_INF || snap < end)
}

/// A deferred reclamation of structure space that older snapshots may
/// still need. Buffered per-transaction, promoted to the manager's global
/// list at commit (stamped with the commit timestamp), dropped at abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReclaimOp {
    /// Physically delete a dead record version from its heap page. `file`
    /// is the heap file header page when known (enables free-list reuse
    /// bookkeeping); the page-level delete needs only the rid.
    Record {
        /// Heap file the record belongs to.
        file: u64,
        /// The dead version's record id.
        rid: RecordId,
    },
    /// Free the object-table slot of a deleted object.
    ObjectSlot {
        /// The deleted object.
        oid: Oid,
    },
    /// Remove `rid` from `oid`'s in-memory version chain.
    ChainEntry {
        /// Object whose chain holds the dead version.
        oid: Oid,
        /// The dead version's record id.
        rid: RecordId,
    },
}

/// A [`ReclaimOp`] plus the commit timestamp of the transaction that made
/// the underlying version dead. Safe to apply once every active snapshot
/// is at or past `ts`.
#[derive(Debug, Clone)]
pub struct Reclaim {
    /// Commit timestamp after which the target is garbage.
    pub ts: u64,
    /// What to reclaim.
    pub op: ReclaimOp,
}

/// Side-state the active write transaction accumulates; promoted at
/// commit, reverted at abort.
#[derive(Default)]
struct Scratch {
    /// Version-chain entries this transaction published (object, old rid).
    chain_added: Vec<(Oid, u64)>,
    /// Reclaims this transaction would make ripe by committing.
    reclaims: Vec<ReclaimOp>,
}

/// The writer gate: at most one write transaction holds it.
#[derive(Default)]
struct WriterSlot {
    /// Provisional timestamp of the active writer, if any.
    active: Option<u64>,
}

/// Issues commit timestamps, tracks active snapshots, serializes writers,
/// and buffers deferred reclamation. One per [`crate::StorageManager`]
/// (shared across clones).
pub struct TxnManager {
    /// Highest *published* (committed) timestamp. Snapshots read here.
    clock: AtomicU64,
    /// Highest timestamp ever handed to a writer. Kept separate from
    /// `clock` because a committing writer releases the gate *before*
    /// its commit fsync returns (group commit): the next writer needs a
    /// fresh timestamp while the previous one is still unpublished.
    next_ts: AtomicU64,
    /// Provisional timestamp of the in-flight writer (0 = none). A
    /// lock-free mirror of the writer slot for `current_write_ts`.
    write_ts: AtomicU64,
    /// Active snapshot timestamps → refcount.
    snapshots: Mutex<BTreeMap<u64, u64>>,
    writer: StdMutex<WriterSlot>,
    writer_cv: Condvar,
    /// In-memory version chains: object → record ids of superseded
    /// versions (oldest first). Rebuilt empty on restart — no snapshot
    /// survives a crash, so no old version is ever needed again.
    chains: Mutex<HashMap<u64, Vec<u64>>>,
    scratch: Mutex<Scratch>,
    /// Committed-but-not-yet-reclaimable garbage, watermark-gated.
    reclaim: Mutex<Vec<Reclaim>>,
    committed: AtomicU64,
    aborted: AtomicU64,
    /// Commits whose fsync failed: in the log, never published. Neither
    /// committed nor aborted — see `park_unflushed`.
    parked: AtomicU64,
    /// Wall-clock commit latency (images + commit record + fsync wait).
    commit_wait_ns: Arc<exodus_obs::Histogram>,
}

impl TxnManager {
    /// A fresh manager with the clock at 0 (no committed transactions).
    pub fn new() -> TxnManager {
        TxnManager {
            clock: AtomicU64::new(0),
            next_ts: AtomicU64::new(0),
            write_ts: AtomicU64::new(0),
            snapshots: Mutex::new(BTreeMap::new()),
            writer: StdMutex::new(WriterSlot::default()),
            writer_cv: Condvar::new(),
            chains: Mutex::new(HashMap::new()),
            scratch: Mutex::new(Scratch::default()),
            reclaim: Mutex::new(Vec::new()),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            commit_wait_ns: Arc::new(exodus_obs::Histogram::new(exodus_obs::LATENCY_BUCKETS_NS)),
        }
    }

    /// Restore the commit clock after recovery (see
    /// [`crate::RecoveryReport::clock`]). Must run before any transaction
    /// starts.
    pub fn seed_clock(&self, clock: u64) {
        self.clock.store(clock, Ordering::Release);
        self.next_ts.store(clock, Ordering::Release);
    }

    /// The highest committed timestamp.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// The in-flight writer's provisional timestamp, if a write
    /// transaction is active *on this manager*. Heap code uses this to
    /// decide whether mutations should be versioned.
    pub fn current_write_ts(&self) -> Option<u64> {
        match self.write_ts.load(Ordering::Acquire) {
            0 => None,
            ts => Some(ts),
        }
    }

    /// Take a read snapshot at the current clock. The guard keeps the
    /// snapshot registered (holding back vacuum) until dropped.
    ///
    /// The clock is read *while holding* the snapshots lock — the same
    /// lock [`TxnManager::watermark`] takes — so a snapshot at ts `T` is
    /// registered before any watermark computation can observe
    /// `clock > T` with no snapshot `<= T`. Reading the clock before
    /// locking would leave a window where a concurrent commit publishes
    /// `T+1` and vacuum, seeing an empty map and the new clock, reclaims
    /// versions end-stamped at `T+1` that this snapshot still needs.
    pub fn begin_snapshot(self: &Arc<Self>) -> Snapshot {
        let mut snaps = self.snapshots.lock();
        let ts = self.clock();
        *snaps.entry(ts).or_insert(0) += 1;
        drop(snaps);
        Snapshot {
            mgr: Some(self.clone()),
            ts,
        }
    }

    fn release_snapshot(&self, ts: u64) {
        let mut snaps = self.snapshots.lock();
        if let Some(n) = snaps.get_mut(&ts) {
            *n -= 1;
            if *n == 0 {
                snaps.remove(&ts);
            }
        }
    }

    /// Block until the writer gate is free, claim it, and return the new
    /// writer's provisional timestamp (the next unissued one — always
    /// above both the clock and every earlier writer's timestamp).
    pub(crate) fn acquire_writer(&self) -> u64 {
        let mut slot = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        while slot.active.is_some() {
            slot = self.writer_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        let ts = self.next_ts.fetch_add(1, Ordering::AcqRel) + 1;
        slot.active = Some(ts);
        self.write_ts.store(ts, Ordering::Release);
        *self.scratch.lock() = Scratch::default();
        ts
    }

    /// Claim the writer gate only if it is free right now (vacuum uses
    /// this — reclamation never waits behind real work).
    pub(crate) fn try_acquire_writer(&self) -> Option<u64> {
        let mut slot = self.writer.try_lock().ok()?;
        if slot.active.is_some() {
            return None;
        }
        let ts = self.next_ts.fetch_add(1, Ordering::AcqRel) + 1;
        slot.active = Some(ts);
        self.write_ts.store(ts, Ordering::Release);
        *self.scratch.lock() = Scratch::default();
        Some(ts)
    }

    /// Free the writer gate and take the transaction's scratch, without
    /// deciding its fate. The committing path calls this *before* its
    /// commit fsync so the next writer can overlap log appends with the
    /// disk wait, then settles the scratch with
    /// [`TxnManager::publish_commit`] once durable.
    fn detach_writer(&self, ts: u64) -> Scratch {
        let scratch = std::mem::take(&mut *self.scratch.lock());
        self.write_ts.store(0, Ordering::Release);
        let mut slot = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(slot.active, Some(ts));
        slot.active = None;
        drop(slot);
        self.writer_cv.notify_one();
        scratch
    }

    /// Publish a detached transaction as committed: promote its deferred
    /// reclaims (stamped with the commit timestamp) and advance the
    /// clock. `fetch_max` because group-committed transactions can
    /// publish out of order — a later committer whose fsync batch
    /// covered ours may get here first, and the clock must never move
    /// backwards.
    fn publish_commit(&self, ts: u64, scratch: Scratch) {
        let mut reclaim = self.reclaim.lock();
        reclaim.extend(scratch.reclaims.into_iter().map(|op| Reclaim { ts, op }));
        drop(reclaim);
        self.clock.fetch_max(ts, Ordering::AcqRel);
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Revert a detached transaction's scratch (abort path): drop the
    /// chain entries it published; its reclaims die with the scratch.
    fn revert_scratch(&self, scratch: Scratch) {
        let mut chains = self.chains.lock();
        for (oid, rid) in scratch.chain_added {
            if let Some(rids) = chains.get_mut(&oid.0) {
                rids.retain(|&r| r != rid);
                if rids.is_empty() {
                    chains.remove(&oid.0);
                }
            }
        }
        drop(chains);
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// A commit whose fsync failed: the commit record is in the log but
    /// its durability is unknown. Keep the version chains and promote
    /// the reclaims (a *later* successful commit fsyncs past our record
    /// and makes this transaction durable — log order guarantees it) but
    /// leave the clock alone: visibility must never precede durability.
    /// If no later commit ever lands, the reclaims stay unripe forever
    /// (the watermark cannot reach `ts`), which only wastes memory.
    ///
    /// A later commit is not the only path to durability: the buffer
    /// pool's flush rule ("no dirty page leaves the pool ahead of its
    /// log record") fsyncs the log through a page's LSN before any
    /// write-back, and that flush can cover the parked commit record
    /// too. After a restart the transaction is then visible even though
    /// this process never published it — runtime and post-crash states
    /// diverge by exactly this transaction. A parked transaction counts
    /// in neither `committed_total` nor `aborted_total` (its fate is
    /// undecided); it is surfaced through [`TxnManager::parked_total`]
    /// and the `storage_txn_commit_indeterminate_total` metric so the
    /// indeterminate state is observable.
    fn park_unflushed(&self, ts: u64, scratch: Scratch) {
        let mut reclaim = self.reclaim.lock();
        reclaim.extend(scratch.reclaims.into_iter().map(|op| Reclaim { ts, op }));
        drop(reclaim);
        self.parked.fetch_add(1, Ordering::Relaxed);
    }

    /// Release the writer gate. `publish` commits the provisional
    /// timestamp to the clock and promotes the transaction's scratch;
    /// otherwise the scratch is reverted.
    pub(crate) fn release_writer(&self, ts: u64, publish: bool) {
        let scratch = self.detach_writer(ts);
        if publish {
            self.publish_commit(ts, scratch);
        } else {
            self.revert_scratch(scratch);
        }
    }

    /// Publish `rid` as a superseded version of `oid`, reachable by
    /// readers whose snapshot predates the in-flight end-stamp. Must be
    /// called *before* the old version is end-stamped so a concurrent
    /// reader can always resolve one way or the other.
    pub fn note_chain(&self, oid: Oid, rid: RecordId) {
        self.chains
            .lock()
            .entry(oid.0)
            .or_default()
            .push(rid.pack());
        self.scratch.lock().chain_added.push((oid, rid.pack()));
    }

    /// Drop `rid` from `oid`'s version chain (vacuum reclaimed the
    /// physical record, so the chain entry is dead weight).
    pub fn remove_chain(&self, oid: Oid, rid: RecordId) {
        let mut chains = self.chains.lock();
        if let Some(rids) = chains.get_mut(&oid.0) {
            rids.retain(|&r| r != rid.pack());
            if rids.is_empty() {
                chains.remove(&oid.0);
            }
        }
    }

    /// Superseded version rids of `oid`, oldest first.
    pub fn chain_rids(&self, oid: Oid) -> Vec<RecordId> {
        self.chains
            .lock()
            .get(&oid.0)
            .map(|v| v.iter().map(|&r| RecordId::unpack(r)).collect())
            .unwrap_or_default()
    }

    /// Defer a reclamation until every snapshot that might need the
    /// target has ended. Requires an active write transaction.
    pub fn defer_reclaim(&self, op: ReclaimOp) {
        debug_assert!(
            self.current_write_ts().is_some(),
            "defer_reclaim outside a write transaction"
        );
        self.scratch.lock().reclaims.push(op);
    }

    /// The reclaim watermark: reclamation stamped at or below it cannot
    /// be observed by any active snapshot.
    ///
    /// The clock fallback must be read while the snapshots lock is held:
    /// [`TxnManager::begin_snapshot`] registers under the same lock, so
    /// an "empty map, use the clock" decision here cannot interleave
    /// with a snapshot that read an older clock but has not registered
    /// yet.
    pub fn watermark(&self) -> u64 {
        let snaps = self.snapshots.lock();
        let wm = snaps.keys().next().copied().unwrap_or_else(|| self.clock());
        drop(snaps);
        wm
    }

    /// Drain and return the deferred reclaims that are ripe under the
    /// current watermark.
    pub fn take_ripe(&self) -> Vec<Reclaim> {
        let wm = self.watermark();
        let mut reclaim = self.reclaim.lock();
        let (ripe, keep): (Vec<_>, Vec<_>) = reclaim.drain(..).partition(|r| r.ts <= wm);
        *reclaim = keep;
        ripe
    }

    /// Number of deferred reclaims waiting for the watermark.
    pub fn pending_reclaims(&self) -> usize {
        self.reclaim.lock().len()
    }

    /// Active snapshots plus the in-flight writer, for the
    /// `storage_txn_active` gauge.
    pub fn active_count(&self) -> u64 {
        let snaps: u64 = self.snapshots.lock().values().sum();
        snaps + u64::from(self.current_write_ts().is_some())
    }

    /// Committed write transactions.
    pub fn committed_total(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Aborted write transactions.
    pub fn aborted_total(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Commits parked with an indeterminate outcome: the commit record
    /// was appended but its fsync failed, so the transaction is in the
    /// log yet never published at runtime (see `park_unflushed`). Any
    /// nonzero value means a restart may surface transactions this
    /// process never showed.
    pub fn parked_total(&self) -> u64 {
        self.parked.load(Ordering::Relaxed)
    }

    /// The commit-latency histogram (shared with the metrics registry).
    pub fn commit_wait_histogram(&self) -> Arc<exodus_obs::Histogram> {
        self.commit_wait_ns.clone()
    }
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new()
    }
}

/// A registered read snapshot (see [`TxnManager::begin_snapshot`]).
/// Copyable by timestamp ([`Snapshot::ts`]); the guard itself pins the
/// reclaim watermark until dropped.
pub struct Snapshot {
    mgr: Option<Arc<TxnManager>>,
    ts: u64,
}

impl Snapshot {
    /// The snapshot timestamp: this reader sees exactly the versions
    /// committed at or before it.
    pub fn ts(&self) -> u64 {
        self.ts
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        if let Some(mgr) = self.mgr.take() {
            mgr.release_snapshot(self.ts);
        }
    }
}

/// A write transaction: the writer gate, a logged unit, and undo capture,
/// bundled. Obtained from [`crate::StorageManager::begin_txn`]; dropped
/// without an explicit [`WriteTxn::commit`] it aborts.
pub struct WriteTxn {
    mgr: Arc<TxnManager>,
    pool: Arc<crate::buffer::BufferPool>,
    ts: u64,
    unit: u64,
    done: bool,
}

impl WriteTxn {
    pub(crate) fn new(
        mgr: Arc<TxnManager>,
        pool: Arc<crate::buffer::BufferPool>,
        ts: u64,
        unit: u64,
    ) -> WriteTxn {
        WriteTxn {
            mgr,
            pool,
            ts,
            unit,
            done: false,
        }
    }

    /// The transaction's provisional (= eventual commit) timestamp.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Commit: log the write set and the commit record, release every
    /// gate, flush, then publish the clock. Returns the commit
    /// timestamp.
    ///
    /// The gates (undo capture, unit slot, writer gate) are released
    /// *before* the commit fsync: once the commit record is appended the
    /// transaction can no longer abort, so the next writer may start
    /// appending its own records while this one waits on the disk.
    /// Concurrent committers queued behind the same fsync then share it
    /// ([`crate::wal::Wal::flush_up_to`]'s group commit). The clock is
    /// published only once the record is durable, so readers never see a
    /// commit that a crash could still un-happen.
    ///
    /// If *appending* fails the transaction is aborted in memory and the
    /// error is returned — a failed commit leaves no trace, same as
    /// `abort`. If the *fsync* fails the outcome is indeterminate (the
    /// record is in the log; the clock stays unpublished) and the error
    /// is returned; see [`TxnManager`]'s `park_unflushed`.
    pub fn commit(mut self) -> StorageResult<u64> {
        let start = std::time::Instant::now();
        self.done = true;
        let ts = self.ts;
        let Some(wal) = self.pool.wal().cloned() else {
            // No log: the in-memory state is the only state.
            self.pool.end_undo_capture();
            self.mgr.release_writer(ts, true);
            self.mgr
                .commit_wait_ns
                .observe(start.elapsed().as_nanos() as u64);
            return Ok(ts);
        };
        let appended: StorageResult<crate::wal::Lsn> = (|| {
            for page_no in wal.unit_dirty_pages(self.unit) {
                let image = self.pool.page_image(page_no)?;
                let lsn = wal.append(
                    self.unit,
                    &crate::wal::WalRecord::PageImage { page_no, image },
                )?;
                self.pool.stamp_page_lsn(page_no, lsn)?;
            }
            wal.append(self.unit, &crate::wal::WalRecord::Commit { ts })
        })();
        let commit_lsn = match appended {
            Ok(lsn) => lsn,
            Err(e) => {
                // The commit record is absent: roll the transaction back
                // in memory so the running process agrees with what
                // recovery would decide.
                let rollback = self.pool.rollback_undo();
                wal.end_unit(self.unit);
                self.mgr.release_writer(ts, false);
                rollback?;
                return Err(e);
            }
        };
        // Commit point passed. Release the gates so the next writer
        // overlaps with our fsync wait, then make the record durable.
        self.pool.end_undo_capture();
        wal.end_unit(self.unit);
        let scratch = self.mgr.detach_writer(ts);
        if let Err(e) = wal.flush_up_to(commit_lsn) {
            self.mgr.park_unflushed(ts, scratch);
            // Surface the parked state as its own error kind so callers
            // (and the wire protocol) can tell "rolled back, retry
            // freely" from "outcome unknown until recovery".
            return Err(crate::StorageError::IndeterminateCommit {
                ts,
                cause: e.to_string(),
            });
        }
        self.mgr.publish_commit(ts, scratch);
        self.mgr
            .commit_wait_ns
            .observe(start.elapsed().as_nanos() as u64);
        Ok(ts)
    }

    /// Abort: restore captured before-images, end the logged unit without
    /// a commit record, revert the transaction's chain/reclaim scratch.
    pub fn abort(mut self) -> StorageResult<()> {
        self.done = true;
        self.abort_inner()
    }

    fn abort_inner(&mut self) -> StorageResult<()> {
        // Restore *before* ending the unit: gated pages cannot be evicted,
        // so no uncommitted byte can reach the volume while we rewind.
        let rollback = self.pool.rollback_undo();
        if let Some(wal) = self.pool.wal() {
            wal.end_unit(self.unit);
        }
        self.mgr.release_writer(self.ts, false);
        rollback.map(|_| ())
    }
}

impl Drop for WriteTxn {
    fn drop(&mut self) {
        if !self.done {
            self.done = true;
            let _ = self.abort_inner();
        }
    }
}

impl std::fmt::Debug for WriteTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteTxn")
            .field("ts", &self.ts)
            .field("unit", &self.unit)
            .field("done", &self.done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_rules() {
        // Committed at 5, live.
        assert!(!visible(5, TS_INF, 4));
        assert!(visible(5, TS_INF, 5));
        assert!(visible(5, TS_INF, 6));
        // Committed at 5, deleted at 8.
        assert!(visible(5, 8, 5));
        assert!(visible(5, 8, 7));
        assert!(!visible(5, 8, 8));
        // begin 0 = always-visible (pre-MVCC records).
        assert!(visible(0, TS_INF, 0));
        // TS_LATEST sees every live version.
        assert!(visible(u64::MAX, TS_INF, TS_LATEST));
    }

    #[test]
    fn snapshot_refcounts_and_watermark() {
        let mgr = Arc::new(TxnManager::new());
        mgr.seed_clock(10);
        assert_eq!(mgr.watermark(), 10);
        let s1 = mgr.begin_snapshot();
        assert_eq!(s1.ts(), 10);
        mgr.seed_clock(20);
        let s2 = mgr.begin_snapshot();
        assert_eq!(s2.ts(), 20);
        assert_eq!(mgr.watermark(), 10);
        assert_eq!(mgr.active_count(), 2);
        drop(s1);
        assert_eq!(mgr.watermark(), 20);
        drop(s2);
        assert_eq!(mgr.watermark(), 20);
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn writer_gate_is_exclusive() {
        let mgr = Arc::new(TxnManager::new());
        let ts = mgr.acquire_writer();
        assert_eq!(ts, 1);
        assert_eq!(mgr.current_write_ts(), Some(1));
        assert!(mgr.try_acquire_writer().is_none());
        mgr.release_writer(ts, true);
        assert_eq!(mgr.clock(), 1);
        assert_eq!(mgr.current_write_ts(), None);
        assert_eq!(mgr.committed_total(), 1);
        // The next writer sees the published clock.
        let ts2 = mgr.try_acquire_writer().unwrap();
        assert_eq!(ts2, 2);
        mgr.release_writer(ts2, false);
        assert_eq!(mgr.clock(), 1, "aborted writer publishes nothing");
        assert_eq!(mgr.aborted_total(), 1);
    }

    #[test]
    fn abort_reverts_chains_and_reclaims() {
        let mgr = Arc::new(TxnManager::new());
        let ts = mgr.acquire_writer();
        let rid = RecordId { page: 9, slot: 3 };
        mgr.note_chain(Oid(7), rid);
        mgr.defer_reclaim(ReclaimOp::Record { file: 1, rid });
        assert_eq!(mgr.chain_rids(Oid(7)), vec![rid]);
        mgr.release_writer(ts, false);
        assert!(mgr.chain_rids(Oid(7)).is_empty());
        assert_eq!(mgr.pending_reclaims(), 0);
    }

    #[test]
    fn reclaims_ripen_at_watermark() {
        let mgr = Arc::new(TxnManager::new());
        let snap = mgr.begin_snapshot(); // ts 0 pins the watermark
        let ts = mgr.acquire_writer();
        mgr.defer_reclaim(ReclaimOp::ObjectSlot { oid: Oid(3) });
        mgr.release_writer(ts, true);
        assert_eq!(mgr.pending_reclaims(), 1);
        assert!(mgr.take_ripe().is_empty(), "snapshot 0 holds it back");
        assert_eq!(mgr.pending_reclaims(), 1);
        drop(snap);
        let ripe = mgr.take_ripe();
        assert_eq!(ripe.len(), 1);
        assert_eq!(ripe[0].ts, 1);
        assert_eq!(mgr.pending_reclaims(), 0);
    }

    #[test]
    fn parked_commit_is_counted_but_never_published() {
        let mgr = Arc::new(TxnManager::new());
        let ts = mgr.acquire_writer();
        mgr.defer_reclaim(ReclaimOp::ObjectSlot { oid: Oid(1) });
        let scratch = mgr.detach_writer(ts);
        mgr.park_unflushed(ts, scratch);
        assert_eq!(mgr.parked_total(), 1);
        assert_eq!(mgr.committed_total(), 0, "fate undecided: not a commit");
        assert_eq!(mgr.aborted_total(), 0, "fate undecided: not an abort");
        assert_eq!(mgr.clock(), 0, "visibility never precedes durability");
        // The parked reclaim stays unripe: the watermark (= clock with no
        // snapshots) cannot reach the unpublished timestamp.
        assert_eq!(mgr.pending_reclaims(), 1);
        assert!(mgr.take_ripe().is_empty());
    }

    #[test]
    fn concurrent_writers_serialize() {
        let mgr = Arc::new(TxnManager::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mgr = mgr.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let ts = mgr.acquire_writer();
                    mgr.release_writer(ts, true);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mgr.clock(), 200, "every commit bumped the clock once");
        assert_eq!(mgr.committed_total(), 200);
    }
}
