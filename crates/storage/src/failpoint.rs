//! Deterministic fault injection for crash-recovery testing.
//!
//! Every durable write in the storage crate — volume page writes, volume
//! growth, WAL frame appends, and the fsyncs between them — passes through
//! the crate-internal `check_write` hook before touching the file system.
//! In normal operation the hook is a single relaxed atomic load. When a
//! test arms a [`CrashPlan`], the N-th write either vanishes entirely or is
//! *torn* (only a prefix of the bytes reaches the file), and every later
//! write fails — simulating a process kill at that exact point. Reads are
//! never affected, so the test can reopen the database afterwards and drive
//! recovery.
//!
//! The control surface (`arm`, `disarm`, `crashed`, `start_counting`,
//! `writes_observed`) is compiled only under `cfg(test)` or the
//! `failpoints` cargo feature; production builds carry nothing but the
//! disarmed fast path.
//!
//! State is process-global, so tests that arm failpoints must serialize
//! themselves via the `exclusive` lock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::error::{StorageError, StorageResult};

/// Whether any failpoint plan is active. Fast-path gate: written only by
/// the (test-only) control functions, read on every durable write.
static ARMED: AtomicBool = AtomicBool::new(false);

static STATE: Mutex<Option<State>> = Mutex::new(None);

struct State {
    mode: Mode,
    /// Durable writes observed since arming.
    writes: u64,
    /// Site names seen since arming, with counts.
    sites: Vec<(&'static str, u64)>,
    /// Whether the plan has fired (all later writes fail).
    fired: bool,
}

// Only the control surface constructs these; without it the disarmed
// fast path never reaches them.
#[cfg_attr(not(any(test, feature = "failpoints")), allow(dead_code))]
enum Mode {
    /// Count writes and record sites; never fail.
    Count,
    /// Crash on the `after_writes + 1`-th write.
    Crash(CrashPlan),
}

/// A deterministic crash: let `after_writes` durable writes through, then
/// kill the process at the next one.
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    /// Number of writes that complete before the crash.
    pub after_writes: u64,
    /// If true, the crashing write is *torn*: half its bytes are applied
    /// before the failure (a page or log frame straddling the kill).
    pub torn: bool,
}

/// What the instrumented write path should do (crate-internal).
pub(crate) enum WriteAction {
    /// Perform the full write.
    Full,
    /// Write only the first `n` bytes, then report the injected crash.
    Torn(usize),
}

fn injected() -> StorageError {
    StorageError::Io(std::io::Error::other("failpoint: injected crash"))
}

/// The write-path hook: decides the fate of a `len`-byte durable write at
/// `site`. Returns `Err` once the armed plan has fired.
pub(crate) fn check_write(site: &'static str, len: usize) -> StorageResult<WriteAction> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(WriteAction::Full);
    }
    let mut guard = STATE.lock().expect("failpoint state");
    let Some(state) = guard.as_mut() else {
        return Ok(WriteAction::Full);
    };
    if state.fired {
        return Err(injected());
    }
    match state.sites.iter_mut().find(|(s, _)| *s == site) {
        Some((_, n)) => *n += 1,
        None => state.sites.push((site, 1)),
    }
    state.writes += 1;
    if let Mode::Crash(plan) = &state.mode {
        if state.writes > plan.after_writes {
            state.fired = true;
            return if plan.torn && len > 1 {
                Ok(WriteAction::Torn(len / 2))
            } else {
                Err(injected())
            };
        }
    }
    Ok(WriteAction::Full)
}

#[cfg(any(test, feature = "failpoints"))]
mod control {
    use super::*;
    use std::sync::MutexGuard;

    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    /// Serialize failpoint-using tests: the registry is process-global.
    /// (A poisoned lock — a previous test panicked — is still usable.)
    pub fn exclusive() -> MutexGuard<'static, ()> {
        EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm a crash plan. Stays armed (failing all writes once fired)
    /// until [`disarm`].
    pub fn arm(plan: CrashPlan) {
        let mut guard = STATE.lock().expect("failpoint state");
        *guard = Some(State {
            mode: Mode::Crash(plan),
            writes: 0,
            sites: Vec::new(),
            fired: false,
        });
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Count durable writes without ever failing. Use with
    /// [`writes_observed`] to size a kill-at-every-point loop.
    pub fn start_counting() {
        let mut guard = STATE.lock().expect("failpoint state");
        *guard = Some(State {
            mode: Mode::Count,
            writes: 0,
            sites: Vec::new(),
            fired: false,
        });
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Drop any active plan; writes behave normally again.
    pub fn disarm() {
        ARMED.store(false, Ordering::SeqCst);
        *STATE.lock().expect("failpoint state") = None;
    }

    /// Whether the armed crash plan has fired.
    pub fn crashed() -> bool {
        STATE
            .lock()
            .expect("failpoint state")
            .as_ref()
            .is_some_and(|s| s.fired)
    }

    /// Durable writes observed since the last [`arm`]/[`start_counting`].
    pub fn writes_observed() -> u64 {
        STATE
            .lock()
            .expect("failpoint state")
            .as_ref()
            .map_or(0, |s| s.writes)
    }

    /// Distinct write sites observed since arming, with hit counts.
    pub fn sites_observed() -> Vec<(&'static str, u64)> {
        STATE
            .lock()
            .expect("failpoint state")
            .as_ref()
            .map_or_else(Vec::new, |s| s.sites.clone())
    }
}

#[cfg(any(test, feature = "failpoints"))]
pub use control::{
    arm, crashed, disarm, exclusive, sites_observed, start_counting, writes_observed,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_crashing() {
        let _x = exclusive();
        start_counting();
        for _ in 0..5 {
            assert!(matches!(check_write("t.site", 64), Ok(WriteAction::Full)));
        }
        assert_eq!(writes_observed(), 5);
        assert_eq!(sites_observed(), vec![("t.site", 5)]);

        arm(CrashPlan {
            after_writes: 2,
            torn: false,
        });
        assert!(check_write("t.a", 8).is_ok());
        assert!(check_write("t.b", 8).is_ok());
        assert!(check_write("t.c", 8).is_err());
        assert!(crashed());
        // Poisoned: everything later fails too.
        assert!(check_write("t.d", 8).is_err());
        disarm();
        assert!(check_write("t.e", 8).is_ok());
    }

    #[test]
    fn torn_write_applies_half() {
        let _x = exclusive();
        arm(CrashPlan {
            after_writes: 0,
            torn: true,
        });
        match check_write("t.torn", 100) {
            Ok(WriteAction::Torn(n)) => assert_eq!(n, 50),
            other => panic!("expected torn action, got {other:?}"),
        }
        assert!(crashed());
        disarm();
    }

    impl std::fmt::Debug for WriteAction {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WriteAction::Full => write!(f, "Full"),
                WriteAction::Torn(n) => write!(f, "Torn({n})"),
            }
        }
    }
}
