//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Used to checksum WAL frames and page images. Implemented locally: this
//! workspace builds without network access, so pulling `crc32fast` is not
//! an option, and the classic 256-entry table lookup is plenty for the
//! write-path volumes involved.

/// The reflected polynomial for CRC-32/ISO-HDLC (zlib, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of one buffer.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_multi(&[data])
}

/// CRC-32 over the concatenation of several buffers (avoids copying when
/// the checksummed region is split, e.g. a page minus its checksum field).
pub fn crc32_multi(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn multi_equals_concat() {
        let whole = crc32(b"hello, world");
        assert_eq!(crc32_multi(&[b"hello", b", ", b"world"]), whole);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let mut data = vec![0u8; 256];
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x40;
            assert_ne!(crc32(&data), base, "flip at {i} undetected");
            data[i] ^= 0x40;
        }
    }
}
