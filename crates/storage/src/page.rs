//! Slotted pages.
//!
//! Every page is [`PAGE_SIZE`] bytes. A page begins with a fixed header and
//! a slot directory growing downward from the header while record bytes grow
//! upward from the end of the page:
//!
//! ```text
//! +-----------+----------------+ ... free ... +----------+----------+
//! |  header   | slot0 slot1 …  |              | record1  | record0  |
//! +-----------+----------------+--------------+----------+----------+
//! ```
//!
//! Header layout (little-endian):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | `next` page in chain (`NO_PAGE` if none) |
//! | 8      | 8    | `prev` page in chain |
//! | 16     | 2    | slot count |
//! | 18     | 2    | free-space pointer (offset of lowest record byte) |
//! | 20     | 2    | page kind tag |
//! | 22     | 2    | reserved |
//! | 24     | 8    | `page_lsn`: LSN of the last WAL record covering this page |
//! | 32     | 4    | page checksum (stamped at write-back; 0 = never stamped) |
//! | 36     | 4    | reserved |
//!
//! Each slot is 4 bytes: `offset: u16`, `len: u16`. A deleted slot has
//! `offset == DEAD_SLOT`; slot ids are never reused within a page so record
//! ids stay stable until compaction off-page.

use crate::error::{StorageError, StorageResult};

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Sentinel page number meaning "no page".
pub const NO_PAGE: u64 = u64::MAX;
/// Sentinel slot offset marking a deleted slot.
const DEAD_SLOT: u16 = u16::MAX;

const H_NEXT: usize = 0;
const H_PREV: usize = 8;
const H_NSLOTS: usize = 16;
const H_FREE: usize = 18;
const H_KIND: usize = 20;
const H_LSN: usize = 24;
const H_CKSUM: usize = 32;
/// First byte past the fixed header; the slot directory starts here.
pub const HEADER_SIZE: usize = 40;
const SLOT_SIZE: usize = 4;

/// The LSN of the last WAL record whose effects this page contains.
/// Zero on pages that have never been touched under a WAL.
pub fn page_lsn(buf: &[u8]) -> u64 {
    get_u64(buf, H_LSN)
}

/// Stamp the page LSN (see [`page_lsn`]).
pub fn set_page_lsn(buf: &mut [u8], lsn: u64) {
    put_u64(buf, H_LSN, lsn);
}

/// CRC-32 of the page contents, excluding the checksum field itself.
fn page_crc(buf: &[u8]) -> u32 {
    let c = crate::crc::crc32_multi(&[&buf[..H_CKSUM], &buf[H_CKSUM + 4..]]);
    // 0 is reserved to mean "never stamped"; remap a real 0 to 1.
    if c == 0 {
        1
    } else {
        c
    }
}

/// Stamp the page checksum. Called by the buffer pool as a page is written
/// back to a recoverable volume, so torn disk writes are detectable.
pub fn stamp_page_checksum(buf: &mut [u8]) {
    let c = page_crc(buf);
    buf[H_CKSUM..H_CKSUM + 4].copy_from_slice(&c.to_le_bytes());
}

/// Verify the page checksum. `true` when the stored checksum matches the
/// contents, or when the page was never stamped (checksum field 0 — e.g. a
/// freshly allocated page that no write-back ever covered).
pub fn verify_page_checksum(buf: &[u8]) -> bool {
    let stored = u32::from_le_bytes([
        buf[H_CKSUM],
        buf[H_CKSUM + 1],
        buf[H_CKSUM + 2],
        buf[H_CKSUM + 3],
    ]);
    stored == 0 || stored == page_crc(buf)
}

/// Tags distinguishing what structure a page belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum PageKind {
    /// Unallocated / freshly formatted.
    Free = 0,
    /// Heap-file data page.
    Heap = 1,
    /// Heap-file header page.
    HeapHeader = 2,
    /// B+-tree interior node.
    BTreeInternal = 3,
    /// B+-tree leaf node.
    BTreeLeaf = 4,
    /// Object-table directory page.
    ObjectDir = 5,
    /// Large-object data page.
    Lob = 6,
    /// Volume metadata (page 0).
    Meta = 7,
}

impl PageKind {
    fn from_u16(v: u16) -> PageKind {
        match v {
            1 => PageKind::Heap,
            2 => PageKind::HeapHeader,
            3 => PageKind::BTreeInternal,
            4 => PageKind::BTreeLeaf,
            5 => PageKind::ObjectDir,
            6 => PageKind::Lob,
            7 => PageKind::Meta,
            _ => PageKind::Free,
        }
    }
}

/// A typed view over one page's bytes, providing slotted-record operations.
///
/// `SlottedPage` borrows the raw frame bytes; it performs no locking itself
/// (the buffer pool's frame latch covers access).
pub struct SlottedPage<'a> {
    buf: &'a mut [u8],
}

/// Read-only counterpart to [`SlottedPage`]: usable on a shared borrow of
/// the frame so readers never copy the page.
pub struct PageView<'a> {
    buf: &'a [u8],
}

impl<'a> PageView<'a> {
    /// Wrap page bytes for reading.
    pub fn new(buf: &'a [u8]) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        PageView { buf }
    }

    /// The page kind tag.
    pub fn kind(&self) -> PageKind {
        PageKind::from_u16(get_u16(self.buf, H_KIND))
    }

    /// Next page in this page's chain.
    pub fn next(&self) -> u64 {
        get_u64(self.buf, H_NEXT)
    }

    /// Previous page in this page's chain.
    pub fn prev(&self) -> u64 {
        get_u64(self.buf, H_PREV)
    }

    /// Number of slots ever allocated (live + dead).
    pub fn slot_count(&self) -> u16 {
        get_u16(self.buf, H_NSLOTS)
    }

    fn slot(&self, slot: u16) -> (u16, u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        (get_u16(self.buf, base), get_u16(self.buf, base + 2))
    }

    /// Whether a slot holds a live record.
    pub fn is_live(&self, slot: u16) -> bool {
        slot < self.slot_count() && self.slot(slot).0 != DEAD_SLOT
    }

    /// Read a record by slot id.
    pub fn read(&self, page_no: u64, slot: u16) -> StorageResult<&'a [u8]> {
        if slot >= self.slot_count() {
            return Err(StorageError::InvalidSlot {
                page: page_no,
                slot,
            });
        }
        let (off, len) = self.slot(slot);
        if off == DEAD_SLOT {
            return Err(StorageError::InvalidSlot {
                page: page_no,
                slot,
            });
        }
        Ok(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Raw access to the area past the header.
    pub fn body(&self) -> &'a [u8] {
        &self.buf[HEADER_SIZE..]
    }

    /// The page LSN (see [`page_lsn`]).
    pub fn lsn(&self) -> u64 {
        page_lsn(self.buf)
    }
}

fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

impl<'a> SlottedPage<'a> {
    /// Wrap existing page bytes. The caller must have formatted the page
    /// (via [`SlottedPage::format`]) at some point.
    pub fn new(buf: &'a mut [u8]) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        SlottedPage { buf }
    }

    /// Initialize an empty slotted page of the given kind.
    pub fn format(buf: &'a mut [u8], kind: PageKind) -> Self {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        buf.fill(0);
        put_u64(buf, H_NEXT, NO_PAGE);
        put_u64(buf, H_PREV, NO_PAGE);
        put_u16(buf, H_NSLOTS, 0);
        put_u16(buf, H_FREE, PAGE_SIZE as u16);
        put_u16(buf, H_KIND, kind as u16);
        SlottedPage { buf }
    }

    /// The page kind tag.
    pub fn kind(&self) -> PageKind {
        PageKind::from_u16(get_u16(self.buf, H_KIND))
    }

    /// Set the page kind tag.
    pub fn set_kind(&mut self, kind: PageKind) {
        put_u16(self.buf, H_KIND, kind as u16);
    }

    /// Next page in this page's chain.
    pub fn next(&self) -> u64 {
        get_u64(self.buf, H_NEXT)
    }

    /// Set the next-page link.
    pub fn set_next(&mut self, p: u64) {
        put_u64(self.buf, H_NEXT, p);
    }

    /// Previous page in this page's chain.
    pub fn prev(&self) -> u64 {
        get_u64(self.buf, H_PREV)
    }

    /// Set the previous-page link.
    pub fn set_prev(&mut self, p: u64) {
        put_u64(self.buf, H_PREV, p);
    }

    /// Number of slots ever allocated on this page (live + dead).
    pub fn slot_count(&self) -> u16 {
        get_u16(self.buf, H_NSLOTS)
    }

    fn free_ptr(&self) -> u16 {
        get_u16(self.buf, H_FREE)
    }

    fn slot_dir_end(&self) -> usize {
        HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE
    }

    /// Bytes of contiguous free space available for one more record plus its
    /// slot entry.
    pub fn free_space(&self) -> usize {
        (self.free_ptr() as usize)
            .saturating_sub(self.slot_dir_end())
            .saturating_sub(SLOT_SIZE)
    }

    /// Total reclaimable bytes (contiguous free space plus dead-record
    /// space); a compaction makes it all contiguous.
    pub fn reclaimable_space(&self) -> usize {
        let mut dead = 0usize;
        for s in 0..self.slot_count() {
            let (off, len) = self.slot(s);
            if off == DEAD_SLOT {
                dead += len as usize;
            }
        }
        self.free_space() + dead
    }

    fn slot(&self, slot: u16) -> (u16, u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        (get_u16(self.buf, base), get_u16(self.buf, base + 2))
    }

    fn set_slot(&mut self, slot: u16, off: u16, len: u16) {
        let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
        put_u16(self.buf, base, off);
        put_u16(self.buf, base + 2, len);
    }

    /// Largest record this (empty) page layout could hold.
    pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

    /// Insert a record, compacting if fragmented. Returns the slot id.
    pub fn insert(&mut self, data: &[u8]) -> StorageResult<u16> {
        if data.len() > Self::MAX_RECORD {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        if self.free_space() < data.len() {
            if self.reclaimable_space() >= data.len() {
                self.compact();
            } else {
                return Err(StorageError::RecordTooLarge(data.len()));
            }
        }
        let slot = self.slot_count();
        let new_free = self.free_ptr() as usize - data.len();
        self.buf[new_free..new_free + data.len()].copy_from_slice(data);
        put_u16(self.buf, H_FREE, new_free as u16);
        put_u16(self.buf, H_NSLOTS, slot + 1);
        self.set_slot(slot, new_free as u16, data.len() as u16);
        Ok(slot)
    }

    /// Whether an insert of `len` bytes would succeed.
    pub fn can_fit(&self, len: usize) -> bool {
        len <= Self::MAX_RECORD
            && self.reclaimable_space() >= len
            && self.slot_count() < u16::MAX - 1
    }

    /// Read a record by slot id.
    pub fn read(&self, page_no: u64, slot: u16) -> StorageResult<&[u8]> {
        if slot >= self.slot_count() {
            return Err(StorageError::InvalidSlot {
                page: page_no,
                slot,
            });
        }
        let (off, len) = self.slot(slot);
        if off == DEAD_SLOT {
            return Err(StorageError::InvalidSlot {
                page: page_no,
                slot,
            });
        }
        Ok(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Whether a slot holds a live record.
    pub fn is_live(&self, slot: u16) -> bool {
        slot < self.slot_count() && self.slot(slot).0 != DEAD_SLOT
    }

    /// Delete a record. The slot id is not reused.
    pub fn delete(&mut self, page_no: u64, slot: u16) -> StorageResult<()> {
        if !self.is_live(slot) {
            return Err(StorageError::InvalidSlot {
                page: page_no,
                slot,
            });
        }
        let (_, len) = self.slot(slot);
        self.set_slot(slot, DEAD_SLOT, len);
        Ok(())
    }

    /// Update a record in place if the new data fits (possibly after
    /// compaction); returns `false` if it cannot fit on this page, leaving
    /// the old record intact.
    pub fn update(&mut self, page_no: u64, slot: u16, data: &[u8]) -> StorageResult<bool> {
        if !self.is_live(slot) {
            return Err(StorageError::InvalidSlot {
                page: page_no,
                slot,
            });
        }
        let (off, len) = self.slot(slot);
        if data.len() <= len as usize {
            // Shrink in place; tail bytes become internal fragmentation
            // reclaimed on the next compaction.
            let start = off as usize;
            self.buf[start..start + data.len()].copy_from_slice(data);
            self.set_slot(slot, off, data.len() as u16);
            return Ok(true);
        }
        // Need more room: logically delete, then try to re-insert reusing
        // the same slot id.
        self.set_slot(slot, DEAD_SLOT, len);
        if self.free_space() + SLOT_SIZE < data.len() {
            if self.reclaimable_space() + SLOT_SIZE >= data.len() {
                self.compact();
            } else {
                // Restore and report no-fit.
                self.set_slot(slot, off, len);
                return Ok(false);
            }
        }
        if self.free_space() + SLOT_SIZE < data.len() {
            self.set_slot(slot, off, len);
            return Ok(false);
        }
        let new_free = self.free_ptr() as usize - data.len();
        self.buf[new_free..new_free + data.len()].copy_from_slice(data);
        put_u16(self.buf, H_FREE, new_free as u16);
        self.set_slot(slot, new_free as u16, data.len() as u16);
        Ok(true)
    }

    /// Slide all live records to the end of the page, squeezing out dead
    /// space. Slot ids are preserved.
    pub fn compact(&mut self) {
        let n = self.slot_count();
        let mut live: Vec<(u16, u16, u16)> = Vec::with_capacity(n as usize);
        for s in 0..n {
            let (off, len) = self.slot(s);
            if off != DEAD_SLOT {
                live.push((s, off, len));
            }
        }
        // Copy records out, then lay them back in from the top.
        let mut scratch: Vec<(u16, Vec<u8>)> = live
            .iter()
            .map(|&(s, off, len)| (s, self.buf[off as usize..(off + len) as usize].to_vec()))
            .collect();
        let mut free = PAGE_SIZE;
        for (s, data) in scratch.drain(..) {
            free -= data.len();
            self.buf[free..free + data.len()].copy_from_slice(&data);
            self.set_slot(s, free as u16, data.len() as u16);
        }
        put_u16(self.buf, H_FREE, free as u16);
        // Mark dead slots as zero-length so reclaimable_space stays exact.
        for s in 0..n {
            let (off, _) = self.slot(s);
            if off == DEAD_SLOT {
                self.set_slot(s, DEAD_SLOT, 0);
            }
        }
    }

    /// Count of live records on the page.
    pub fn live_count(&self) -> usize {
        (0..self.slot_count()).filter(|&s| self.is_live(s)).count()
    }

    /// Raw access to the area past the header, for non-slotted page kinds
    /// (B+-tree nodes, object directory, LOB pages manage their own layout).
    pub fn body(&self) -> &[u8] {
        &self.buf[HEADER_SIZE..]
    }

    /// Mutable raw access to the area past the header.
    pub fn body_mut(&mut self) -> &mut [u8] {
        &mut self.buf[HEADER_SIZE..]
    }

    /// The page LSN (see [`page_lsn`]).
    pub fn lsn(&self) -> u64 {
        page_lsn(self.buf)
    }

    /// Stamp the page LSN (see [`set_page_lsn`]).
    pub fn set_lsn(&mut self, lsn: u64) {
        set_page_lsn(self.buf, lsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Box<[u8; PAGE_SIZE]> {
        Box::new([0u8; PAGE_SIZE])
    }

    #[test]
    fn insert_read_delete() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf[..], PageKind::Heap);
        let s0 = p.insert(b"alpha").unwrap();
        let s1 = p.insert(b"beta").unwrap();
        assert_eq!(p.read(0, s0).unwrap(), b"alpha");
        assert_eq!(p.read(0, s1).unwrap(), b"beta");
        p.delete(0, s0).unwrap();
        assert!(p.read(0, s0).is_err());
        assert_eq!(p.read(0, s1).unwrap(), b"beta");
        assert_eq!(p.live_count(), 1);
    }

    #[test]
    fn fill_page_then_overflow() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf[..], PageKind::Heap);
        let rec = [7u8; 100];
        let mut n = 0;
        while p.can_fit(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        assert!(n >= 70, "expected dozens of 100-byte records, got {n}");
        assert!(p.insert(&rec).is_err());
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf[..], PageKind::Heap);
        let mut slots = Vec::new();
        let rec = [1u8; 200];
        while p.can_fit(rec.len()) {
            slots.push(p.insert(&rec).unwrap());
        }
        // Delete every other record, then a large record must still fit via
        // compaction.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                p.delete(0, *s).unwrap();
            }
        }
        let big = vec![9u8; 1500];
        assert!(p.can_fit(big.len()));
        let s = p.insert(&big).unwrap();
        assert_eq!(p.read(0, s).unwrap(), &big[..]);
        // Survivors unchanged.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(p.read(0, *s).unwrap(), &rec[..]);
            }
        }
    }

    #[test]
    fn update_grow_and_shrink() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf[..], PageKind::Heap);
        let s = p.insert(b"short").unwrap();
        assert!(p
            .update(0, s, b"a considerably longer record body")
            .unwrap());
        assert_eq!(p.read(0, s).unwrap(), b"a considerably longer record body");
        assert!(p.update(0, s, b"x").unwrap());
        assert_eq!(p.read(0, s).unwrap(), b"x");
    }

    #[test]
    fn update_no_fit_keeps_original() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf[..], PageKind::Heap);
        let filler = vec![0u8; 4000];
        p.insert(&filler).unwrap();
        let s = p.insert(&filler[..3000]).unwrap();
        // Growing to 6000 cannot fit alongside the 4000-byte filler.
        assert!(!p.update(0, s, &vec![1u8; 6000]).unwrap());
        assert_eq!(p.read(0, s).unwrap().len(), 3000);
    }

    #[test]
    fn chain_links_round_trip() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf[..], PageKind::Heap);
        assert_eq!(p.next(), NO_PAGE);
        p.set_next(42);
        p.set_prev(7);
        assert_eq!(p.next(), 42);
        assert_eq!(p.prev(), 7);
        assert_eq!(p.kind(), PageKind::Heap);
    }

    #[test]
    fn record_too_large_rejected() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf[..], PageKind::Heap);
        assert!(matches!(
            p.insert(&vec![0u8; PAGE_SIZE]),
            Err(StorageError::RecordTooLarge(_))
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Delete(usize),
        Update(usize, Vec<u8>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..300).prop_map(Op::Insert),
            (0usize..64).prop_map(Op::Delete),
            ((0usize..64), proptest::collection::vec(any::<u8>(), 0..300))
                .prop_map(|(s, d)| Op::Update(s, d)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random insert/delete/update sequences agree with a Vec model,
        /// and all live records survive compaction.
        #[test]
        fn page_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
            let mut buf = Box::new([0u8; PAGE_SIZE]);
            let mut page = SlottedPage::format(&mut buf[..], PageKind::Heap);
            // model[slot] = Some(bytes) while live.
            let mut model: Vec<Option<Vec<u8>>> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(data) => {
                        if page.can_fit(data.len()) {
                            let slot = page.insert(&data).unwrap();
                            prop_assert_eq!(slot as usize, model.len());
                            model.push(Some(data));
                        }
                    }
                    Op::Delete(i) => {
                        if model.is_empty() { continue; }
                        let slot = i % model.len();
                        let expect_ok = model[slot].is_some();
                        let got = page.delete(0, slot as u16).is_ok();
                        prop_assert_eq!(got, expect_ok);
                        model[slot] = None;
                    }
                    Op::Update(i, data) => {
                        if model.is_empty() { continue; }
                        let slot = i % model.len();
                        if model[slot].is_none() {
                            prop_assert!(page.update(0, slot as u16, &data).is_err());
                            continue;
                        }
                        match page.update(0, slot as u16, &data) {
                            Ok(true) => { model[slot] = Some(data); }
                            Ok(false) => { /* no room; record unchanged */ }
                            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                        }
                    }
                }
                // Full-state check.
                for (slot, expect) in model.iter().enumerate() {
                    match expect {
                        Some(data) => prop_assert_eq!(page.read(0, slot as u16).unwrap(), &data[..]),
                        None => prop_assert!(page.read(0, slot as u16).is_err()),
                    }
                }
            }
            // Compaction preserves every live record.
            page.compact();
            for (slot, expect) in model.iter().enumerate() {
                if let Some(data) = expect {
                    prop_assert_eq!(page.read(0, slot as u16).unwrap(), &data[..]);
                }
            }
        }
    }
}
