//! The object table: stable logical object identifiers.
//!
//! EXTRA's `ref` and `own ref` semantics require *object identity* that
//! survives record movement (an update can relocate a record to another
//! page). The object table maps a logical [`Oid`] to the record id where
//! the object's bytes currently live, plus a type tag for the upper layers.
//!
//! Layout: a root page holds the next-OID counter and an array of directory
//! page numbers; each directory page holds a fixed-size array of entries
//! (`rid: u64, type_id: u32, flags: u32`). OID `n` lives at entry
//! `n % ENTRIES_PER_PAGE` of directory page `n / ENTRIES_PER_PAGE`. Root
//! pages chain when a database outgrows one root.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::heap::RecordId;
use crate::page::{PageKind, PageView, SlottedPage, NO_PAGE, PAGE_SIZE};

/// A logical object identifier. OID 0 is reserved as "null".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u64);

impl Oid {
    /// The null OID.
    pub const NULL: Oid = Oid(0);

    /// Whether this is the null OID.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// One object-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectEntry {
    /// Where the object's record currently lives.
    pub rid: RecordId,
    /// Upper-layer type tag (EXTRA schema-type id).
    pub type_id: u32,
}

const ENTRY_SIZE: usize = 16;
const BODY: usize = PAGE_SIZE - crate::page::HEADER_SIZE;
const ENTRIES_PER_PAGE: u64 = (BODY / ENTRY_SIZE) as u64;
// Root body: next_oid(8) then directory page numbers (8 bytes each).
const ROOT_DIRS: u64 = ((BODY - 8) / 8) as u64;
const FLAG_LIVE: u32 = 1;

/// Handle to an object table, identified by its root page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectTable {
    root: u64,
}

fn body_get_u64(b: &[u8], off: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(a)
}

fn body_put_u64(b: &mut [u8], off: usize, v: u64) {
    b[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn body_get_u32(b: &[u8], off: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[off..off + 4]);
    u32::from_le_bytes(a)
}

fn body_put_u32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

impl ObjectTable {
    /// Create a new, empty object table.
    pub fn create(pool: &Arc<BufferPool>) -> StorageResult<ObjectTable> {
        let root = pool.allocate()?;
        root.with_write(|buf| {
            let mut p = SlottedPage::format(buf, PageKind::ObjectDir);
            let body = p.body_mut();
            body_put_u64(body, 0, 1); // next_oid: 0 is null
            for i in 0..ROOT_DIRS as usize {
                body_put_u64(body, 8 + i * 8, NO_PAGE);
            }
        });
        Ok(ObjectTable {
            root: root.page_no(),
        })
    }

    /// Open an existing object table by root page number.
    pub fn open(root: u64) -> ObjectTable {
        ObjectTable { root }
    }

    /// The root page number (persist this to reopen).
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Find the root-chain page and slot index covering directory `dir_no`,
    /// walking/extending the chain as needed.
    fn root_for_dir(
        &self,
        pool: &Arc<BufferPool>,
        dir_no: u64,
        create: bool,
    ) -> StorageResult<Option<(u64, usize)>> {
        let mut page_no = self.root;
        let mut base = 0u64;
        loop {
            if dir_no < base + ROOT_DIRS {
                return Ok(Some((page_no, (dir_no - base) as usize)));
            }
            let page = pool.pin(page_no)?;
            let next = page.with_read(|buf| PageView::new(buf).next());
            if next != NO_PAGE {
                page_no = next;
                base += ROOT_DIRS;
                continue;
            }
            if !create {
                return Ok(None);
            }
            let new_root = pool.allocate()?;
            let new_no = new_root.page_no();
            new_root.with_write(|buf| {
                let mut p = SlottedPage::format(buf, PageKind::ObjectDir);
                let body = p.body_mut();
                for i in 0..ROOT_DIRS as usize {
                    body_put_u64(body, 8 + i * 8, NO_PAGE);
                }
            });
            page.with_write(|buf| SlottedPage::new(buf).set_next(new_no));
            page_no = new_no;
            base += ROOT_DIRS;
        }
    }

    /// Directory page number for `dir_no`, creating it if requested.
    fn dir_page(
        &self,
        pool: &Arc<BufferPool>,
        dir_no: u64,
        create: bool,
    ) -> StorageResult<Option<u64>> {
        let Some((root_no, idx)) = self.root_for_dir(pool, dir_no, create)? else {
            return Ok(None);
        };
        let root = pool.pin(root_no)?;
        let existing = root.with_read(|buf| body_get_u64(PageView::new(buf).body(), 8 + idx * 8));
        if existing != NO_PAGE {
            return Ok(Some(existing));
        }
        if !create {
            return Ok(None);
        }
        let dir = pool.allocate()?;
        let dir_page_no = dir.page_no();
        dir.with_write(|buf| {
            SlottedPage::format(buf, PageKind::ObjectDir);
        });
        root.with_write(|buf| {
            let mut p = SlottedPage::new(buf);
            body_put_u64(p.body_mut(), 8 + idx * 8, dir_page_no);
        });
        Ok(Some(dir_page_no))
    }

    /// Allocate a fresh OID mapped to `rid` with type tag `type_id`.
    pub fn allocate(
        &self,
        pool: &Arc<BufferPool>,
        rid: RecordId,
        type_id: u32,
    ) -> StorageResult<Oid> {
        let root = pool.pin(self.root)?;
        let oid = root.with_write(|buf| {
            let mut p = SlottedPage::new(buf);
            let body = p.body_mut();
            let oid = body_get_u64(body, 0);
            body_put_u64(body, 0, oid + 1);
            oid
        });
        drop(root);
        self.write_entry(pool, Oid(oid), rid, type_id)?;
        Ok(Oid(oid))
    }

    fn write_entry(
        &self,
        pool: &Arc<BufferPool>,
        oid: Oid,
        rid: RecordId,
        type_id: u32,
    ) -> StorageResult<()> {
        let dir_no = oid.0 / ENTRIES_PER_PAGE;
        let idx = (oid.0 % ENTRIES_PER_PAGE) as usize;
        let dir_page_no = self
            .dir_page(pool, dir_no, true)?
            .expect("create=true always yields a page");
        let dir = pool.pin(dir_page_no)?;
        dir.with_write(|buf| {
            let mut p = SlottedPage::new(buf);
            let body = p.body_mut();
            body_put_u64(body, idx * ENTRY_SIZE, rid.pack());
            body_put_u32(body, idx * ENTRY_SIZE + 8, type_id);
            body_put_u32(body, idx * ENTRY_SIZE + 12, FLAG_LIVE);
        });
        Ok(())
    }

    /// Look up an OID.
    pub fn get(&self, pool: &Arc<BufferPool>, oid: Oid) -> StorageResult<ObjectEntry> {
        if oid.is_null() {
            return Err(StorageError::UnknownOid(0));
        }
        let dir_no = oid.0 / ENTRIES_PER_PAGE;
        let idx = (oid.0 % ENTRIES_PER_PAGE) as usize;
        let Some(dir_page_no) = self.dir_page(pool, dir_no, false)? else {
            return Err(StorageError::UnknownOid(oid.0));
        };
        let dir = pool.pin(dir_page_no)?;
        dir.with_read(|buf| {
            let body = PageView::new(buf).body();
            let flags = body_get_u32(body, idx * ENTRY_SIZE + 12);
            if flags & FLAG_LIVE == 0 {
                return Err(StorageError::UnknownOid(oid.0));
            }
            Ok(ObjectEntry {
                rid: RecordId::unpack(body_get_u64(body, idx * ENTRY_SIZE)),
                type_id: body_get_u32(body, idx * ENTRY_SIZE + 8),
            })
        })
    }

    /// Look up many OIDs, pinning each directory page once per run of
    /// entries it covers instead of once per OID (sequentially
    /// allocated OIDs — the common probe pattern — share directory
    /// pages). Unknown, dead, and null OIDs yield `None`.
    pub fn get_many(
        &self,
        pool: &Arc<BufferPool>,
        oids: &[Oid],
    ) -> StorageResult<Vec<Option<ObjectEntry>>> {
        let mut order: Vec<usize> = (0..oids.len()).collect();
        order.sort_unstable_by_key(|&i| oids[i].0);
        let mut out: Vec<Option<ObjectEntry>> = vec![None; oids.len()];
        let mut i = 0;
        while i < order.len() {
            if oids[order[i]].is_null() {
                i += 1;
                continue;
            }
            let dir_no = oids[order[i]].0 / ENTRIES_PER_PAGE;
            let mut j = i;
            while j < order.len() && oids[order[j]].0 / ENTRIES_PER_PAGE == dir_no {
                j += 1;
            }
            if let Some(dir_page_no) = self.dir_page(pool, dir_no, false)? {
                let dir = pool.pin(dir_page_no)?;
                dir.with_read(|buf| {
                    let body = PageView::new(buf).body();
                    for &idx in &order[i..j] {
                        let k = (oids[idx].0 % ENTRIES_PER_PAGE) as usize;
                        if body_get_u32(body, k * ENTRY_SIZE + 12) & FLAG_LIVE != 0 {
                            out[idx] = Some(ObjectEntry {
                                rid: RecordId::unpack(body_get_u64(body, k * ENTRY_SIZE)),
                                type_id: body_get_u32(body, k * ENTRY_SIZE + 8),
                            });
                        }
                    }
                });
            }
            i = j;
        }
        Ok(out)
    }

    /// Whether an OID names a live object.
    pub fn exists(&self, pool: &Arc<BufferPool>, oid: Oid) -> StorageResult<bool> {
        match self.get(pool, oid) {
            Ok(_) => Ok(true),
            Err(StorageError::UnknownOid(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Point the OID at a new record id (the record moved).
    pub fn relocate(&self, pool: &Arc<BufferPool>, oid: Oid, rid: RecordId) -> StorageResult<()> {
        let entry = self.get(pool, oid)?; // validates liveness
        self.write_entry(pool, oid, rid, entry.type_id)
    }

    /// Free an OID (the object was destroyed). The slot is tombstoned; OIDs
    /// are never reused, preserving identity semantics.
    pub fn free(&self, pool: &Arc<BufferPool>, oid: Oid) -> StorageResult<()> {
        self.get(pool, oid)?; // validates liveness
        let dir_no = oid.0 / ENTRIES_PER_PAGE;
        let idx = (oid.0 % ENTRIES_PER_PAGE) as usize;
        let dir_page_no = self.dir_page(pool, dir_no, false)?.expect("entry exists");
        let dir = pool.pin(dir_page_no)?;
        dir.with_write(|buf| {
            let mut p = SlottedPage::new(buf);
            body_put_u32(p.body_mut(), idx * ENTRY_SIZE + 12, 0);
        });
        Ok(())
    }

    /// Highest OID allocated so far (exclusive bound).
    pub fn next_oid(&self, pool: &Arc<BufferPool>) -> StorageResult<u64> {
        let root = pool.pin(self.root)?;
        Ok(root.with_read(|buf| body_get_u64(PageView::new(buf).body(), 0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::MemVolume;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Box::new(MemVolume::new()), 64))
    }

    fn rid(page: u64, slot: u16) -> RecordId {
        RecordId { page, slot }
    }

    #[test]
    fn allocate_and_get() {
        let pool = pool();
        let t = ObjectTable::create(&pool).unwrap();
        let a = t.allocate(&pool, rid(10, 1), 7).unwrap();
        let b = t.allocate(&pool, rid(11, 2), 8).unwrap();
        assert_ne!(a, b);
        assert_eq!(
            t.get(&pool, a).unwrap(),
            ObjectEntry {
                rid: rid(10, 1),
                type_id: 7
            }
        );
        assert_eq!(
            t.get(&pool, b).unwrap(),
            ObjectEntry {
                rid: rid(11, 2),
                type_id: 8
            }
        );
    }

    #[test]
    fn null_and_unknown_oids_error() {
        let pool = pool();
        let t = ObjectTable::create(&pool).unwrap();
        assert!(matches!(
            t.get(&pool, Oid::NULL),
            Err(StorageError::UnknownOid(0))
        ));
        assert!(matches!(
            t.get(&pool, Oid(9999)),
            Err(StorageError::UnknownOid(9999))
        ));
        assert!(!t.exists(&pool, Oid(9999)).unwrap());
    }

    #[test]
    fn relocate_updates_mapping() {
        let pool = pool();
        let t = ObjectTable::create(&pool).unwrap();
        let o = t.allocate(&pool, rid(1, 0), 3).unwrap();
        t.relocate(&pool, o, rid(99, 4)).unwrap();
        let e = t.get(&pool, o).unwrap();
        assert_eq!(e.rid, rid(99, 4));
        assert_eq!(e.type_id, 3, "type preserved across relocation");
    }

    #[test]
    fn free_tombstones_without_reuse() {
        let pool = pool();
        let t = ObjectTable::create(&pool).unwrap();
        let a = t.allocate(&pool, rid(1, 0), 1).unwrap();
        t.free(&pool, a).unwrap();
        assert!(!t.exists(&pool, a).unwrap());
        let b = t.allocate(&pool, rid(2, 0), 1).unwrap();
        assert!(b.0 > a.0, "OIDs are never reused");
        // Double free is an error.
        assert!(t.free(&pool, a).is_err());
    }

    #[test]
    fn many_oids_span_directory_pages() {
        let pool = pool();
        let t = ObjectTable::create(&pool).unwrap();
        let n = ENTRIES_PER_PAGE * 3 + 17;
        let mut oids = Vec::new();
        for i in 0..n {
            oids.push(
                t.allocate(&pool, rid(i, (i % 100) as u16), i as u32)
                    .unwrap(),
            );
        }
        for (i, o) in oids.iter().enumerate() {
            let e = t.get(&pool, *o).unwrap();
            assert_eq!(e.rid, rid(i as u64, (i % 100) as u16));
            assert_eq!(e.type_id, i as u32);
        }
        assert_eq!(t.next_oid(&pool).unwrap(), n + 1);
    }
}
