//! Write-ahead log: append-only, segmented, checksummed.
//!
//! The log is a directory of segment files (`wal-NNNNNNNNNN.seg`). Each
//! segment starts with a 16-byte header (magic, format version, LSN of the
//! segment's first record) and then holds a sequence of frames:
//!
//! ```text
//! | len: u32 | crc: u32 | lsn: u64 | unit: u64 | record bytes ... |
//! |<-------- frame header ------->|<-------- crc-covered -------->|
//! ```
//!
//! `len` counts the crc-covered bytes. LSNs number records contiguously
//! from 1 across segments; a reader verifies both the CRC and the LSN
//! chain, so a torn tail (a frame half-written at a crash) is detected and
//! truncated rather than replayed.
//!
//! # The recovery protocol (redo-only, no-steal)
//!
//! A *logged unit* is the storage-level unit of atomicity (the database
//! layer wraps each DML statement in one). The protocol:
//!
//! 1. [`Wal::begin_unit`] appends [`WalRecord::Begin`]. One unit is active
//!    at a time; pages it dirties are registered by the buffer pool and may
//!    **not** be written back to the volume while the unit is open (the
//!    no-steal rule — uncommitted bytes never reach the volume).
//! 2. Structure operations append descriptive records (heap/B+-tree/LOB
//!    insert/update/delete/split) as they execute. These document *what*
//!    happened — the record catalogue recovery diagnostics print — while
//!    the redo payload travels in full-page images.
//! 3. At commit, a [`WalRecord::PageImage`] after-image of every page the
//!    unit dirtied is appended, then [`WalRecord::Commit`], then the log is
//!    flushed per the [`Durability`] level.
//!
//! Recovery ([`crate::recovery`]) replays the page images of committed
//! units in LSN order; uncommitted units contribute nothing, which is
//! exactly statement rollback. [`WalRecord::Checkpoint`] marks a point
//! where the volume held everything earlier; segments wholly before it are
//! deleted.
//!
//! The flush rule ("no dirty page leaves the pool ahead of its log
//! record") is enforced by the buffer pool calling [`Wal::flush_up_to`]
//! with the page's LSN before any volume write.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;

use exodus_obs::{Histogram, COUNT_BUCKETS, LATENCY_BUCKETS_NS};
use parking_lot::Mutex;

use crate::crc::crc32;
use crate::error::{StorageError, StorageResult};
use crate::failpoint::{self, WriteAction};
use crate::page::PAGE_SIZE;

/// A log sequence number. Records are numbered contiguously from 1; 0
/// means "no record" (e.g. the page LSN of a never-logged page).
pub type Lsn = u64;

/// How hard committed work is pinned down.
///
/// See DESIGN.md §11 for the full crash-consistency contract table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No write-ahead log at all. Fastest; an interrupted process may
    /// corrupt a file-backed volume. The only choice for in-memory
    /// volumes, where there is nothing to recover.
    #[default]
    None,
    /// Log records are written to the segment file but not fsynced at
    /// commit. Committed statements survive a *process* crash (the OS
    /// still holds the bytes) but may be lost on power failure.
    Buffered,
    /// The log is fsynced before a commit is acknowledged. Committed
    /// statements survive power loss.
    Fsync,
}

/// One log record. The frame envelope (LSN + unit id) travels outside the
/// record, so variants only carry operation payloads.
///
/// `PageImage` is the redo payload; the structure-level records are
/// descriptive (they let recovery diagnostics narrate what a unit did, and
/// give tests a catalogue to assert against).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A logged unit opened.
    Begin,
    /// A logged unit committed; its page images precede this record. `ts`
    /// is the transaction commit timestamp the unit published (0 for
    /// legacy units outside the transaction manager), so recovery can
    /// restore the commit clock.
    Commit {
        /// Commit timestamp published by this unit (0 = non-transactional).
        ts: u64,
    },
    /// Everything with a smaller LSN is on the volume. `clock` snapshots
    /// the commit clock at checkpoint time so segment GC cannot lose it.
    Checkpoint {
        /// Commit clock at checkpoint time.
        clock: u64,
    },
    /// Full after-image of one page.
    PageImage {
        /// The page the image belongs to.
        page_no: u64,
        /// Exactly [`PAGE_SIZE`] bytes.
        image: Vec<u8>,
    },
    /// A heap-file record was inserted.
    HeapInsert {
        /// Header page of the heap file.
        file: u64,
        /// Packed [`crate::RecordId`] of the new record.
        rid: u64,
        /// Record length in bytes.
        len: u32,
    },
    /// A heap-file record was overwritten (it may have moved).
    HeapUpdate {
        /// Header page of the heap file.
        file: u64,
        /// Packed record id before the update.
        old_rid: u64,
        /// Packed record id after the update.
        new_rid: u64,
        /// New record length in bytes.
        len: u32,
    },
    /// A heap-file record was deleted. `file` is `u64::MAX` when the
    /// deletion went through the file-independent path.
    HeapDelete {
        /// Header page of the heap file, or `u64::MAX` if unknown.
        file: u64,
        /// Packed record id.
        rid: u64,
    },
    /// A key/value pair entered a B+-tree.
    BTreeInsert {
        /// Root page of the tree.
        root: u64,
        /// Encoded key length in bytes.
        key_len: u32,
    },
    /// A key/value pair left a B+-tree.
    BTreeDelete {
        /// Root page of the tree.
        root: u64,
        /// Encoded key length in bytes.
        key_len: u32,
    },
    /// A B+-tree node split into two.
    BTreeSplit {
        /// Root page of the tree.
        root: u64,
        /// Page that was split.
        left: u64,
        /// Newly allocated right sibling.
        right: u64,
    },
    /// A byte range of a large object was written or appended.
    LobWrite {
        /// First page of the LOB chain.
        first: u64,
        /// Byte offset of the write.
        offset: u64,
        /// Bytes written.
        len: u64,
    },
    /// A large object was truncated.
    LobTruncate {
        /// First page of the LOB chain.
        first: u64,
        /// New length in bytes.
        len: u64,
    },
}

const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;
const TAG_PAGE_IMAGE: u8 = 4;
const TAG_HEAP_INSERT: u8 = 5;
const TAG_HEAP_UPDATE: u8 = 6;
const TAG_HEAP_DELETE: u8 = 7;
const TAG_BTREE_INSERT: u8 = 8;
const TAG_BTREE_DELETE: u8 = 9;
const TAG_BTREE_SPLIT: u8 = 10;
const TAG_LOB_WRITE: u8 = 11;
const TAG_LOB_TRUNCATE: u8 = 12;

impl WalRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut u64s = |tag: u8, vals: &[u64]| {
            out.push(tag);
            for v in vals {
                out.extend_from_slice(&v.to_le_bytes());
            }
        };
        match self {
            WalRecord::Begin => u64s(TAG_BEGIN, &[]),
            WalRecord::Commit { ts } => u64s(TAG_COMMIT, &[*ts]),
            WalRecord::Checkpoint { clock } => u64s(TAG_CHECKPOINT, &[*clock]),
            WalRecord::PageImage { page_no, image } => {
                debug_assert_eq!(image.len(), PAGE_SIZE);
                u64s(TAG_PAGE_IMAGE, &[*page_no]);
                out.extend_from_slice(image);
            }
            WalRecord::HeapInsert { file, rid, len } => {
                u64s(TAG_HEAP_INSERT, &[*file, *rid, *len as u64])
            }
            WalRecord::HeapUpdate {
                file,
                old_rid,
                new_rid,
                len,
            } => u64s(TAG_HEAP_UPDATE, &[*file, *old_rid, *new_rid, *len as u64]),
            WalRecord::HeapDelete { file, rid } => u64s(TAG_HEAP_DELETE, &[*file, *rid]),
            WalRecord::BTreeInsert { root, key_len } => {
                u64s(TAG_BTREE_INSERT, &[*root, *key_len as u64])
            }
            WalRecord::BTreeDelete { root, key_len } => {
                u64s(TAG_BTREE_DELETE, &[*root, *key_len as u64])
            }
            WalRecord::BTreeSplit { root, left, right } => {
                u64s(TAG_BTREE_SPLIT, &[*root, *left, *right])
            }
            WalRecord::LobWrite { first, offset, len } => {
                u64s(TAG_LOB_WRITE, &[*first, *offset, *len])
            }
            WalRecord::LobTruncate { first, len } => u64s(TAG_LOB_TRUNCATE, &[*first, *len]),
        }
    }

    fn decode(buf: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = buf.split_first()?;
        let mut fields = rest.chunks_exact(8).map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            u64::from_le_bytes(b)
        });
        let n = rest.len() / 8;
        let mut take = |want: usize| -> Option<Vec<u64>> {
            (n == want && rest.len() == want * 8).then(|| fields.by_ref().take(want).collect())
        };
        Some(match tag {
            TAG_BEGIN if rest.is_empty() => WalRecord::Begin,
            TAG_COMMIT => {
                let v = take(1)?;
                WalRecord::Commit { ts: v[0] }
            }
            TAG_CHECKPOINT => {
                let v = take(1)?;
                WalRecord::Checkpoint { clock: v[0] }
            }
            TAG_PAGE_IMAGE => {
                if rest.len() != 8 + PAGE_SIZE {
                    return None;
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&rest[..8]);
                WalRecord::PageImage {
                    page_no: u64::from_le_bytes(b),
                    image: rest[8..].to_vec(),
                }
            }
            TAG_HEAP_INSERT => {
                let v = take(3)?;
                WalRecord::HeapInsert {
                    file: v[0],
                    rid: v[1],
                    len: v[2] as u32,
                }
            }
            TAG_HEAP_UPDATE => {
                let v = take(4)?;
                WalRecord::HeapUpdate {
                    file: v[0],
                    old_rid: v[1],
                    new_rid: v[2],
                    len: v[3] as u32,
                }
            }
            TAG_HEAP_DELETE => {
                let v = take(2)?;
                WalRecord::HeapDelete {
                    file: v[0],
                    rid: v[1],
                }
            }
            TAG_BTREE_INSERT => {
                let v = take(2)?;
                WalRecord::BTreeInsert {
                    root: v[0],
                    key_len: v[1] as u32,
                }
            }
            TAG_BTREE_DELETE => {
                let v = take(2)?;
                WalRecord::BTreeDelete {
                    root: v[0],
                    key_len: v[1] as u32,
                }
            }
            TAG_BTREE_SPLIT => {
                let v = take(3)?;
                WalRecord::BTreeSplit {
                    root: v[0],
                    left: v[1],
                    right: v[2],
                }
            }
            TAG_LOB_WRITE => {
                let v = take(3)?;
                WalRecord::LobWrite {
                    first: v[0],
                    offset: v[1],
                    len: v[2],
                }
            }
            TAG_LOB_TRUNCATE => {
                let v = take(2)?;
                WalRecord::LobTruncate {
                    first: v[0],
                    len: v[1],
                }
            }
            _ => return None,
        })
    }
}

/// Magic bytes opening every segment file.
const SEG_MAGIC: [u8; 4] = *b"XWAL";
/// Log format version.
///
/// * **v1** — pre-MVCC: `Commit`/`Checkpoint` carried no payload and
///   heap records had no version header.
/// * **v2** — MVCC: `Commit { ts }` / `Checkpoint { clock }` carry a
///   u64 timestamp, and every heap record travels with a 16-byte
///   `(begin_ts, end_ts)` header (which also changes the page images).
///
/// A version-1 log cannot be read by this build (old zero-payload
/// commit records fail decode and would read as a torn tail, silently
/// truncating committed data), so [`read_log`] refuses a mismatched
/// segment with [`StorageError::UnsupportedLogVersion`] instead of
/// treating it as torn. There is no migration; the volume carries no
/// separate stamp, so the WAL segment header is the format gate.
const SEG_VERSION: u32 = 2;
/// Bytes of the segment header: magic, version, first LSN.
pub(crate) const SEG_HEADER: usize = 16;
/// Default segment size before rollover.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;
/// Bytes of the frame header (`len` + `crc`).
const FRAME_HEADER: usize = 8;

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.seg"))
}

/// List segment files in `dir`, ordered by sequence number.
pub(crate) fn list_segments(dir: &Path) -> StorageResult<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// One decoded log entry.
#[derive(Debug, Clone)]
pub struct WalEntry {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// The logged unit it belongs to (0 = outside any unit).
    pub unit: u64,
    /// The record itself.
    pub rec: WalRecord,
}

/// Where a log scan stopped.
#[derive(Debug, Default)]
pub(crate) struct LogTail {
    /// LSN of the last valid record (0 when the log is empty).
    pub last_lsn: Lsn,
    /// Whether the scan hit a torn/corrupt frame (vs clean end-of-log).
    pub torn: bool,
    /// Segment seq + byte offset just past the last valid frame, if any
    /// segment exists.
    pub valid_end: Option<(u64, u64)>,
    /// Bytes of invalid tail discovered (in the torn segment and beyond).
    pub torn_bytes: u64,
}

/// Scan every segment, yielding valid entries in order and the position
/// where validity ends. Stops at the first torn frame; later segments are
/// counted as torn bytes wholesale.
pub(crate) fn read_log(dir: &Path) -> StorageResult<(Vec<WalEntry>, LogTail)> {
    let mut entries = Vec::new();
    let mut tail = LogTail::default();
    let mut expect_lsn: Lsn = 0; // 0 = take the first segment's word for it
    for (seq, path) in list_segments(dir)? {
        if tail.torn {
            tail.torn_bytes += std::fs::metadata(&path)?.len();
            continue;
        }
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let seg_len = bytes.len() as u64;
        let header_ok = bytes.len() >= SEG_HEADER && bytes[..4] == SEG_MAGIC;
        if header_ok {
            // An intact magic with the wrong version is old data, not a
            // torn header: refuse it loudly rather than truncate-and-
            // recover past committed work written by another format.
            let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
            if version != SEG_VERSION {
                return Err(StorageError::UnsupportedLogVersion {
                    found: version,
                    expected: SEG_VERSION,
                });
            }
        }
        let first_lsn = if header_ok {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[8..16]);
            u64::from_le_bytes(b)
        } else {
            0
        };
        if !header_ok || (expect_lsn != 0 && first_lsn != expect_lsn) {
            // A segment created moments before the crash (header torn), or
            // one that does not continue the chain: end of the valid log.
            tail.torn = true;
            tail.torn_bytes += seg_len;
            continue;
        }
        if expect_lsn == 0 {
            expect_lsn = first_lsn;
        }
        let mut pos = SEG_HEADER;
        tail.valid_end = Some((seq, pos as u64));
        while pos + FRAME_HEADER <= bytes.len() {
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            let body_start = pos + FRAME_HEADER;
            if len < 17 || body_start + len > bytes.len() {
                break; // incomplete frame: torn tail
            }
            let body = &bytes[body_start..body_start + len];
            if crc32(body) != crc {
                break;
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&body[..8]);
            let lsn = u64::from_le_bytes(b);
            b.copy_from_slice(&body[8..16]);
            let unit = u64::from_le_bytes(b);
            if lsn != expect_lsn {
                break;
            }
            let Some(rec) = WalRecord::decode(&body[16..]) else {
                break;
            };
            entries.push(WalEntry { lsn, unit, rec });
            tail.last_lsn = lsn;
            expect_lsn += 1;
            pos = body_start + len;
            tail.valid_end = Some((seq, pos as u64));
        }
        if (pos as u64) < seg_len {
            tail.torn = true;
            tail.torn_bytes += seg_len - pos as u64;
        }
    }
    Ok((entries, tail))
}

/// Encode one entry as an on-disk/wire frame
/// (`len | crc | lsn | unit | record`), appending to `out`. The frame
/// bytes are identical to what [`Wal::append`] writes, so a replica can
/// verify the CRC chain it receives and a wire batch is just a slice of
/// the log.
pub fn encode_frame(entry: &WalEntry, out: &mut Vec<u8>) {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&entry.lsn.to_le_bytes());
    body.extend_from_slice(&entry.unit.to_le_bytes());
    entry.rec.encode_into(&mut body);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
}

/// Decode a concatenation of [`encode_frame`] frames. Strict, unlike the
/// scan in `read_log`: a short frame, CRC mismatch or undecodable record
/// is an error, not a tail — a replication batch is never torn.
pub fn decode_frames(bytes: &[u8]) -> StorageResult<Vec<WalEntry>> {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + FRAME_HEADER > bytes.len() {
            return Err(StorageError::Corrupt("short replication frame".into()));
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let body_start = pos + FRAME_HEADER;
        if len < 17 || body_start + len > bytes.len() {
            return Err(StorageError::Corrupt("short replication frame".into()));
        }
        let body = &bytes[body_start..body_start + len];
        if crc32(body) != crc {
            return Err(StorageError::Corrupt(
                "replication frame failed its CRC".into(),
            ));
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&body[..8]);
        let lsn = u64::from_le_bytes(b);
        b.copy_from_slice(&body[8..16]);
        let unit = u64::from_le_bytes(b);
        let rec = WalRecord::decode(&body[16..]).ok_or_else(|| {
            StorageError::Corrupt(format!("undecodable replication record at lsn {lsn}"))
        })?;
        entries.push(WalEntry { lsn, unit, rec });
        pos = body_start + len;
    }
    Ok(entries)
}

impl Wal {
    /// Read up to `max_records` committed-to-durability entries with LSNs
    /// strictly after `after_lsn`, straight from the segment files (the
    /// OS page cache makes freshly appended bytes visible). Returns an
    /// empty vector when `after_lsn` is already the durable frontier, and
    /// an error naming the pruned history when `after_lsn + 1` predates
    /// the earliest surviving segment (the subscriber must re-seed).
    pub fn read_entries_after(
        &self,
        after_lsn: Lsn,
        max_records: usize,
    ) -> StorageResult<Vec<WalEntry>> {
        let durable = self.durable_lsn();
        if after_lsn >= durable || max_records == 0 {
            return Ok(Vec::new());
        }
        let segs = list_segments(&self.dir)?;
        match segs.first().and_then(|(_, p)| segment_first_lsn(p)) {
            Some(first) if first <= after_lsn + 1 => {}
            Some(first) => {
                return Err(StorageError::Corrupt(format!(
                    "replication history pruned: need lsn {} but the log now starts at {first}",
                    after_lsn + 1
                )))
            }
            None => {
                return Err(StorageError::Corrupt(
                    "replication history pruned: no readable segment".into(),
                ))
            }
        }
        let mut out = Vec::new();
        for window in 0..segs.len() {
            // Skip segments wholly before the cursor: dead if the next
            // segment starts at or before it (same test as GC).
            if let Some((_, next_path)) = segs.get(window + 1) {
                if segment_first_lsn(next_path).is_some_and(|first| first <= after_lsn + 1) {
                    continue;
                }
            }
            let (_, path) = &segs[window];
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let mut pos = SEG_HEADER;
            while pos + FRAME_HEADER <= bytes.len() {
                let len = u32::from_le_bytes([
                    bytes[pos],
                    bytes[pos + 1],
                    bytes[pos + 2],
                    bytes[pos + 3],
                ]) as usize;
                let crc = u32::from_le_bytes([
                    bytes[pos + 4],
                    bytes[pos + 5],
                    bytes[pos + 6],
                    bytes[pos + 7],
                ]);
                let body_start = pos + FRAME_HEADER;
                if len < 17 || body_start + len > bytes.len() {
                    break; // in-flight append: stop at the ragged tail
                }
                let body = &bytes[body_start..body_start + len];
                if crc32(body) != crc {
                    break;
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&body[..8]);
                let lsn = u64::from_le_bytes(b);
                if lsn > durable || out.len() >= max_records {
                    return Ok(out);
                }
                if lsn > after_lsn {
                    b.copy_from_slice(&body[8..16]);
                    let unit = u64::from_le_bytes(b);
                    let rec = WalRecord::decode(&body[16..]).ok_or_else(|| {
                        StorageError::Corrupt(format!("undecodable log record at lsn {lsn}"))
                    })?;
                    out.push(WalEntry { lsn, unit, rec });
                }
                pos = body_start + len;
            }
        }
        Ok(out)
    }
}

struct WalInner {
    file: File,
    seg_seq: u64,
    seg_len: u64,
    /// LSN of the last appended record.
    appended_lsn: Lsn,
    /// LSN through which the log has been fsynced.
    synced_lsn: Lsn,
}

struct UnitSlot {
    active: Option<ActiveUnit>,
    next_id: u64,
}

struct ActiveUnit {
    id: u64,
    dirty: HashSet<u64>,
}

/// Process-local activity counters a [`Wal`] maintains on its hot paths.
/// Plain relaxed atomics and owned histograms — the metrics registry
/// reads them through callbacks at snapshot time (see `exodus-obs`).
pub struct WalMetrics {
    /// Records appended by this process.
    pub appends: AtomicU64,
    /// Frame bytes (header + body) appended by this process.
    pub append_bytes: AtomicU64,
    /// `sync_data` calls issued (group commits + segment rollovers).
    pub fsyncs: AtomicU64,
    /// Records made durable per fsync (the group-commit batch size).
    pub group_commit_records: Arc<Histogram>,
    /// Wall-clock `sync_data` latency.
    pub fsync_ns: Arc<Histogram>,
}

impl WalMetrics {
    fn new() -> WalMetrics {
        WalMetrics {
            appends: AtomicU64::new(0),
            append_bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            group_commit_records: Arc::new(Histogram::new(COUNT_BUCKETS)),
            fsync_ns: Arc::new(Histogram::new(LATENCY_BUCKETS_NS)),
        }
    }
}

/// The write-ahead log. See the module docs for the protocol.
pub struct Wal {
    dir: PathBuf,
    durability: Durability,
    segment_bytes: u64,
    inner: Mutex<WalInner>,
    /// Serializes group-flush leaders (see [`Wal::flush_up_to`]). Held
    /// across the fsync so queued committers wake to find their LSN
    /// already covered; *not* held while appending, so the next writer's
    /// records stream into the segment during the leader's disk wait.
    flush_lock: Mutex<()>,
    unit: StdMutex<UnitSlot>,
    unit_cv: Condvar,
    /// Mirror of `inner.appended_lsn` readable without the append lock.
    appended: AtomicU64,
    /// Mirror of `inner.synced_lsn` readable without the append lock.
    synced: AtomicU64,
    /// Lowest LSN that must stay reachable in segment files
    /// ([`u64::MAX`] = no floor). Replication sources pin this so
    /// checkpoint GC cannot prune segments a subscriber still needs.
    gc_floor: AtomicU64,
    metrics: WalMetrics,
}

impl Wal {
    /// Open (or create) the log in `dir`, positioning appends after the
    /// last valid record. Run [`crate::recovery::recover`] first: this
    /// trusts the tail it finds. `durability` must not be
    /// [`Durability::None`] — a database without a log simply has no
    /// [`Wal`].
    pub fn open(dir: &Path, durability: Durability, segment_bytes: u64) -> StorageResult<Wal> {
        assert!(
            durability != Durability::None,
            "Durability::None means no WAL is constructed"
        );
        std::fs::create_dir_all(dir)?;
        let (_, tail) = read_log(dir)?;
        let (file, seg_seq, seg_len) = match tail.valid_end {
            Some((seq, off)) => {
                let mut file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(segment_path(dir, seq))?;
                file.set_len(off)?; // drop any torn tail defensively
                file.seek(std::io::SeekFrom::Start(off))?;
                (file, seq, off)
            }
            None => {
                let (file, len) = new_segment(dir, 1, 1)?;
                (file, 1, len)
            }
        };
        Ok(Wal {
            dir: dir.to_path_buf(),
            durability,
            segment_bytes,
            inner: Mutex::new(WalInner {
                file,
                seg_seq,
                seg_len,
                appended_lsn: tail.last_lsn,
                synced_lsn: tail.last_lsn,
            }),
            flush_lock: Mutex::new(()),
            unit: StdMutex::new(UnitSlot {
                active: None,
                next_id: 1,
            }),
            unit_cv: Condvar::new(),
            appended: AtomicU64::new(tail.last_lsn),
            synced: AtomicU64::new(tail.last_lsn),
            gc_floor: AtomicU64::new(u64::MAX),
            metrics: WalMetrics::new(),
        })
    }

    /// The log's activity counters (see [`WalMetrics`]).
    pub fn metrics(&self) -> &WalMetrics {
        &self.metrics
    }

    /// Fsync `inner`'s segment file, accounting the latency and the
    /// number of records the sync makes durable (the group-commit batch).
    fn sync_inner(&self, inner: &mut WalInner) -> StorageResult<()> {
        failpoint::check_write("wal.fsync", 0).map(|_| ())?;
        let batch = inner.appended_lsn - inner.synced_lsn;
        let start = Instant::now();
        inner.file.sync_data()?;
        self.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .fsync_ns
            .observe(start.elapsed().as_nanos() as u64);
        self.metrics.group_commit_records.observe(batch);
        inner.synced_lsn = inner.synced_lsn.max(inner.appended_lsn);
        self.synced.store(inner.synced_lsn, Ordering::Release);
        Ok(())
    }

    /// The configured durability level (never [`Durability::None`]).
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Append one record for `unit` (0 = outside any unit); returns its
    /// LSN. Buffered in the OS — call [`Wal::flush`] to make it durable.
    pub fn append(&self, unit: u64, rec: &WalRecord) -> StorageResult<Lsn> {
        let mut inner = self.inner.lock();
        let lsn = inner.appended_lsn + 1;
        let mut body = Vec::with_capacity(64);
        body.extend_from_slice(&lsn.to_le_bytes());
        body.extend_from_slice(&unit.to_le_bytes());
        rec.encode_into(&mut body);
        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        match failpoint::check_write("wal.append", frame.len())? {
            WriteAction::Full => inner.file.write_all(&frame)?,
            WriteAction::Torn(n) => {
                inner.file.write_all(&frame[..n])?;
                return Err(StorageError::Io(std::io::Error::other(
                    "failpoint: torn log append",
                )));
            }
        }
        inner.seg_len += frame.len() as u64;
        inner.appended_lsn = lsn;
        self.appended.store(lsn, Ordering::Release);
        self.metrics.appends.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .append_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        if inner.seg_len >= self.segment_bytes {
            if self.durability == Durability::Fsync {
                // The retiring segment may hold frames newer than the last
                // group fsync; pin them down before moving on, so
                // `flush_up_to` never needs to reach back across files.
                self.sync_inner(&mut inner)?;
            }
            let (file, len) = new_segment(&self.dir, inner.seg_seq + 1, lsn + 1)?;
            inner.file = file;
            inner.seg_seq += 1;
            inner.seg_len = len;
        }
        Ok(lsn)
    }

    /// LSN of the last appended record.
    pub fn appended_lsn(&self) -> Lsn {
        self.appended.load(Ordering::Acquire)
    }

    /// LSN through which the log has been fsynced.
    pub fn synced_lsn(&self) -> Lsn {
        self.synced.load(Ordering::Acquire)
    }

    /// The LSN through which records are durable at this log's
    /// configured level — the shipping boundary for replication. Under
    /// [`Durability::Fsync`] only fsynced records qualify; under
    /// [`Durability::Buffered`] the level's contract is "survives a
    /// process crash", so everything appended qualifies.
    pub fn durable_lsn(&self) -> Lsn {
        match self.durability {
            Durability::Fsync => self.synced_lsn(),
            _ => self.appended_lsn(),
        }
    }

    /// Pin segment GC: segments containing records at or after `lsn`
    /// survive [`Wal::gc_segments`] regardless of checkpoint progress.
    /// `u64::MAX` lifts the floor.
    pub fn set_gc_floor(&self, lsn: Lsn) {
        self.gc_floor.store(lsn, Ordering::Release);
    }

    /// Sequence number of the segment currently being appended to
    /// (segments shipped/replayed so far, for the `repl_*` gauges).
    pub fn segment_seq(&self) -> u64 {
        self.inner.lock().seg_seq
    }

    /// The log directory (replication preload scans it via `read_log`).
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Make everything appended so far durable per the configured level.
    /// Under [`Durability::Buffered`] this is a no-op (the OS holds the
    /// bytes; that survives a process crash, which is the level's
    /// contract). Under [`Durability::Fsync`] the segment is fsynced —
    /// once per distinct LSN, so a burst of committers shares one fsync
    /// (group commit).
    pub fn flush(&self) -> StorageResult<()> {
        let target = self.appended.load(Ordering::Acquire);
        self.flush_up_to(target)
    }

    /// Ensure the log is durable through `lsn`: the flush rule for page
    /// write-back ("no dirty page leaves the pool ahead of its log
    /// record") and the commit-durability wait, in one.
    ///
    /// Group commit: flushers serialize on a dedicated leader lock, not
    /// the append lock. The leader clones the segment's file handle and
    /// fsyncs *outside* the append lock, so concurrent committers keep
    /// appending during the disk wait; followers queued on the leader
    /// lock wake to find `synced_lsn` already past their target and
    /// return without ever touching the disk — a burst of committers
    /// costs one fsync.
    pub fn flush_up_to(&self, lsn: Lsn) -> StorageResult<()> {
        if self.durability != Durability::Fsync {
            return Ok(());
        }
        loop {
            // Fast path: an earlier leader's batch covered us.
            if self.inner.lock().synced_lsn >= lsn {
                return Ok(());
            }
            let _leader = self.flush_lock.lock();
            let (file, seg_seq, target, already) = {
                let inner = self.inner.lock();
                if inner.synced_lsn >= lsn {
                    return Ok(());
                }
                (
                    inner.file.try_clone()?,
                    inner.seg_seq,
                    inner.appended_lsn,
                    inner.synced_lsn,
                )
            };
            failpoint::check_write("wal.fsync", 0).map(|_| ())?;
            let start = Instant::now();
            file.sync_data()?;
            self.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .fsync_ns
                .observe(start.elapsed().as_nanos() as u64);
            self.metrics.group_commit_records.observe(target - already);
            let mut inner = self.inner.lock();
            if inner.seg_seq == seg_seq {
                inner.synced_lsn = inner.synced_lsn.max(target);
                self.synced.store(inner.synced_lsn, Ordering::Release);
            }
            // A rollover during our fsync already pinned the retired
            // segment down (and advanced `synced_lsn` itself); loop in
            // the unlikely case `lsn` still is not covered.
            if inner.synced_lsn >= lsn {
                return Ok(());
            }
        }
    }

    /// Open a logged unit, blocking until no other unit is active, and
    /// append its [`WalRecord::Begin`]. Returns the unit id.
    pub fn begin_unit(&self) -> StorageResult<u64> {
        let mut slot = self.unit.lock().expect("unit slot");
        while slot.active.is_some() {
            slot = self.unit_cv.wait(slot).expect("unit slot");
        }
        let id = slot.next_id;
        slot.next_id += 1;
        slot.active = Some(ActiveUnit {
            id,
            dirty: HashSet::new(),
        });
        drop(slot);
        match self.append(id, &WalRecord::Begin) {
            Ok(_) => Ok(id),
            Err(e) => {
                self.end_unit(id);
                Err(e)
            }
        }
    }

    /// Record that the active unit dirtied `page_no` (called by the
    /// buffer pool on every exclusive page access). A no-op outside a
    /// unit.
    pub fn note_write(&self, page_no: u64) {
        let mut slot = self.unit.lock().expect("unit slot");
        if let Some(active) = slot.active.as_mut() {
            active.dirty.insert(page_no);
        }
    }

    /// Whether `page_no` is pinned down by the active unit (the no-steal
    /// rule): such pages may not be written back to the volume.
    pub fn page_gated(&self, page_no: u64) -> bool {
        let slot = self.unit.lock().expect("unit slot");
        slot.active
            .as_ref()
            .is_some_and(|a| a.dirty.contains(&page_no))
    }

    /// The pages the unit has dirtied so far, sorted (deterministic
    /// commit image order). The set stays gated until [`Wal::end_unit`].
    pub fn unit_dirty_pages(&self, unit: u64) -> Vec<u64> {
        let slot = self.unit.lock().expect("unit slot");
        let mut pages: Vec<u64> = slot
            .active
            .as_ref()
            .filter(|a| a.id == unit)
            .map(|a| a.dirty.iter().copied().collect())
            .unwrap_or_default();
        pages.sort_unstable();
        pages
    }

    /// Close the unit (after `Commit` was appended — or on abandonment),
    /// releasing its pages for eviction and waking queued units.
    pub fn end_unit(&self, unit: u64) {
        let mut slot = self.unit.lock().expect("unit slot");
        if slot.active.as_ref().is_some_and(|a| a.id == unit) {
            slot.active = None;
        }
        drop(slot);
        self.unit_cv.notify_one();
    }

    /// The id of the active unit, or 0. Structure code logs descriptive
    /// records under this id.
    pub fn current_unit(&self) -> u64 {
        let slot = self.unit.lock().expect("unit slot");
        slot.active.as_ref().map_or(0, |a| a.id)
    }

    /// Append a descriptive operation record under the active unit (or
    /// unit 0 when none is open).
    pub fn log_op(&self, rec: &WalRecord) -> StorageResult<Lsn> {
        self.append(self.current_unit(), rec)
    }

    /// Hold the unit slot without opening a logged unit: blocks until no
    /// unit is active, and blocks [`Wal::begin_unit`] until the returned
    /// guard drops. Checkpoints use this so no unit's uncommitted pages
    /// can be mid-flight while the volume is brought up to date.
    pub fn pause_units(&self) -> UnitPause<'_> {
        let mut slot = self.unit.lock().expect("unit slot");
        while slot.active.is_some() {
            slot = self.unit_cv.wait(slot).expect("unit slot");
        }
        slot.active = Some(ActiveUnit {
            id: PAUSE_UNIT,
            dirty: HashSet::new(),
        });
        UnitPause { wal: self }
    }

    /// Delete segments that end strictly before `keep_lsn` (every record
    /// the segment holds is older). Called after a checkpoint record with
    /// that LSN is durable: such segments can never be replayed again. The
    /// segment holding `keep_lsn` — and the current one — always survive.
    pub fn gc_segments(&self, keep_lsn: Lsn) -> StorageResult<()> {
        // A replication source may have pinned a lower floor: segments a
        // subscriber still needs survive the checkpoint's pruning.
        let keep_lsn = keep_lsn.min(self.gc_floor.load(Ordering::Acquire));
        let segs = list_segments(&self.dir)?;
        // A segment is dead if the *next* segment starts at or before
        // `keep_lsn` (so everything in it is < keep_lsn).
        for pair in segs.windows(2) {
            let (_, ref path) = pair[0];
            let (_, ref next_path) = pair[1];
            if segment_first_lsn(next_path).is_some_and(|first| first <= keep_lsn) {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

/// The reserved pseudo-unit id [`Wal::pause_units`] parks in the slot.
const PAUSE_UNIT: u64 = u64::MAX;

/// Guard holding the unit slot closed (see [`Wal::pause_units`]).
pub struct UnitPause<'a> {
    wal: &'a Wal,
}

impl Drop for UnitPause<'_> {
    fn drop(&mut self) {
        self.wal.end_unit(PAUSE_UNIT);
    }
}

/// Read the `first_lsn` field of a segment header, if it is intact.
fn segment_first_lsn(path: &Path) -> Option<Lsn> {
    let mut header = [0u8; SEG_HEADER];
    let mut file = File::open(path).ok()?;
    file.read_exact(&mut header).ok()?;
    (header[..4] == SEG_MAGIC).then(|| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&header[8..16]);
        u64::from_le_bytes(b)
    })
}

/// Create segment file `seq`, writing its header.
fn new_segment(dir: &Path, seq: u64, first_lsn: Lsn) -> StorageResult<(File, u64)> {
    let mut header = Vec::with_capacity(SEG_HEADER);
    header.extend_from_slice(&SEG_MAGIC);
    header.extend_from_slice(&SEG_VERSION.to_le_bytes());
    header.extend_from_slice(&first_lsn.to_le_bytes());
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(segment_path(dir, seq))?;
    match failpoint::check_write("wal.segment", header.len())? {
        WriteAction::Full => file.write_all(&header)?,
        WriteAction::Torn(n) => {
            file.write_all(&header[..n])?;
            return Err(StorageError::Io(std::io::Error::other(
                "failpoint: torn segment header",
            )));
        }
    }
    Ok((file, SEG_HEADER as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("exodus-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn all_record_shapes() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin,
            WalRecord::Commit { ts: 42 },
            WalRecord::Checkpoint { clock: 17 },
            WalRecord::PageImage {
                page_no: 7,
                image: vec![0xA5; PAGE_SIZE],
            },
            WalRecord::HeapInsert {
                file: 1,
                rid: 99,
                len: 128,
            },
            WalRecord::HeapUpdate {
                file: 1,
                old_rid: 99,
                new_rid: 100,
                len: 4,
            },
            WalRecord::HeapDelete { file: 1, rid: 100 },
            WalRecord::BTreeInsert {
                root: 2,
                key_len: 16,
            },
            WalRecord::BTreeDelete {
                root: 2,
                key_len: 16,
            },
            WalRecord::BTreeSplit {
                root: 2,
                left: 3,
                right: 4,
            },
            WalRecord::LobWrite {
                first: 5,
                offset: 0,
                len: 1000,
            },
            WalRecord::LobTruncate { first: 5, len: 10 },
        ]
    }

    #[test]
    fn record_encoding_round_trips() {
        for rec in all_record_shapes() {
            let mut buf = Vec::new();
            rec.encode_into(&mut buf);
            assert_eq!(WalRecord::decode(&buf).as_ref(), Some(&rec), "{rec:?}");
        }
    }

    #[test]
    fn append_read_round_trip() {
        let dir = temp_dir("roundtrip");
        let wal = Wal::open(&dir, Durability::Buffered, DEFAULT_SEGMENT_BYTES).unwrap();
        let recs = all_record_shapes();
        for (i, rec) in recs.iter().enumerate() {
            let lsn = wal.append(i as u64, rec).unwrap();
            assert_eq!(lsn, i as u64 + 1);
        }
        wal.flush().unwrap();
        drop(wal);
        let (entries, tail) = read_log(&dir).unwrap();
        assert!(!tail.torn);
        assert_eq!(entries.len(), recs.len());
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.lsn, i as u64 + 1);
            assert_eq!(e.unit, i as u64);
            assert_eq!(e.rec, recs[i]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_rollover_and_reopen() {
        let dir = temp_dir("rollover");
        // Tiny segments: every couple of appends rolls over.
        let wal = Wal::open(&dir, Durability::Buffered, 128).unwrap();
        for i in 0..50u64 {
            wal.append(
                0,
                &WalRecord::HeapInsert {
                    file: i,
                    rid: i,
                    len: 1,
                },
            )
            .unwrap();
        }
        drop(wal);
        assert!(
            list_segments(&dir).unwrap().len() > 3,
            "expected several segments"
        );
        let (entries, tail) = read_log(&dir).unwrap();
        assert_eq!(entries.len(), 50);
        assert!(!tail.torn);
        // Reopen appends where we left off.
        let wal = Wal::open(&dir, Durability::Buffered, 128).unwrap();
        let lsn = wal.append(0, &WalRecord::Checkpoint { clock: 0 }).unwrap();
        assert_eq!(lsn, 51);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_ignored() {
        let dir = temp_dir("torn");
        let wal = Wal::open(&dir, Durability::Buffered, DEFAULT_SEGMENT_BYTES).unwrap();
        for i in 0..10u64 {
            wal.append(
                1,
                &WalRecord::HeapInsert {
                    file: 0,
                    rid: i,
                    len: 1,
                },
            )
            .unwrap();
        }
        drop(wal);
        // Chop the last frame in half.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 20).unwrap();
        drop(f);
        let (entries, tail) = read_log(&dir).unwrap();
        assert_eq!(entries.len(), 9);
        assert!(tail.torn);
        assert!(tail.torn_bytes > 0);
        // Garbage at the tail is equally rejected (CRC).
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xFF; 64]).unwrap();
        drop(f);
        let (entries, tail) = read_log(&dir).unwrap();
        assert_eq!(entries.len(), 9);
        assert!(tail.torn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_log_reads_empty() {
        let dir = temp_dir("empty");
        let (entries, tail) = read_log(&dir).unwrap();
        assert!(entries.is_empty());
        assert!(!tail.torn);
        assert_eq!(tail.last_lsn, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unit_slot_serializes_units() {
        let dir = temp_dir("units");
        let wal = std::sync::Arc::new(
            Wal::open(&dir, Durability::Buffered, DEFAULT_SEGMENT_BYTES).unwrap(),
        );
        let u1 = wal.begin_unit().unwrap();
        wal.note_write(42);
        assert!(wal.page_gated(42));
        assert!(!wal.page_gated(43));
        assert_eq!(wal.unit_dirty_pages(u1), vec![42]);
        // A second unit waits until the first ends.
        let w2 = wal.clone();
        let t = std::thread::spawn(move || {
            let u2 = w2.begin_unit().unwrap();
            w2.end_unit(u2);
            u2
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        wal.end_unit(u1);
        let u2 = t.join().unwrap();
        assert!(u2 > u1);
        assert!(!wal.page_gated(42));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
