//! Byte encoding utilities.
//!
//! Two families live here:
//!
//! 1. **Record encoding** — a simple length-prefixed writer/reader pair
//!    ([`ByteWriter`] / [`ByteReader`]) used by the upper layers to
//!    serialize EXTRA values into heap records.
//! 2. **Order-preserving key encoding** — encodings whose unsigned
//!    byte-wise comparison matches the natural ordering of the source type,
//!    so the B+-tree can compare keys with `memcmp`. Composite keys are
//!    built by concatenating encoded components (strings are
//!    terminator-escaped so no component is a prefix of another).

use crate::error::{StorageError, StorageResult};

// ---------------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------------

/// Append-only record writer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// New writer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(n),
        }
    }

    /// Finish, yielding the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a LEB128-style varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a varint length followed by the bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Write a varint length followed by UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor over an encoded record.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading from the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt(format!(
                "record truncated: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn get_u16(&mut self) -> StorageResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> StorageResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> StorageResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian i64.
    pub fn get_i64(&mut self) -> StorageResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a little-endian f64.
    pub fn get_f64(&mut self) -> StorageResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a varint.
    pub fn get_varint(&mut self) -> StorageResult<u64> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = self.get_u8()?;
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(StorageError::Corrupt("varint too long".into()));
            }
        }
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> StorageResult<&'a [u8]> {
        let n = self.get_varint()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> StorageResult<&'a str> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|e| StorageError::Corrupt(format!("invalid utf-8 in record: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Order-preserving key encoding
// ---------------------------------------------------------------------------

/// Builder for composite, memcmp-ordered keys.
#[derive(Default)]
pub struct KeyWriter {
    buf: Vec<u8>,
}

impl KeyWriter {
    /// New empty key.
    pub fn new() -> Self {
        KeyWriter { buf: Vec::new() }
    }

    /// Finish, yielding the key bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Encode a signed 64-bit integer: flip the sign bit, big-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf
            .extend_from_slice(&((v as u64) ^ (1u64 << 63)).to_be_bytes());
    }

    /// Encode an unsigned 64-bit integer: big-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Encode an f64 such that byte order matches total numeric order
    /// (the standard IEEE-754 trick; NaNs sort above +inf).
    pub fn put_f64(&mut self, v: f64) {
        let bits = v.to_bits();
        let ordered = if bits & (1u64 << 63) != 0 {
            !bits // negative: flip everything
        } else {
            bits | (1u64 << 63) // positive: flip sign bit
        };
        self.buf.extend_from_slice(&ordered.to_be_bytes());
    }

    /// Encode a boolean (false < true).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Encode a string with `0x00`-byte escaping and a `0x00 0x00`
    /// terminator so that `"a" < "ab"` and no key is a prefix of another.
    pub fn put_str(&mut self, s: &str) {
        for &b in s.as_bytes() {
            if b == 0 {
                self.buf.push(0);
                self.buf.push(0xFF);
            } else {
                self.buf.push(b);
            }
        }
        self.buf.push(0);
        self.buf.push(0);
    }

    /// Append pre-encoded key bytes (e.g. an ADT's own ordering encode).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Decode the next i64 component (inverse of [`KeyWriter::put_i64`]).
pub fn key_decode_i64(buf: &[u8]) -> StorageResult<(i64, &[u8])> {
    if buf.len() < 8 {
        return Err(StorageError::Corrupt("key too short for i64".into()));
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(&buf[..8]);
    Ok(((u64::from_be_bytes(a) ^ (1u64 << 63)) as i64, &buf[8..]))
}

/// Decode the next f64 component (inverse of [`KeyWriter::put_f64`]).
pub fn key_decode_f64(buf: &[u8]) -> StorageResult<(f64, &[u8])> {
    if buf.len() < 8 {
        return Err(StorageError::Corrupt("key too short for f64".into()));
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(&buf[..8]);
    let ordered = u64::from_be_bytes(a);
    let bits = if ordered & (1u64 << 63) != 0 {
        ordered & !(1u64 << 63)
    } else {
        !ordered
    };
    Ok((f64::from_bits(bits), &buf[8..]))
}

/// Decode the next string component (inverse of [`KeyWriter::put_str`]).
pub fn key_decode_str(buf: &[u8]) -> StorageResult<(String, &[u8])> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == 0 {
            if i + 1 >= buf.len() {
                return Err(StorageError::Corrupt("unterminated key string".into()));
            }
            match buf[i + 1] {
                0 => {
                    let s = String::from_utf8(out)
                        .map_err(|e| StorageError::Corrupt(format!("bad utf-8 in key: {e}")))?;
                    return Ok((s, &buf[i + 2..]));
                }
                0xFF => {
                    out.push(0);
                    i += 2;
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "bad key-string escape byte {other:#x}"
                    )))
                }
            }
        } else {
            out.push(buf[i]);
            i += 1;
        }
    }
    Err(StorageError::Corrupt("unterminated key string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEADBEEF);
        w.put_i64(-42);
        w.put_f64(3.25);
        w.put_varint(300);
        w.put_str("exodus");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.25);
        assert_eq!(r.get_varint().unwrap(), 300);
        assert_eq!(r.get_str().unwrap(), "exodus");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut w = ByteWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..4]);
        assert!(r.get_u64().is_err());
    }

    fn enc_i64(v: i64) -> Vec<u8> {
        let mut k = KeyWriter::new();
        k.put_i64(v);
        k.into_bytes()
    }

    fn enc_f64(v: f64) -> Vec<u8> {
        let mut k = KeyWriter::new();
        k.put_f64(v);
        k.into_bytes()
    }

    fn enc_str(v: &str) -> Vec<u8> {
        let mut k = KeyWriter::new();
        k.put_str(v);
        k.into_bytes()
    }

    #[test]
    fn i64_key_order_matches_numeric_order() {
        let vals = [i64::MIN, -1000, -1, 0, 1, 7, 1000, i64::MAX];
        for w in vals.windows(2) {
            assert!(enc_i64(w[0]) < enc_i64(w[1]), "{} !< {}", w[0], w[1]);
        }
        assert_eq!(key_decode_i64(&enc_i64(-99)).unwrap().0, -99);
    }

    #[test]
    fn f64_key_order_matches_numeric_order() {
        let vals = [
            f64::NEG_INFINITY,
            -1e10,
            -1.5,
            -0.0,
            0.0,
            1.5,
            1e10,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            let (a, b) = (enc_f64(w[0]), enc_f64(w[1]));
            assert!(a <= b, "{} !<= {}", w[0], w[1]);
        }
        assert_eq!(key_decode_f64(&enc_f64(-2.5)).unwrap().0, -2.5);
        // -0.0 and 0.0 encode adjacently but distinctly ordered is fine;
        // decode must still round-trip sign-correctly for nonzero values.
        assert_eq!(key_decode_f64(&enc_f64(1e300)).unwrap().0, 1e300);
    }

    #[test]
    fn string_key_order_and_prefix_freedom() {
        assert!(enc_str("a") < enc_str("ab"));
        assert!(enc_str("ab") < enc_str("b"));
        assert!(enc_str("") < enc_str("a"));
        // Embedded NULs survive.
        let with_nul = "a\0b";
        let encoded = enc_str(with_nul);
        let (s, rest) = key_decode_str(&encoded).unwrap();
        assert_eq!(s, with_nul);
        assert!(rest.is_empty());
    }

    #[test]
    fn composite_key_orders_lexicographically() {
        let k = |s: &str, n: i64| {
            let mut w = KeyWriter::new();
            w.put_str(s);
            w.put_i64(n);
            w.into_bytes()
        };
        assert!(k("ann", 5) < k("ann", 6));
        assert!(k("ann", 99) < k("bob", 0));
    }

    proptest::proptest! {
        #[test]
        fn prop_i64_keys_order(a: i64, b: i64) {
            proptest::prop_assert_eq!(a.cmp(&b), enc_i64(a).cmp(&enc_i64(b)));
        }

        #[test]
        fn prop_str_keys_order(a: String, b: String) {
            proptest::prop_assert_eq!(a.as_bytes().cmp(b.as_bytes()), enc_str(&a).cmp(&enc_str(&b)));
        }

        #[test]
        fn prop_varint_round_trip(v: u64) {
            let mut w = ByteWriter::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            proptest::prop_assert_eq!(r.get_varint().unwrap(), v);
        }

        #[test]
        fn prop_f64_keys_order(a: f64, b: f64) {
            // proptest generates non-NaN by default for f64? It can generate
            // NaN via any(); the default strategy excludes NaN and infinities
            // only when using finite ranges — guard explicitly.
            proptest::prop_assume!(!a.is_nan() && !b.is_nan());
            // -0.0 and +0.0 compare equal numerically but encode distinctly.
            proptest::prop_assume!(!(a == 0.0 && b == 0.0));
            let ord = a.partial_cmp(&b).unwrap();
            proptest::prop_assert_eq!(ord, enc_f64(a).cmp(&enc_f64(b)));
        }
    }
}
