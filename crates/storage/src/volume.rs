//! Volumes: the raw page space underneath the buffer pool.
//!
//! A volume stores a linear array of [`crate::page::PAGE_SIZE`]
//! pages, addressed by page number. Two implementations are provided: an
//! in-memory volume (the common case for tests and benchmarks) and a
//! file-backed volume. Page 0 of every volume is reserved for metadata
//! (allocation state and the free-page list head).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::failpoint::{self, WriteAction};
use crate::page::PAGE_SIZE;

/// Abstract page store. Implementations must be internally synchronized;
/// the buffer pool calls them from multiple threads.
pub trait Volume: Send + Sync {
    /// Read page `page_no` into `buf` (exactly `PAGE_SIZE` bytes).
    fn read_page(&self, page_no: u64, buf: &mut [u8]) -> StorageResult<()>;
    /// Write `buf` to page `page_no`.
    fn write_page(&self, page_no: u64, buf: &[u8]) -> StorageResult<()>;
    /// Extend the volume by one page, returning its number.
    fn allocate_page(&self) -> StorageResult<u64>;
    /// Number of pages in the volume (allocated high-water mark).
    fn page_count(&self) -> u64;
    /// Force written pages to stable storage (checkpoint barrier). The
    /// in-memory volume has nothing to force.
    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// A purely in-memory volume.
pub struct MemVolume {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
}

impl MemVolume {
    /// Create an empty in-memory volume (one reserved metadata page).
    pub fn new() -> Self {
        let v = MemVolume {
            pages: Mutex::new(Vec::new()),
        };
        v.allocate_page().expect("in-memory allocation cannot fail");
        v
    }
}

impl Default for MemVolume {
    fn default() -> Self {
        Self::new()
    }
}

impl Volume for MemVolume {
    fn read_page(&self, page_no: u64, buf: &mut [u8]) -> StorageResult<()> {
        let pages = self.pages.lock();
        let page = pages
            .get(page_no as usize)
            .ok_or(StorageError::PageOutOfBounds(page_no))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&self, page_no: u64, buf: &[u8]) -> StorageResult<()> {
        let mut pages = self.pages.lock();
        let page = pages
            .get_mut(page_no as usize)
            .ok_or(StorageError::PageOutOfBounds(page_no))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&self) -> StorageResult<u64> {
        let mut pages = self.pages.lock();
        pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(pages.len() as u64 - 1)
    }

    fn page_count(&self) -> u64 {
        self.pages.lock().len() as u64
    }
}

/// A file-backed volume. Pages live at `page_no * PAGE_SIZE` in the file.
pub struct FileVolume {
    file: Mutex<File>,
    page_count: Mutex<u64>,
}

impl FileVolume {
    /// Open (or create) a volume file. An existing file must be a whole
    /// number of pages long.
    pub fn open(path: &Path) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "volume file length {len} is not a multiple of the page size"
            )));
        }
        let v = FileVolume {
            file: Mutex::new(file),
            page_count: Mutex::new(len / PAGE_SIZE as u64),
        };
        if v.page_count() == 0 {
            v.allocate_page()?; // metadata page
        }
        Ok(v)
    }
}

impl Volume for FileVolume {
    fn read_page(&self, page_no: u64, buf: &mut [u8]) -> StorageResult<()> {
        if page_no >= self.page_count() {
            return Err(StorageError::PageOutOfBounds(page_no));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&self, page_no: u64, buf: &[u8]) -> StorageResult<()> {
        if page_no >= self.page_count() {
            return Err(StorageError::PageOutOfBounds(page_no));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        match failpoint::check_write("volume.write_page", buf.len())? {
            WriteAction::Full => file.write_all(buf)?,
            WriteAction::Torn(n) => {
                file.write_all(&buf[..n])?;
                return Err(StorageError::Io(std::io::Error::other(
                    "failpoint: torn page write",
                )));
            }
        }
        Ok(())
    }

    fn allocate_page(&self) -> StorageResult<u64> {
        let mut count = self.page_count.lock();
        let page_no = *count;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        match failpoint::check_write("volume.allocate", PAGE_SIZE)? {
            WriteAction::Full => file.write_all(&[0u8; PAGE_SIZE])?,
            WriteAction::Torn(n) => {
                file.write_all(&[0u8; PAGE_SIZE][..n])?;
                return Err(StorageError::Io(std::io::Error::other(
                    "failpoint: torn page allocation",
                )));
            }
        }
        *count += 1;
        Ok(page_no)
    }

    fn page_count(&self) -> u64 {
        *self.page_count.lock()
    }

    fn sync(&self) -> StorageResult<()> {
        failpoint::check_write("volume.sync", 0).map(|_| ())?;
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_volume_round_trip() {
        let v = MemVolume::new();
        let p = v.allocate_page().unwrap();
        let mut data = [0u8; PAGE_SIZE];
        data[0] = 0xAB;
        data[PAGE_SIZE - 1] = 0xCD;
        v.write_page(p, &data).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        v.read_page(p, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
    }

    #[test]
    fn mem_volume_out_of_bounds() {
        let v = MemVolume::new();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(
            v.read_page(99, &mut buf),
            Err(StorageError::PageOutOfBounds(99))
        ));
    }

    #[test]
    fn file_volume_round_trip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("exodus-vol-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vol.db");
        let _ = std::fs::remove_file(&path);
        {
            let v = FileVolume::open(&path).unwrap();
            let p = v.allocate_page().unwrap();
            let mut data = [0u8; PAGE_SIZE];
            data[100] = 42;
            v.write_page(p, &data).unwrap();
        }
        {
            let v = FileVolume::open(&path).unwrap();
            assert_eq!(v.page_count(), 2);
            let mut out = [0u8; PAGE_SIZE];
            v.read_page(1, &mut out).unwrap();
            assert_eq!(out[100], 42);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
