//! A page-based B+-tree access method.
//!
//! Keys are arbitrary byte strings compared with `memcmp` — the
//! order-preserving encodings in [`crate::encoding`] make this match the
//! source types' natural order, including for composite keys and
//! ADT-supplied orderings (the table-driven access-method extensibility the
//! paper calls for). Values are `u64` (packed record ids or OIDs).
//!
//! Duplicate keys are allowed unless the index is used in unique mode.
//! Leaves are chained through the page `next`/`prev` links, so range scans
//! walk the leaf level without touching interior nodes. Deletion is lazy
//! (no merging); the tree is identified by a fixed root page, with root
//! splits relocating the old root's content so the root page number never
//! changes.
//!
//! Node layout (within the page body, past the common header):
//!
//! * leaf: `count:u16` then `count` × (`klen:u16`, key bytes, `val:u64`)
//! * internal: `count:u16` (number of separators), `child0:u64`, then
//!   `count` × (`klen:u16`, key bytes, `child:u64`)

use std::ops::Bound;
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{PageKind, PageView, SlottedPage, NO_PAGE, PAGE_SIZE};
use crate::wal::WalRecord;

/// Maximum key length accepted by the tree (must leave room for several
/// entries per node).
pub const MAX_KEY: usize = 1024;

const BODY: usize = PAGE_SIZE - crate::page::HEADER_SIZE;

/// Handle to a B+-tree, identified by its root page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTree {
    root: u64,
}

#[derive(Debug, Clone)]
struct Leaf {
    entries: Vec<(Vec<u8>, u64)>,
}

#[derive(Debug, Clone)]
struct Internal {
    keys: Vec<Vec<u8>>,
    children: Vec<u64>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

fn decode_node(kind: PageKind, body: &[u8]) -> StorageResult<Node> {
    let mut pos = 0usize;
    let take_u16 = |pos: &mut usize| -> StorageResult<u16> {
        if *pos + 2 > body.len() {
            return Err(StorageError::Corrupt("btree node truncated".into()));
        }
        let v = u16::from_le_bytes([body[*pos], body[*pos + 1]]);
        *pos += 2;
        Ok(v)
    };
    let take_u64 = |pos: &mut usize| -> StorageResult<u64> {
        if *pos + 8 > body.len() {
            return Err(StorageError::Corrupt("btree node truncated".into()));
        }
        let mut a = [0u8; 8];
        a.copy_from_slice(&body[*pos..*pos + 8]);
        *pos += 8;
        Ok(u64::from_le_bytes(a))
    };
    let take_key = |pos: &mut usize| -> StorageResult<Vec<u8>> {
        let klen = if *pos + 2 <= body.len() {
            let v = u16::from_le_bytes([body[*pos], body[*pos + 1]]) as usize;
            *pos += 2;
            v
        } else {
            return Err(StorageError::Corrupt("btree key truncated".into()));
        };
        if *pos + klen > body.len() {
            return Err(StorageError::Corrupt("btree key truncated".into()));
        }
        let k = body[*pos..*pos + klen].to_vec();
        *pos += klen;
        Ok(k)
    };
    match kind {
        PageKind::BTreeLeaf => {
            let count = take_u16(&mut pos)? as usize;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let k = take_key(&mut pos)?;
                let v = take_u64(&mut pos)?;
                entries.push((k, v));
            }
            Ok(Node::Leaf(Leaf { entries }))
        }
        PageKind::BTreeInternal => {
            let count = take_u16(&mut pos)? as usize;
            let mut children = Vec::with_capacity(count + 1);
            children.push(take_u64(&mut pos)?);
            let mut keys = Vec::with_capacity(count);
            for _ in 0..count {
                keys.push(take_key(&mut pos)?);
                children.push(take_u64(&mut pos)?);
            }
            Ok(Node::Internal(Internal { keys, children }))
        }
        other => Err(StorageError::Corrupt(format!(
            "page is not a btree node (kind {other:?})"
        ))),
    }
}

fn leaf_encoded_size(l: &Leaf) -> usize {
    2 + l
        .entries
        .iter()
        .map(|(k, _)| 2 + k.len() + 8)
        .sum::<usize>()
}

fn internal_encoded_size(n: &Internal) -> usize {
    2 + 8 + n.keys.iter().map(|k| 2 + k.len() + 8).sum::<usize>()
}

fn encode_leaf(l: &Leaf, body: &mut [u8]) {
    let mut pos = 0usize;
    body[pos..pos + 2].copy_from_slice(&(l.entries.len() as u16).to_le_bytes());
    pos += 2;
    for (k, v) in &l.entries {
        body[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
        pos += 2;
        body[pos..pos + k.len()].copy_from_slice(k);
        pos += k.len();
        body[pos..pos + 8].copy_from_slice(&v.to_le_bytes());
        pos += 8;
    }
}

fn encode_internal(n: &Internal, body: &mut [u8]) {
    let mut pos = 0usize;
    body[pos..pos + 2].copy_from_slice(&(n.keys.len() as u16).to_le_bytes());
    pos += 2;
    body[pos..pos + 8].copy_from_slice(&n.children[0].to_le_bytes());
    pos += 8;
    for (k, c) in n.keys.iter().zip(n.children.iter().skip(1)) {
        body[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
        pos += 2;
        body[pos..pos + k.len()].copy_from_slice(k);
        pos += k.len();
        body[pos..pos + 8].copy_from_slice(&c.to_le_bytes());
        pos += 8;
    }
}

/// Result of inserting into a subtree: a split produces the separator key
/// and the new right sibling's page number.
type SplitResult = Option<(Vec<u8>, u64)>;

impl BTree {
    /// Create an empty tree.
    pub fn create(pool: &Arc<BufferPool>) -> StorageResult<BTree> {
        let root = pool.allocate()?;
        root.with_write(|buf| {
            let mut p = SlottedPage::format(buf, PageKind::BTreeLeaf);
            encode_leaf(
                &Leaf {
                    entries: Vec::new(),
                },
                p.body_mut(),
            );
        });
        Ok(BTree {
            root: root.page_no(),
        })
    }

    /// Open an existing tree by root page number.
    pub fn open(root: u64) -> BTree {
        BTree { root }
    }

    /// The root page number (persist this to reopen).
    pub fn root(&self) -> u64 {
        self.root
    }

    fn read_node(&self, pool: &Arc<BufferPool>, page_no: u64) -> StorageResult<Node> {
        let page = pool.pin(page_no)?;
        page.with_read(|buf| {
            let v = PageView::new(buf);
            decode_node(v.kind(), v.body())
        })
    }

    /// Insert `(key, val)`. In unique mode an existing equal key is a
    /// [`StorageError::DuplicateKey`] error.
    pub fn insert(
        &self,
        pool: &Arc<BufferPool>,
        key: &[u8],
        val: u64,
        unique: bool,
    ) -> StorageResult<()> {
        if key.len() > MAX_KEY {
            return Err(StorageError::RecordTooLarge(key.len()));
        }
        if unique && !self.lookup(pool, key)?.is_empty() {
            return Err(StorageError::DuplicateKey);
        }
        if let Some((sep, right)) = self.insert_rec(pool, self.root, key, val)? {
            self.split_root(pool, sep, right)?;
        }
        pool.log_op(&WalRecord::BTreeInsert {
            root: self.root,
            key_len: key.len() as u32,
        })
    }

    fn insert_rec(
        &self,
        pool: &Arc<BufferPool>,
        page_no: u64,
        key: &[u8],
        val: u64,
    ) -> StorageResult<SplitResult> {
        match self.read_node(pool, page_no)? {
            Node::Leaf(mut leaf) => {
                // Upper-bound position: after existing equal keys.
                let pos = leaf.entries.partition_point(|(k, _)| k.as_slice() <= key);
                leaf.entries.insert(pos, (key.to_vec(), val));
                if leaf_encoded_size(&leaf) <= BODY {
                    let page = pool.pin(page_no)?;
                    page.with_write(|buf| encode_leaf(&leaf, SlottedPage::new(buf).body_mut()));
                    return Ok(None);
                }
                // Split the leaf.
                let mid = leaf.entries.len() / 2;
                let right_entries = leaf.entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let page = pool.pin(page_no)?;
                let old_next = page.with_read(|buf| PageView::new(buf).next());
                let right_page = pool.allocate()?;
                let right_no = right_page.page_no();
                right_page.with_write(|buf| {
                    let mut p = SlottedPage::format(buf, PageKind::BTreeLeaf);
                    p.set_prev(page_no);
                    p.set_next(old_next);
                    encode_leaf(
                        &Leaf {
                            entries: right_entries,
                        },
                        p.body_mut(),
                    );
                });
                if old_next != NO_PAGE {
                    let nxt = pool.pin(old_next)?;
                    nxt.with_write(|buf| SlottedPage::new(buf).set_prev(right_no));
                }
                page.with_write(|buf| {
                    let mut p = SlottedPage::new(buf);
                    p.set_next(right_no);
                    encode_leaf(&leaf, p.body_mut());
                });
                pool.log_op(&WalRecord::BTreeSplit {
                    root: self.root,
                    left: page_no,
                    right: right_no,
                })?;
                Ok(Some((sep, right_no)))
            }
            Node::Internal(mut node) => {
                let idx = node.keys.partition_point(|k| k.as_slice() <= key);
                let child = node.children[idx];
                let Some((sep, right)) = self.insert_rec(pool, child, key, val)? else {
                    return Ok(None);
                };
                node.keys.insert(idx, sep);
                node.children.insert(idx + 1, right);
                if internal_encoded_size(&node) <= BODY {
                    let page = pool.pin(page_no)?;
                    page.with_write(|buf| encode_internal(&node, SlottedPage::new(buf).body_mut()));
                    return Ok(None);
                }
                // Split the internal node: middle key moves up.
                let mid = node.keys.len() / 2;
                let up_key = node.keys[mid].clone();
                let right_keys = node.keys.split_off(mid + 1);
                node.keys.pop(); // remove up_key from the left node
                let right_children = node.children.split_off(mid + 1);
                let right_page = pool.allocate()?;
                let right_no = right_page.page_no();
                right_page.with_write(|buf| {
                    let mut p = SlottedPage::format(buf, PageKind::BTreeInternal);
                    encode_internal(
                        &Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                        p.body_mut(),
                    );
                });
                let page = pool.pin(page_no)?;
                page.with_write(|buf| encode_internal(&node, SlottedPage::new(buf).body_mut()));
                pool.log_op(&WalRecord::BTreeSplit {
                    root: self.root,
                    left: page_no,
                    right: right_no,
                })?;
                Ok(Some((up_key, right_no)))
            }
        }
    }

    /// The root page split: move its content to a fresh page and turn the
    /// root into an internal node over the two halves, so the tree keeps a
    /// stable root page number.
    fn split_root(&self, pool: &Arc<BufferPool>, sep: Vec<u8>, right: u64) -> StorageResult<()> {
        let root = pool.pin(self.root)?;
        let (kind, body, next) = root.with_read(|buf| {
            let v = PageView::new(buf);
            (v.kind(), v.body().to_vec(), v.next())
        });
        let left_page = pool.allocate()?;
        let left_no = left_page.page_no();
        left_page.with_write(|buf| {
            let mut p = SlottedPage::format(buf, kind);
            p.body_mut().copy_from_slice(&body);
            if kind == PageKind::BTreeLeaf {
                p.set_next(next);
            }
        });
        if kind == PageKind::BTreeLeaf && next != NO_PAGE {
            // `next` is the right sibling produced by the leaf split.
            let nxt = pool.pin(next)?;
            nxt.with_write(|buf| SlottedPage::new(buf).set_prev(left_no));
        }
        root.with_write(|buf| {
            let mut p = SlottedPage::format(buf, PageKind::BTreeInternal);
            encode_internal(
                &Internal {
                    keys: vec![sep],
                    children: vec![left_no, right],
                },
                p.body_mut(),
            );
        });
        pool.log_op(&WalRecord::BTreeSplit {
            root: self.root,
            left: left_no,
            right,
        })
    }

    /// Page number of the leftmost leaf whose range may contain `key`.
    fn descend(&self, pool: &Arc<BufferPool>, key: &[u8]) -> StorageResult<u64> {
        let mut page_no = self.root;
        loop {
            match self.read_node(pool, page_no)? {
                Node::Leaf(_) => return Ok(page_no),
                Node::Internal(node) => {
                    let idx = node.keys.partition_point(|k| k.as_slice() < key);
                    page_no = node.children[idx];
                }
            }
        }
    }

    /// Leftmost leaf of the whole tree.
    fn leftmost_leaf(&self, pool: &Arc<BufferPool>) -> StorageResult<u64> {
        let mut page_no = self.root;
        loop {
            match self.read_node(pool, page_no)? {
                Node::Leaf(_) => return Ok(page_no),
                Node::Internal(node) => page_no = node.children[0],
            }
        }
    }

    /// All values stored under exactly `key`.
    pub fn lookup(&self, pool: &Arc<BufferPool>, key: &[u8]) -> StorageResult<Vec<u64>> {
        let mut out = Vec::new();
        let mut page_no = self.descend(pool, key)?;
        loop {
            let Node::Leaf(leaf) = self.read_node(pool, page_no)? else {
                return Err(StorageError::Corrupt("descend did not reach a leaf".into()));
            };
            // Collect matches; stop at the first key past the target.
            // Duplicate runs may spill across leaves, so continue down the
            // chain until a greater key (or the chain end) is seen.
            for (k, v) in &leaf.entries {
                match k.as_slice().cmp(key) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => out.push(*v),
                    std::cmp::Ordering::Greater => return Ok(out),
                }
            }
            let page = pool.pin(page_no)?;
            let next = page.with_read(|buf| PageView::new(buf).next());
            if next == NO_PAGE {
                return Ok(out);
            }
            page_no = next;
        }
    }

    /// Delete one `(key, val)` pair; returns whether it was found.
    pub fn delete(&self, pool: &Arc<BufferPool>, key: &[u8], val: u64) -> StorageResult<bool> {
        let mut page_no = self.descend(pool, key)?;
        loop {
            let Node::Leaf(mut leaf) = self.read_node(pool, page_no)? else {
                return Err(StorageError::Corrupt("descend did not reach a leaf".into()));
            };
            if let Some(pos) = leaf
                .entries
                .iter()
                .position(|(k, v)| k.as_slice() == key && *v == val)
            {
                leaf.entries.remove(pos);
                let page = pool.pin(page_no)?;
                page.with_write(|buf| encode_leaf(&leaf, SlottedPage::new(buf).body_mut()));
                pool.log_op(&WalRecord::BTreeDelete {
                    root: self.root,
                    key_len: key.len() as u32,
                })?;
                return Ok(true);
            }
            // Stop once entries exceed the key.
            if leaf.entries.iter().any(|(k, _)| k.as_slice() > key) {
                return Ok(false);
            }
            let page = pool.pin(page_no)?;
            let next = page.with_read(|buf| PageView::new(buf).next());
            if next == NO_PAGE {
                return Ok(false);
            }
            page_no = next;
        }
    }

    /// Range scan over `[lower, upper]` bounds (byte-wise key order).
    pub fn scan(
        &self,
        pool: Arc<BufferPool>,
        lower: Bound<Vec<u8>>,
        upper: Bound<Vec<u8>>,
    ) -> BTreeScan {
        BTreeScan {
            tree: *self,
            pool,
            lower,
            upper,
            state: ScanState::NotStarted,
            start_at: None,
            stop_after: None,
        }
    }

    /// Split a bounded scan into at most `k` scans over contiguous runs
    /// of the in-range leaf chain (morsel sources for parallel
    /// execution). Concatenating the partitions in order reproduces the
    /// full bounded scan's entry order. Fewer than `k` scans come back
    /// when the range touches fewer leaves; an empty range yields none.
    pub fn partitions(
        &self,
        pool: &Arc<BufferPool>,
        k: usize,
        lower: Bound<Vec<u8>>,
        upper: Bound<Vec<u8>>,
    ) -> StorageResult<Vec<BTreeScan>> {
        // Collect the leaf chain from the lower-bound leaf up to the
        // first leaf wholly past the upper bound.
        let mut leaves = Vec::new();
        let mut page_no = match &lower {
            Bound::Unbounded => self.leftmost_leaf(pool)?,
            Bound::Included(key) | Bound::Excluded(key) => self.descend(pool, key)?,
        };
        loop {
            let Node::Leaf(leaf) = self.read_node(pool, page_no)? else {
                return Err(StorageError::Corrupt(
                    "leaf chain reached a non-leaf".into(),
                ));
            };
            let min_key = leaf.entries.first().map(|(k, _)| k.as_slice());
            let wholly_past = match (&upper, min_key) {
                (Bound::Included(u), Some(mk)) => mk > u.as_slice(),
                (Bound::Excluded(u), Some(mk)) => mk >= u.as_slice(),
                _ => false,
            };
            if wholly_past {
                break;
            }
            leaves.push(page_no);
            let page = pool.pin(page_no)?;
            let next = page.with_read(|buf| PageView::new(buf).next());
            if next == NO_PAGE {
                break;
            }
            page_no = next;
        }
        if leaves.is_empty() {
            return Ok(Vec::new());
        }
        let per = leaves.len().div_ceil(k.max(1));
        Ok(leaves
            .chunks(per)
            .map(|run| BTreeScan {
                tree: *self,
                pool: pool.clone(),
                lower: lower.clone(),
                upper: upper.clone(),
                state: ScanState::NotStarted,
                start_at: Some(run[0]),
                stop_after: Some(*run.last().expect("chunks are non-empty")),
            })
            .collect())
    }

    /// Total number of entries (walks the leaf level).
    pub fn len(&self, pool: &Arc<BufferPool>) -> StorageResult<usize> {
        let mut n = 0usize;
        let mut page_no = self.leftmost_leaf(pool)?;
        loop {
            let Node::Leaf(leaf) = self.read_node(pool, page_no)? else {
                return Err(StorageError::Corrupt(
                    "leaf chain reached a non-leaf".into(),
                ));
            };
            n += leaf.entries.len();
            let page = pool.pin(page_no)?;
            let next = page.with_read(|buf| PageView::new(buf).next());
            if next == NO_PAGE {
                return Ok(n);
            }
            page_no = next;
        }
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self, pool: &Arc<BufferPool>) -> StorageResult<bool> {
        Ok(self.len(pool)? == 0)
    }
}

enum ScanState {
    NotStarted,
    /// Buffered entries of the current leaf plus the next leaf's page no.
    InLeaf {
        entries: std::vec::IntoIter<(Vec<u8>, u64)>,
        next: u64,
    },
    Done,
}

/// Iterator over `(key, value)` pairs in key order.
pub struct BTreeScan {
    tree: BTree,
    pool: Arc<BufferPool>,
    lower: Bound<Vec<u8>>,
    upper: Bound<Vec<u8>>,
    state: ScanState,
    /// Partitioned scans start at this leaf instead of descending.
    start_at: Option<u64>,
    /// Partitioned scans stop following the chain after this leaf.
    stop_after: Option<u64>,
}

impl BTreeScan {
    fn load_leaf(&mut self, page_no: u64) -> StorageResult<()> {
        let Node::Leaf(leaf) = self.tree.read_node(&self.pool, page_no)? else {
            return Err(StorageError::Corrupt("scan reached a non-leaf".into()));
        };
        let next = if self.stop_after == Some(page_no) {
            NO_PAGE
        } else {
            let page = self.pool.pin(page_no)?;
            page.with_read(|buf| PageView::new(buf).next())
        };
        self.state = ScanState::InLeaf {
            entries: leaf.entries.into_iter(),
            next,
        };
        Ok(())
    }

    fn start(&mut self) -> StorageResult<()> {
        if let Some(first) = self.start_at {
            return self.load_leaf(first);
        }
        let first = match &self.lower {
            Bound::Unbounded => self.tree.leftmost_leaf(&self.pool)?,
            Bound::Included(k) | Bound::Excluded(k) => {
                let k = k.clone();
                self.tree.descend(&self.pool, &k)?
            }
        };
        self.load_leaf(first)
    }

    fn below_lower(&self, key: &[u8]) -> bool {
        match &self.lower {
            Bound::Unbounded => false,
            Bound::Included(l) => key < l.as_slice(),
            Bound::Excluded(l) => key <= l.as_slice(),
        }
    }

    fn above_upper(&self, key: &[u8]) -> bool {
        match &self.upper {
            Bound::Unbounded => false,
            Bound::Included(u) => key > u.as_slice(),
            Bound::Excluded(u) => key >= u.as_slice(),
        }
    }
}

impl BTreeScan {
    /// Drain up to `n` in-bounds entries into a batch, draining whole
    /// buffered leaves at a time. Returns an empty vector when the scan
    /// is exhausted.
    pub fn next_batch(&mut self, n: usize) -> StorageResult<Vec<(Vec<u8>, u64)>> {
        let mut out: Vec<(Vec<u8>, u64)> = Vec::new();
        if n == 0 {
            return Ok(out);
        }
        loop {
            match &mut self.state {
                ScanState::Done => return Ok(out),
                ScanState::NotStarted => {
                    if let Err(e) = self.start() {
                        self.state = ScanState::Done;
                        return Err(e);
                    }
                }
                ScanState::InLeaf { entries, next } => {
                    let next = *next;
                    let mut past_upper = false;
                    for (k, v) in entries.by_ref() {
                        if match &self.lower {
                            Bound::Unbounded => false,
                            Bound::Included(l) => k < *l,
                            Bound::Excluded(l) => k <= *l,
                        } {
                            continue;
                        }
                        if match &self.upper {
                            Bound::Unbounded => false,
                            Bound::Included(u) => k > *u,
                            Bound::Excluded(u) => k >= *u,
                        } {
                            past_upper = true;
                            break;
                        }
                        out.push((k, v));
                        if out.len() == n {
                            return Ok(out);
                        }
                    }
                    if past_upper || next == NO_PAGE {
                        self.state = ScanState::Done;
                        return Ok(out);
                    }
                    if let Err(e) = self.load_leaf(next) {
                        self.state = ScanState::Done;
                        return Err(e);
                    }
                }
            }
        }
    }
}

impl Iterator for BTreeScan {
    type Item = StorageResult<(Vec<u8>, u64)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match &mut self.state {
                ScanState::Done => return None,
                ScanState::NotStarted => {
                    if let Err(e) = self.start() {
                        self.state = ScanState::Done;
                        return Some(Err(e));
                    }
                }
                ScanState::InLeaf { entries, next } => {
                    let next = *next;
                    match entries.next() {
                        Some((k, v)) => {
                            if self.below_lower(&k) {
                                continue;
                            }
                            if self.above_upper(&k) {
                                self.state = ScanState::Done;
                                return None;
                            }
                            return Some(Ok((k, v)));
                        }
                        None => {
                            if next == NO_PAGE {
                                self.state = ScanState::Done;
                                return None;
                            }
                            if let Err(e) = self.load_leaf(next) {
                                self.state = ScanState::Done;
                                return Some(Err(e));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::KeyWriter;
    use crate::volume::MemVolume;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Box::new(MemVolume::new()), 256))
    }

    fn ikey(v: i64) -> Vec<u8> {
        let mut k = KeyWriter::new();
        k.put_i64(v);
        k.into_bytes()
    }

    #[test]
    fn insert_lookup_small() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        for i in 0..50 {
            t.insert(&pool, &ikey(i), i as u64 * 10, false).unwrap();
        }
        for i in 0..50 {
            assert_eq!(t.lookup(&pool, &ikey(i)).unwrap(), vec![i as u64 * 10]);
        }
        assert!(t.lookup(&pool, &ikey(999)).unwrap().is_empty());
        assert_eq!(t.len(&pool).unwrap(), 50);
    }

    #[test]
    fn batch_scan_matches_iterator() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        for i in 0..2000 {
            t.insert(&pool, &ikey(i), i as u64, false).unwrap();
        }
        let bounds = [
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(ikey(100)), Bound::Excluded(ikey(1500))),
            (Bound::Excluded(ikey(0)), Bound::Included(ikey(0))),
        ];
        for (lo, hi) in bounds {
            let want: Vec<_> = t
                .scan(pool.clone(), lo.clone(), hi.clone())
                .map(|r| r.unwrap())
                .collect();
            for n in [1usize, 64, 4096] {
                let mut s = t.scan(pool.clone(), lo.clone(), hi.clone());
                let mut got = Vec::new();
                loop {
                    let b = s.next_batch(n).unwrap();
                    if b.is_empty() {
                        break;
                    }
                    assert!(b.len() <= n);
                    got.extend(b);
                }
                assert_eq!(got, want, "batch size {n}");
            }
        }
    }

    #[test]
    fn partitions_cover_range_in_order() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        for i in 0..2000 {
            t.insert(&pool, &ikey(i), i as u64, false).unwrap();
        }
        let bounds = [
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(ikey(100)), Bound::Excluded(ikey(1500))),
            (Bound::Excluded(ikey(1999)), Bound::Unbounded),
        ];
        for (lo, hi) in bounds {
            let want: Vec<_> = t
                .scan(pool.clone(), lo.clone(), hi.clone())
                .map(|r| r.unwrap())
                .collect();
            for k in [1usize, 3, 7, 1000] {
                let parts = t.partitions(&pool, k, lo.clone(), hi.clone()).unwrap();
                assert!(parts.len() <= k, "at most k partitions");
                let mut got = Vec::new();
                for mut part in parts {
                    loop {
                        let b = part.next_batch(64).unwrap();
                        if b.is_empty() {
                            break;
                        }
                        got.extend(b);
                    }
                }
                assert_eq!(got, want, "k={k} bounds {lo:?}..{hi:?}");
            }
        }
    }

    #[test]
    fn partitions_empty_tree() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        let parts = t
            .partitions(&pool, 4, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        // The empty root leaf forms at most one partition, which yields
        // no entries.
        assert!(parts.len() <= 1);
        for mut p in parts {
            assert!(p.next_batch(16).unwrap().is_empty());
        }
    }

    #[test]
    fn many_inserts_force_splits_sorted_scan() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        // Insert in a scrambled order; enough volume for multi-level splits.
        let n: i64 = 5000;
        let mut order: Vec<i64> = (0..n).collect();
        // Deterministic shuffle.
        for i in 0..order.len() {
            let j = (i * 2654435761) % order.len();
            order.swap(i, j);
        }
        for &i in &order {
            t.insert(&pool, &ikey(i), i as u64, false).unwrap();
        }
        let got: Vec<i64> = t
            .scan(pool.clone(), Bound::Unbounded, Bound::Unbounded)
            .map(|r| r.unwrap().1 as i64)
            .collect();
        assert_eq!(got.len(), n as usize);
        let expect: Vec<i64> = (0..n).collect();
        assert_eq!(got, expect, "scan must be in key order after splits");
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        for v in 0..200u64 {
            t.insert(&pool, &ikey(7), v, false).unwrap();
            t.insert(&pool, &ikey(8), v + 1000, false).unwrap();
        }
        let mut vals = t.lookup(&pool, &ikey(7)).unwrap();
        vals.sort_unstable();
        assert_eq!(vals, (0..200).collect::<Vec<u64>>());
    }

    #[test]
    fn unique_mode_rejects_duplicates() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        t.insert(&pool, &ikey(1), 10, true).unwrap();
        assert!(matches!(
            t.insert(&pool, &ikey(1), 11, true),
            Err(StorageError::DuplicateKey)
        ));
        // Different key still fine.
        t.insert(&pool, &ikey(2), 20, true).unwrap();
    }

    #[test]
    fn delete_specific_pair() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        t.insert(&pool, &ikey(5), 50, false).unwrap();
        t.insert(&pool, &ikey(5), 51, false).unwrap();
        assert!(t.delete(&pool, &ikey(5), 50).unwrap());
        assert_eq!(t.lookup(&pool, &ikey(5)).unwrap(), vec![51]);
        assert!(!t.delete(&pool, &ikey(5), 50).unwrap(), "already gone");
        assert!(!t.delete(&pool, &ikey(404), 1).unwrap());
    }

    #[test]
    fn range_scan_bounds() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        for i in 0..100 {
            t.insert(&pool, &ikey(i), i as u64, false).unwrap();
        }
        let got: Vec<u64> = t
            .scan(
                pool.clone(),
                Bound::Included(ikey(10)),
                Bound::Excluded(ikey(20)),
            )
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(got, (10..20).collect::<Vec<u64>>());
        let got: Vec<u64> = t
            .scan(pool.clone(), Bound::Excluded(ikey(95)), Bound::Unbounded)
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(got, (96..100).collect::<Vec<u64>>());
    }

    #[test]
    fn string_keys() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        let names = ["mercury", "venus", "earth", "mars", "jupiter"];
        for (i, n) in names.iter().enumerate() {
            let mut k = KeyWriter::new();
            k.put_str(n);
            t.insert(&pool, &k.into_bytes(), i as u64, true).unwrap();
        }
        let got: Vec<u64> = t
            .scan(pool.clone(), Bound::Unbounded, Bound::Unbounded)
            .map(|r| r.unwrap().1)
            .collect();
        // Alphabetical: earth jupiter mars mercury venus.
        assert_eq!(got, vec![2, 4, 3, 0, 1]);
    }

    #[test]
    fn oversized_key_rejected() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        assert!(t.insert(&pool, &vec![0u8; MAX_KEY + 1], 0, false).is_err());
    }

    #[test]
    fn interleaved_insert_delete_stress() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        let mut live = std::collections::BTreeMap::new();
        for round in 0..3000i64 {
            let k = round % 500;
            if round % 3 == 2 {
                let expect = live.remove(&k).is_some();
                assert_eq!(t.delete(&pool, &ikey(k), k as u64).unwrap(), expect);
            } else if let std::collections::btree_map::Entry::Vacant(e) = live.entry(k) {
                t.insert(&pool, &ikey(k), k as u64, false).unwrap();
                e.insert(());
            }
        }
        let got: Vec<i64> = t
            .scan(pool.clone(), Bound::Unbounded, Bound::Unbounded)
            .map(|r| r.unwrap().1 as i64)
            .collect();
        let expect: Vec<i64> = live.keys().copied().collect();
        assert_eq!(got, expect);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_matches_btreemap(ops in proptest::collection::vec((0i64..200, proptest::bool::ANY), 1..400)) {
            let pool = pool();
            let t = BTree::create(&pool).unwrap();
            let mut model: std::collections::BTreeMap<i64, u64> = Default::default();
            for (k, is_insert) in ops {
                if is_insert {
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        t.insert(&pool, &ikey(k), k as u64, true).unwrap();
                        e.insert(k as u64);
                    }
                } else if model.remove(&k).is_some() {
                    proptest::prop_assert!(t.delete(&pool, &ikey(k), k as u64).unwrap());
                }
            }
            let got: Vec<u64> = t.scan(pool.clone(), Bound::Unbounded, Bound::Unbounded)
                .map(|r| r.unwrap().1).collect();
            let expect: Vec<u64> = model.values().copied().collect();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
