//! Observability for the EXTRA/EXCESS engine: a metrics registry and
//! structured tracing spans.
//!
//! This crate sits below every other engine crate (it depends on
//! nothing), so storage, execution, and session layers can all register
//! instruments on one [`MetricsRegistry`] and emit spans to one
//! [`Tracer`] without dependency cycles.
//!
//! Two design rules keep the enabled cost negligible and the disabled
//! cost zero:
//!
//! 1. **Hot paths touch plain atomics, never the registry.** An
//!    instrument is either an owned handle ([`Counter`], [`Gauge`],
//!    [`Histogram`] — a few relaxed atomic adds per event) or a
//!    *callback* over counters the subsystem maintains anyway (the
//!    buffer pool's hit/miss atomics, the WAL's append counter). The
//!    registry is only consulted at [`MetricsRegistry::snapshot`] time.
//! 2. **Snapshots are deterministic.** Samples are sorted by metric
//!    name, so two snapshots of identical workloads compare equal and
//!    the JSON/Prometheus encodings are byte-stable.
//!
//! The tracing half mirrors the same philosophy: [`RingTracer`] records
//! completed [`Span`]s into a fixed-size ring under a mutex taken once
//! per span (statement granularity, not per row), and
//! [`SlowQueryLog`] retains the most recent over-threshold statements
//! with an arbitrary caller-supplied payload (the session layer stores
//! the query's execution profile there).

#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    validate_exposition, Counter, Gauge, Histogram, MetricSample, MetricsRegistry, MetricsSnapshot,
    SampleValue, COUNT_BUCKETS, LATENCY_BUCKETS_NS,
};
pub use trace::{RingTracer, SlowQuery, SlowQueryLog, Span, SpanGuard, TraceConfig, Tracer};
