//! Structured tracing spans and the slow-query log.
//!
//! A [`Span`] is a named, timed region of work with an optional parent,
//! forming per-statement trees (`statement` → `parse` → … → `commit`).
//! [`RingTracer`] keeps the most recent completed spans in a fixed-size
//! ring; parentage is tracked through a thread-local stack so callers
//! never thread span ids by hand.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed, timed region of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique id within the tracer.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static name (`"parse"`, `"execute"`, `"wal_commit"`, ...).
    pub name: &'static str,
    /// Free-form detail (the statement text, a unit id, ...).
    pub detail: String,
    /// Start time in nanoseconds relative to the tracer's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub elapsed_ns: u64,
}

/// A sink for completed spans.
pub trait Tracer: Send + Sync {
    /// Record one completed span.
    fn record(&self, span: Span);
}

thread_local! {
    /// Stack of open span ids on this thread (innermost last).
    static PARENTS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A [`Tracer`] that retains the most recent spans in a bounded ring
/// buffer. Spans are recorded on completion (guard drop), so the ring
/// holds finished work in completion order — children before parents.
pub struct RingTracer {
    epoch: Instant,
    next_id: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<Span>>,
}

impl RingTracer {
    /// A tracer retaining up to `capacity` completed spans.
    pub fn new(capacity: usize) -> RingTracer {
        RingTracer {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Open a span; it is recorded when the returned guard drops.
    /// Nesting is tracked per thread: a span opened while another is
    /// open on the same thread becomes its child.
    pub fn start(self: &Arc<Self>, name: &'static str, detail: impl Into<String>) -> SpanGuard {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = PARENTS.with(|p| {
            let mut p = p.borrow_mut();
            let parent = p.last().copied();
            p.push(id);
            parent
        });
        SpanGuard {
            tracer: self.clone(),
            id,
            parent,
            name,
            detail: detail.into(),
            started: Instant::now(),
        }
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.ring
            .lock()
            .expect("tracer lock")
            .iter()
            .cloned()
            .collect()
    }

    fn epoch(&self) -> Instant {
        self.epoch
    }
}

impl Tracer for RingTracer {
    fn record(&self, span: Span) {
        let mut ring = self.ring.lock().expect("tracer lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }
}

/// RAII guard for an open span: records the [`Span`] into its tracer on
/// drop.
pub struct SpanGuard {
    tracer: Arc<RingTracer>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    detail: String,
    started: Instant,
}

impl SpanGuard {
    /// This span's id (usable as an explicit parent reference).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        PARENTS.with(|p| {
            let mut p = p.borrow_mut();
            // Pop our own id; under panic-unwind an inner guard may
            // already have cleaned up, so search rather than assume LIFO.
            if let Some(i) = p.iter().rposition(|&x| x == self.id) {
                p.remove(i);
            }
        });
        let span = Span {
            id: self.id,
            parent: self.parent,
            name: self.name,
            detail: std::mem::take(&mut self.detail),
            start_ns: self.started.duration_since(self.tracer.epoch()).as_nanos() as u64,
            elapsed_ns: self.started.elapsed().as_nanos() as u64,
        };
        self.tracer.record(span);
    }
}

/// Configuration for tracing and the slow-query log, passed to the
/// session layer's builder.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// How many completed spans the ring retains.
    pub span_capacity: usize,
    /// How many slow queries the log retains.
    pub slow_query_capacity: usize,
    /// Statements at or above this duration enter the slow-query log.
    /// Zero logs every statement.
    pub slow_query_threshold_ns: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            span_capacity: 1024,
            slow_query_capacity: 32,
            slow_query_threshold_ns: 10_000_000, // 10 ms
        }
    }
}

/// One over-threshold statement retained by the [`SlowQueryLog`].
#[derive(Debug, Clone)]
pub struct SlowQuery<P> {
    /// The statement text.
    pub statement: String,
    /// Wall-clock duration.
    pub elapsed_ns: u64,
    /// Id of the session that ran the statement (0 when unknown), so
    /// entries stay attributable across concurrent wire sessions.
    pub session_id: u64,
    /// The statement's verb (`"retrieve"`, `"append"`, ...).
    pub verb: &'static str,
    /// Caller-supplied payload (the session layer stores the query's
    /// execution profile).
    pub payload: Option<P>,
}

/// A bounded log of the most recent statements that ran at or above a
/// threshold. Generic over the payload so this crate needs no knowledge
/// of upper layers' profile types.
pub struct SlowQueryLog<P> {
    threshold_ns: u64,
    capacity: usize,
    entries: Mutex<VecDeque<SlowQuery<P>>>,
}

impl<P> SlowQueryLog<P> {
    /// A log retaining up to `capacity` entries at or above
    /// `threshold_ns`.
    pub fn new(threshold_ns: u64, capacity: usize) -> SlowQueryLog<P> {
        SlowQueryLog {
            threshold_ns,
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether a statement of this duration belongs in the log. Callers
    /// check this *before* building the payload so fast statements pay
    /// nothing.
    pub fn is_slow(&self, elapsed_ns: u64) -> bool {
        elapsed_ns >= self.threshold_ns
    }

    /// The configured threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Record one slow statement (evicting the oldest at capacity).
    /// `session_id` attributes the entry to its originating session
    /// (pass 0 when unknown); `verb` is the statement's verb.
    pub fn record(
        &self,
        statement: String,
        elapsed_ns: u64,
        session_id: u64,
        verb: &'static str,
        payload: Option<P>,
    ) {
        let mut entries = self.entries.lock().expect("slow-query lock");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(SlowQuery {
            statement,
            elapsed_ns,
            session_id,
            verb,
            payload,
        });
    }
}

impl<P: Clone> SlowQueryLog<P> {
    /// Retained entries, slowest first.
    pub fn entries(&self) -> Vec<SlowQuery<P>> {
        let mut out: Vec<SlowQuery<P>> = self
            .entries
            .lock()
            .expect("slow-query lock")
            .iter()
            .cloned()
            .collect();
        out.sort_by_key(|q| std::cmp::Reverse(q.elapsed_ns));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_on_drop() {
        let tracer = Arc::new(RingTracer::new(16));
        {
            let outer = tracer.start("statement", "retrieve x");
            let outer_id = outer.id();
            {
                let _inner = tracer.start("parse", "");
            }
            let spans = tracer.spans();
            assert_eq!(spans.len(), 1, "inner recorded before outer closes");
            assert_eq!(spans[0].name, "parse");
            assert_eq!(spans[0].parent, Some(outer_id));
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "statement");
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[0].parent, Some(spans[1].id));
    }

    #[test]
    fn ring_evicts_oldest() {
        let tracer = Arc::new(RingTracer::new(2));
        for name in ["a", "b", "c"] {
            let _g = tracer.start(
                if name == "a" {
                    "a"
                } else if name == "b" {
                    "b"
                } else {
                    "c"
                },
                "",
            );
        }
        let names: Vec<&str> = tracer.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn siblings_share_a_parent() {
        let tracer = Arc::new(RingTracer::new(16));
        {
            let root = tracer.start("statement", "");
            let root_id = root.id();
            let _a = tracer.start("parse", "");
            drop(_a);
            let _b = tracer.start("execute", "");
            drop(_b);
            let spans = tracer.spans();
            assert!(spans.iter().all(|s| s.parent == Some(root_id)));
        }
    }

    #[test]
    fn slow_query_log_thresholds_and_evicts() {
        let log: SlowQueryLog<&'static str> = SlowQueryLog::new(100, 2);
        assert!(!log.is_slow(99));
        assert!(log.is_slow(100));
        log.record("q1".into(), 150, 0, "retrieve", Some("p1"));
        log.record("q2".into(), 400, 0, "retrieve", None);
        log.record("q3".into(), 250, 0, "retrieve", Some("p3"));
        let entries = log.entries();
        assert_eq!(entries.len(), 2, "q1 evicted");
        assert_eq!(entries[0].statement, "q2");
        assert_eq!(entries[1].statement, "q3");
        assert_eq!(entries[1].payload, Some("p3"));
    }

    #[test]
    fn slow_query_entries_are_session_attributable() {
        let log: SlowQueryLog<()> = SlowQueryLog::new(0, 8);
        log.record("retrieve (x in xs) x".into(), 300, 7, "retrieve", None);
        log.record("append ys (1)".into(), 900, 12, "append", None);
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        // Slowest first: the append from session 12.
        assert_eq!(entries[0].session_id, 12);
        assert_eq!(entries[0].verb, "append");
        assert_eq!(entries[1].session_id, 7);
        assert_eq!(entries[1].verb, "retrieve");
    }
}
