//! The metrics registry: lock-light counters, gauges, and fixed-bucket
//! log-scaled histograms, with deterministic snapshots, a JSON encoding
//! that round-trips, and Prometheus-style text exposition.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.v.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set to `n`.
    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Fixed log-scaled latency buckets: powers of four from ~1 µs to ~4.6
/// minutes, in nanoseconds. Observations above the last bound land in
/// the implicit `+Inf` bucket.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    1 << 10, // ~1 µs
    1 << 12,
    1 << 14, // ~16 µs
    1 << 16,
    1 << 18, // ~0.26 ms
    1 << 20, // ~1 ms
    1 << 22,
    1 << 24, // ~17 ms
    1 << 26,
    1 << 28, // ~0.27 s
    1 << 30, // ~1.1 s
    1 << 32,
    1 << 34, // ~17 s
    1 << 36,
];

/// Fixed log-scaled size buckets: powers of two from 1 to 8192, for
/// count-valued distributions (group-commit batch sizes, rows per
/// batch).
pub const COUNT_BUCKETS: &[u64] = &[
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
];

/// A histogram over fixed, caller-chosen bucket upper bounds (see
/// [`LATENCY_BUCKETS_NS`] and [`COUNT_BUCKETS`]). Each observation is
/// three relaxed atomic adds; bucket counts are stored non-cumulative
/// and accumulated at snapshot time.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    /// One slot per bound plus the trailing `+Inf` slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram over `bounds` (must be strictly increasing).
    pub fn new(bounds: &'static [u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket-resolution estimate of the `q`-quantile (`0.0 < q <=
    /// 1.0`): the smallest bucket upper bound whose cumulative count
    /// covers `q` of all observations, or `None` with no observations.
    /// Resolution is the bucket grid — good enough for load governors
    /// (is p99 past a threshold?), not for reporting exact latencies.
    pub fn estimate_quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = (q * count as f64).ceil().max(1.0) as u64;
        self.cumulative()
            .into_iter()
            .find(|(_, cum)| *cum >= rank)
            .map(|(bound, _)| bound)
    }

    /// Cumulative `(upper bound, count ≤ bound)` pairs; the final pair
    /// uses `u64::MAX` as the `+Inf` bound and equals [`Histogram::count`].
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0;
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(&self.buckets)
            .map(|(bound, c)| {
                acc += c.load(Ordering::Relaxed);
                (bound, acc)
            })
            .collect()
    }
}

/// Where a registered metric's value comes from at snapshot time.
enum Source {
    Counter(Arc<Counter>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    Gauge(Arc<Gauge>),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    help: String,
    source: Source,
}

/// A set of named instruments. Registration happens once at subsystem
/// wiring time (duplicate names panic — they are programming errors);
/// after that the registry is only touched by [`MetricsRegistry::snapshot`].
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: &str, help: &str, source: Source) {
        let mut entries = self.entries.lock().expect("metrics registry lock");
        assert!(
            !entries.iter().any(|e| e.name == name),
            "duplicate metric name '{name}'"
        );
        assert!(!help.is_empty(), "metric '{name}' needs a help string");
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            source,
        });
    }

    /// Register and return a new owned counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(name, help, Source::Counter(c.clone()));
        c
    }

    /// Register a counter whose value is computed by `f` at snapshot
    /// time — for subsystems that already maintain a monotonic atomic
    /// and should not pay a second increment on their hot path.
    pub fn counter_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register(name, help, Source::CounterFn(Box::new(f)));
    }

    /// Register and return a new owned gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(name, help, Source::Gauge(g.clone()));
        g
    }

    /// Register a gauge whose value is computed by `f` at snapshot time.
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        self.register(name, help, Source::GaugeFn(Box::new(f)));
    }

    /// Register and return a new owned histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &'static [u64]) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(bounds));
        self.register(name, help, Source::Histogram(h.clone()));
        h
    }

    /// Register a histogram the caller already owns (a subsystem that
    /// embeds the instrument directly, such as the WAL's fsync timer).
    pub fn histogram_shared(&self, name: &str, help: &str, h: Arc<Histogram>) {
        self.register(name, help, Source::Histogram(h));
    }

    /// Sample every instrument. Samples are sorted by name, so snapshot
    /// order — and the derived JSON and Prometheus encodings — is
    /// deterministic regardless of registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metrics registry lock");
        let mut metrics: Vec<MetricSample> = entries
            .iter()
            .map(|e| MetricSample {
                name: e.name.clone(),
                help: e.help.clone(),
                value: match &e.source {
                    Source::Counter(c) => SampleValue::Counter(c.get()),
                    Source::CounterFn(f) => SampleValue::Counter(f()),
                    Source::Gauge(g) => SampleValue::Gauge(g.get()),
                    Source::GaugeFn(f) => SampleValue::Gauge(f()),
                    Source::Histogram(h) => SampleValue::Histogram {
                        buckets: h.cumulative(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { metrics }
    }
}

/// One sampled metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Metric name (snake_case; counters end in `_total` by convention).
    pub name: String,
    /// Human-readable description.
    pub help: String,
    /// The sampled value.
    pub value: SampleValue,
}

/// A sampled value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Monotonic counter.
    Counter(u64),
    /// Up/down gauge.
    Gauge(i64),
    /// Histogram: cumulative `(upper bound, count)` pairs (the last
    /// bound is `u64::MAX`, standing in for `+Inf`), total sum, and
    /// observation count.
    Histogram {
        /// Cumulative bucket counts.
        buckets: Vec<(u64, u64)>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

impl MetricsSnapshot {
    /// The sample named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The value of counter `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)?.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// `after − before` for every counter present in both snapshots,
    /// dropping zero deltas. Sorted by name (inherited from snapshot
    /// order).
    pub fn counter_deltas(before: &MetricsSnapshot, after: &MetricsSnapshot) -> Vec<(String, u64)> {
        after
            .metrics
            .iter()
            .filter_map(|m| {
                let SampleValue::Counter(now) = m.value else {
                    return None;
                };
                let then = before.counter(&m.name).unwrap_or(0);
                (now > then).then(|| (m.name.clone(), now - then))
            })
            .collect()
    }

    /// Check that every counter in `earlier` is present here with a
    /// value at least as large (counters are monotonic).
    pub fn check_monotonic_since(&self, earlier: &MetricsSnapshot) -> Result<(), String> {
        for m in &earlier.metrics {
            if let SampleValue::Counter(then) = m.value {
                match self.counter(&m.name) {
                    Some(now) if now >= then => {}
                    Some(now) => {
                        return Err(format!(
                            "counter '{}' went backwards: {then} → {now}",
                            m.name
                        ))
                    }
                    None => return Err(format!("counter '{}' disappeared", m.name)),
                }
            }
        }
        Ok(())
    }

    /// Render as a JSON object (no external dependencies — the
    /// workspace is offline). Inverse of [`MetricsSnapshot::from_json`].
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"help\":\"{}\"",
                json_escape(&m.name),
                json_escape(&m.help)
            ));
            match &m.value {
                SampleValue::Counter(v) => {
                    s.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"))
                }
                SampleValue::Gauge(v) => s.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}")),
                SampleValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    s.push_str(",\"type\":\"histogram\",\"buckets\":[");
                    for (j, (bound, c)) in buckets.iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!("[{bound},{c}]"));
                    }
                    s.push_str(&format!("],\"sum\":{sum},\"count\":{count}"));
                }
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Parse a snapshot back from its [`MetricsSnapshot::to_json`]
    /// encoding.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let v = json::parse(text)?;
        let arr = v
            .key("metrics")
            .and_then(|m| m.as_array())
            .ok_or("missing 'metrics' array")?;
        let mut metrics = Vec::with_capacity(arr.len());
        for m in arr {
            let name = m
                .key("name")
                .and_then(|v| v.as_str())
                .ok_or("metric missing 'name'")?
                .to_string();
            let help = m
                .key("help")
                .and_then(|v| v.as_str())
                .ok_or("metric missing 'help'")?
                .to_string();
            let ty = m
                .key("type")
                .and_then(|v| v.as_str())
                .ok_or("metric missing 'type'")?;
            let value = match ty {
                "counter" => SampleValue::Counter(
                    m.key("value")
                        .and_then(|v| v.as_u64())
                        .ok_or("counter missing 'value'")?,
                ),
                "gauge" => SampleValue::Gauge(
                    m.key("value")
                        .and_then(|v| v.as_i64())
                        .ok_or("gauge missing 'value'")?,
                ),
                "histogram" => {
                    let buckets = m
                        .key("buckets")
                        .and_then(|v| v.as_array())
                        .ok_or("histogram missing 'buckets'")?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_array().ok_or("bucket must be a pair")?;
                            match (
                                pair.first().and_then(|v| v.as_u64()),
                                pair.get(1).and_then(|v| v.as_u64()),
                            ) {
                                (Some(bound), Some(count)) => Ok((bound, count)),
                                _ => Err("bucket must be [bound, count]".to_string()),
                            }
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    SampleValue::Histogram {
                        buckets,
                        sum: m
                            .key("sum")
                            .and_then(|v| v.as_u64())
                            .ok_or("histogram missing 'sum'")?,
                        count: m
                            .key("count")
                            .and_then(|v| v.as_u64())
                            .ok_or("histogram missing 'count'")?,
                    }
                }
                other => return Err(format!("unknown metric type '{other}'")),
            };
            metrics.push(MetricSample { name, help, value });
        }
        Ok(MetricsSnapshot { metrics })
    }

    /// Render in the Prometheus text exposition format (`# HELP` /
    /// `# TYPE` comments, `_bucket{le=...}` / `_sum` / `_count` series
    /// for histograms).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for m in &self.metrics {
            s.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            match &m.value {
                SampleValue::Counter(v) => {
                    s.push_str(&format!("# TYPE {} counter\n{} {v}\n", m.name, m.name));
                }
                SampleValue::Gauge(v) => {
                    s.push_str(&format!("# TYPE {} gauge\n{} {v}\n", m.name, m.name));
                }
                SampleValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    s.push_str(&format!("# TYPE {} histogram\n", m.name));
                    for (bound, c) in buckets {
                        let le = if *bound == u64::MAX {
                            "+Inf".to_string()
                        } else {
                            bound.to_string()
                        };
                        s.push_str(&format!("{}_bucket{{le=\"{le}\"}} {c}\n", m.name));
                    }
                    s.push_str(&format!("{}_sum {sum}\n{}_count {count}\n", m.name, m.name));
                }
            }
        }
        s
    }
}

/// A deterministic point-in-time sample of every registered metric,
/// sorted by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The samples, sorted by name.
    pub metrics: Vec<MetricSample>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validate a Prometheus text exposition produced by
/// [`MetricsSnapshot::to_prometheus`] (or any conforming exporter):
/// every metric has a non-empty help string and exactly one `# TYPE`, no
/// metric name appears twice, histogram bucket counts are cumulative
/// and consistent with `_count`, and counter values parse as
/// non-negative integers. Returns the number of metrics validated.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    struct Block {
        name: String,
        ty: Option<String>,
        samples: Vec<(String, String)>, // (series incl. labels, value)
    }
    let mut blocks: Vec<Block> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let err = |msg: String| Err::<(), String>(format!("line {}: {msg}", ln + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
            if help.trim().is_empty() {
                err(format!("metric '{name}' has an empty help string"))?;
            }
            if blocks.iter().any(|b| b.name == name) {
                err(format!("duplicate metric name '{name}'"))?;
            }
            blocks.push(Block {
                name: name.to_string(),
                ty: None,
                samples: Vec::new(),
            });
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest
                .split_once(' ')
                .ok_or(format!("line {}: malformed TYPE", ln + 1))?;
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                err(format!("metric '{name}' has unknown type '{ty}'"))?;
            }
            let block = blocks
                .last_mut()
                .filter(|b| b.name == name)
                .ok_or(format!("line {}: TYPE for '{name}' without HELP", ln + 1))?;
            if block.ty.is_some() {
                err(format!("metric '{name}' has two TYPE lines"))?;
            }
            block.ty = Some(ty.to_string());
        } else if line.starts_with('#') {
            continue;
        } else {
            let (series, value) = line
                .rsplit_once(' ')
                .ok_or(format!("line {}: malformed sample", ln + 1))?;
            let block = blocks
                .last_mut()
                .ok_or(format!("line {}: sample before any HELP", ln + 1))?;
            let base = series.split('{').next().unwrap_or(series);
            if base != block.name
                && base != format!("{}_bucket", block.name)
                && base != format!("{}_sum", block.name)
                && base != format!("{}_count", block.name)
            {
                err(format!("sample '{base}' outside its metric block"))?;
            }
            block.samples.push((series.to_string(), value.to_string()));
        }
    }
    for b in &blocks {
        let ty =
            b.ty.as_deref()
                .ok_or(format!("metric '{}' has no TYPE line", b.name))?;
        match ty {
            "counter" => {
                let (_, v) = b
                    .samples
                    .first()
                    .ok_or(format!("counter '{}' has no sample", b.name))?;
                v.parse::<u64>()
                    .map_err(|_| format!("counter '{}' value '{v}' is not a u64", b.name))?;
            }
            "gauge" => {
                let (_, v) = b
                    .samples
                    .first()
                    .ok_or(format!("gauge '{}' has no sample", b.name))?;
                v.parse::<i64>()
                    .map_err(|_| format!("gauge '{}' value '{v}' is not an i64", b.name))?;
            }
            "histogram" => {
                let mut prev = 0u64;
                let mut inf: Option<u64> = None;
                let mut count: Option<u64> = None;
                for (series, v) in &b.samples {
                    let v: u64 = v
                        .parse()
                        .map_err(|_| format!("histogram '{}' value '{v}' is not a u64", b.name))?;
                    if series.starts_with(&format!("{}_bucket", b.name)) {
                        if v < prev {
                            return Err(format!(
                                "histogram '{}' bucket counts are not cumulative",
                                b.name
                            ));
                        }
                        prev = v;
                        if series.contains("le=\"+Inf\"") {
                            inf = Some(v);
                        }
                    } else if series == &format!("{}_count", b.name) {
                        count = Some(v);
                    }
                }
                let inf = inf.ok_or(format!("histogram '{}' misses the +Inf bucket", b.name))?;
                let count = count.ok_or(format!("histogram '{}' misses _count", b.name))?;
                if inf != count {
                    return Err(format!(
                        "histogram '{}': +Inf bucket {inf} != count {count}",
                        b.name
                    ));
                }
            }
            _ => unreachable!("type validated above"),
        }
    }
    Ok(blocks.len())
}

/// A minimal JSON reader covering the subset [`MetricsSnapshot::to_json`]
/// emits (objects, arrays, strings, integers). Offline workspace — no
/// serde.
mod json {
    /// Parsed JSON value.
    pub enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        Str(String),
        Int(i64),
        UInt(u64),
    }

    impl Value {
        pub fn key(&self, k: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(n, _)| n == k).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::UInt(v) => Some(*v),
                Value::Int(v) => u64::try_from(*v).ok(),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(v) => Some(*v),
                Value::UInt(v) => i64::try_from(*v).ok(),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while b.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let k = string(b, pos)?;
                    expect(b, pos, b':')?;
                    fields.push((k, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
            _ => Err(format!("unexpected input at byte {pos}")),
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape".to_string())?);
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| e.to_string())
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_exhaustive() {
        let h = Histogram::new(COUNT_BUCKETS);
        h.observe(1); // le=1
        h.observe(2); // le=2
        h.observe(3); // le=4
        h.observe(10_000); // +Inf
        let cum = h.cumulative();
        assert_eq!(cum[0], (1, 1));
        assert_eq!(cum[1], (2, 2));
        assert_eq!(cum[2], (4, 3));
        assert_eq!(cum.last().copied(), Some((u64::MAX, 4)));
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10_006);
    }

    #[test]
    fn quantile_estimates_track_the_bucket_grid() {
        let h = Histogram::new(COUNT_BUCKETS);
        assert_eq!(h.estimate_quantile(0.99), None, "no observations");
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(10_000); // one +Inf outlier
        assert_eq!(h.estimate_quantile(0.5), Some(1));
        assert_eq!(h.estimate_quantile(0.99), Some(1));
        assert_eq!(h.estimate_quantile(1.0), Some(u64::MAX));
    }

    fn sample_registry() -> (MetricsRegistry, Arc<Counter>) {
        let reg = MetricsRegistry::new();
        let c = reg.counter("demo_events_total", "Events observed.");
        let g = reg.gauge("demo_active", "Active things.");
        let h = reg.histogram("demo_latency_ns", "Event latency.", LATENCY_BUCKETS_NS);
        reg.counter_fn("demo_callback_total", "Callback-sourced.", || 42);
        c.add(7);
        g.set(-3);
        h.observe(500);
        h.observe(5_000_000);
        (reg, c)
    }

    #[test]
    fn snapshot_is_sorted_and_json_round_trips() {
        let (reg, _c) = sample_registry();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        assert_eq!(snap.counter("demo_events_total"), Some(7));
        assert_eq!(snap.counter("demo_callback_total"), Some(42));
        assert_eq!(snap.gauge("demo_active"), Some(-3));
        let round = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(round, snap);
    }

    #[test]
    fn prometheus_exposition_validates() {
        let (reg, _c) = sample_registry();
        let text = reg.snapshot().to_prometheus();
        assert_eq!(validate_exposition(&text).unwrap(), 4);
    }

    #[test]
    fn validator_rejects_duplicates_and_empty_help() {
        let dup = "# HELP a x\n# TYPE a counter\na 1\n# HELP a x\n# TYPE a counter\na 2\n";
        assert!(validate_exposition(dup).unwrap_err().contains("duplicate"));
        let empty = "# HELP a \n# TYPE a counter\na 1\n";
        assert!(validate_exposition(empty).unwrap_err().contains("help"));
        let broken = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate_exposition(broken)
            .unwrap_err()
            .contains("cumulative"));
    }

    #[test]
    fn monotonicity_check() {
        let (reg, c) = sample_registry();
        let before = reg.snapshot();
        c.add(5);
        let after = reg.snapshot();
        assert!(after.check_monotonic_since(&before).is_ok());
        assert!(before.check_monotonic_since(&after).is_err());
        assert_eq!(
            MetricsSnapshot::counter_deltas(&before, &after),
            vec![("demo_events_total".to_string(), 5)]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_registration_panics() {
        let reg = MetricsRegistry::new();
        let _a = reg.counter("x_total", "X.");
        let _b = reg.counter("x_total", "X again.");
    }
}
