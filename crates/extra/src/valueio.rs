//! Self-describing binary encoding of [`Value`]s.
//!
//! Object records store their value in this format. The encoding is
//! self-describing (a tag byte per value) so the store can walk and
//! rewrite values (e.g. nulling out dangling references) without schema
//! access; conformance to the declared type is checked before writes, not
//! on reads.

use exodus_storage::encoding::{ByteReader, ByteWriter};
use exodus_storage::{Oid, StorageError};

use crate::adt::AdtId;
use crate::error::{ModelError, ModelResult};
use crate::value::Value;

const T_NULL: u8 = 0;
const T_INT: u8 = 1;
const T_FLOAT: u8 = 2;
const T_BOOL: u8 = 3;
const T_STR: u8 = 4;
const T_ENUM: u8 = 5;
const T_ADT: u8 = 6;
const T_TUPLE: u8 = 7;
const T_SET: u8 = 8;
const T_ARRAY: u8 = 9;
const T_REF: u8 = 10;

/// Encode a value into `w`.
pub fn encode_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(T_NULL),
        Value::Int(i) => {
            w.put_u8(T_INT);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(T_FLOAT);
            w.put_f64(*f);
        }
        Value::Bool(b) => {
            w.put_u8(T_BOOL);
            w.put_u8(*b as u8);
        }
        Value::Str(s) => {
            w.put_u8(T_STR);
            w.put_str(s);
        }
        Value::Enum(ord, sym) => {
            w.put_u8(T_ENUM);
            w.put_u16(*ord);
            w.put_str(sym);
        }
        Value::Adt(id, bytes) => {
            w.put_u8(T_ADT);
            w.put_u32(id.0);
            w.put_bytes(bytes);
        }
        Value::Tuple(fs) => {
            w.put_u8(T_TUPLE);
            w.put_varint(fs.len() as u64);
            for f in fs {
                encode_value(w, f);
            }
        }
        Value::Set(ms) => {
            w.put_u8(T_SET);
            w.put_varint(ms.len() as u64);
            for m in ms {
                encode_value(w, m);
            }
        }
        Value::Array(items) => {
            w.put_u8(T_ARRAY);
            w.put_varint(items.len() as u64);
            for i in items {
                encode_value(w, i);
            }
        }
        Value::Ref(oid) => {
            w.put_u8(T_REF);
            w.put_u64(oid.0);
        }
    }
}

/// Serialize a value to bytes.
pub fn to_bytes(v: &Value) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_value(&mut w, v);
    w.into_bytes()
}

/// Decode one value from `r`.
pub fn decode_value(r: &mut ByteReader<'_>) -> ModelResult<Value> {
    let corrupt = |m: &str| ModelError::Storage(StorageError::Corrupt(m.into()));
    match r.get_u8()? {
        T_NULL => Ok(Value::Null),
        T_INT => Ok(Value::Int(r.get_i64()?)),
        T_FLOAT => Ok(Value::Float(r.get_f64()?)),
        T_BOOL => Ok(Value::Bool(r.get_u8()? != 0)),
        T_STR => Ok(Value::Str(r.get_str()?.to_string())),
        T_ENUM => {
            let ord = r.get_u16()?;
            Ok(Value::Enum(ord, r.get_str()?.to_string()))
        }
        T_ADT => {
            let id = AdtId(r.get_u32()?);
            Ok(Value::Adt(id, r.get_bytes()?.to_vec()))
        }
        T_TUPLE => {
            let n = r.get_varint()? as usize;
            let mut fs = Vec::with_capacity(n);
            for _ in 0..n {
                fs.push(decode_value(r)?);
            }
            Ok(Value::Tuple(fs))
        }
        T_SET => {
            let n = r.get_varint()? as usize;
            let mut ms = Vec::with_capacity(n);
            for _ in 0..n {
                ms.push(decode_value(r)?);
            }
            Ok(Value::Set(ms))
        }
        T_ARRAY => {
            let n = r.get_varint()? as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(r)?);
            }
            Ok(Value::Array(items))
        }
        T_REF => Ok(Value::Ref(Oid(r.get_u64()?))),
        other => Err(corrupt(&format!("unknown value tag {other}"))),
    }
}

/// Advance `r` past one encoded value without materializing it.
fn skip_value(r: &mut ByteReader<'_>) -> ModelResult<()> {
    let corrupt = |m: &str| ModelError::Storage(StorageError::Corrupt(m.into()));
    match r.get_u8()? {
        T_NULL => {}
        T_INT => {
            r.get_i64()?;
        }
        T_FLOAT => {
            r.get_f64()?;
        }
        T_BOOL => {
            r.get_u8()?;
        }
        T_STR => {
            r.get_str()?;
        }
        T_ENUM => {
            r.get_u16()?;
            r.get_str()?;
        }
        T_ADT => {
            r.get_u32()?;
            r.get_bytes()?;
        }
        T_TUPLE | T_SET | T_ARRAY => {
            let n = r.get_varint()? as usize;
            for _ in 0..n {
                skip_value(r)?;
            }
        }
        T_REF => {
            r.get_u64()?;
        }
        other => return Err(corrupt(&format!("unknown value tag {other}"))),
    }
    Ok(())
}

/// Decode only field `pos` of a top-level tuple, skipping its siblings.
///
/// The projected-attribute fast path (`E.dept.budget` derefs `E` for one
/// field): fields before `pos` are skipped tag-by-tag instead of decoded,
/// so the scan allocates nothing for them. Returns `None` when the bytes
/// are not a tuple or `pos` is out of range — callers fall back to a full
/// decode, which reproduces the ordinary error (or ref-chasing) behavior.
pub fn tuple_field_from_bytes(bytes: &[u8], pos: usize) -> ModelResult<Option<Value>> {
    let mut r = ByteReader::new(bytes);
    if r.get_u8()? != T_TUPLE {
        return Ok(None);
    }
    let n = r.get_varint()? as usize;
    if pos >= n {
        return Ok(None);
    }
    for _ in 0..pos {
        skip_value(&mut r)?;
    }
    Ok(Some(decode_value(&mut r)?))
}

/// Deserialize a value from bytes.
pub fn from_bytes(bytes: &[u8]) -> ModelResult<Value> {
    let mut r = ByteReader::new(bytes);
    let v = decode_value(&mut r)?;
    if r.remaining() != 0 {
        return Err(ModelError::Storage(StorageError::Corrupt(format!(
            "{} trailing bytes after value",
            r.remaining()
        ))));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        assert_eq!(from_bytes(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Int(-12345));
        round_trip(Value::Float(2.75));
        round_trip(Value::Bool(true));
        round_trip(Value::str("EXODUS"));
        round_trip(Value::Enum(3, "blue".into()));
        round_trip(Value::Adt(AdtId(2), vec![1, 2, 3]));
        round_trip(Value::Ref(Oid(99)));
    }

    #[test]
    fn nested_round_trip() {
        round_trip(Value::Tuple(vec![
            Value::str("ann"),
            Value::Int(30),
            Value::Set(vec![Value::Ref(Oid(1)), Value::Ref(Oid(2))]),
            Value::Array(vec![Value::Null, Value::Float(1.5)]),
            Value::Tuple(vec![Value::Bool(false)]),
        ]));
    }

    #[test]
    fn tuple_field_projection() {
        let v = Value::Tuple(vec![
            Value::str("ann"),
            Value::Set(vec![Value::Int(1), Value::Int(2)]),
            Value::Ref(Oid(7)),
            Value::Float(1.5),
        ]);
        let bytes = to_bytes(&v);
        assert_eq!(
            tuple_field_from_bytes(&bytes, 0).unwrap(),
            Some(Value::str("ann"))
        );
        assert_eq!(
            tuple_field_from_bytes(&bytes, 2).unwrap(),
            Some(Value::Ref(Oid(7)))
        );
        assert_eq!(
            tuple_field_from_bytes(&bytes, 3).unwrap(),
            Some(Value::Float(1.5))
        );
        // Out of range and non-tuple both defer to the caller.
        assert_eq!(tuple_field_from_bytes(&bytes, 4).unwrap(), None);
        assert_eq!(
            tuple_field_from_bytes(&to_bytes(&Value::Int(3)), 0).unwrap(),
            None
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_bytes(&Value::Int(1));
        bytes.push(0xAA);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(from_bytes(&[200]).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_scalar_round_trip(i: i64, f: f64, s: String, b: bool) {
            proptest::prop_assume!(!f.is_nan());
            round_trip(Value::Tuple(vec![
                Value::Int(i), Value::Float(f), Value::Str(s), Value::Bool(b),
            ]));
        }
    }
}
