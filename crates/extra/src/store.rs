//! The object store: EXTRA's object identity and integrity semantics over
//! the storage manager.
//!
//! Objects with identity (schema-type instances, named database objects,
//! collection anchors) live in heap records addressed through the
//! [object table](exodus_storage::object::ObjectTable), so OIDs survive
//! record relocation. The store enforces the paper's §2.2 semantics:
//!
//! * **`ref`** — GEM-style references: deleting the referenced object
//!   *nulls out* every dangling reference (and removes dangling members
//!   from ref-sets), via a back-reference index.
//! * **`own ref`** — exclusive composite ownership: adopting an
//!   already-owned object is an integrity error ("a Person instance in the
//!   kids set of one Employee instance cannot be in the kids set of
//!   another Employee instance simultaneously"), and deleting an owner
//!   cascades to its components ("if an employee is deleted, so are his or
//!   her kids").
//! * **`own`** — plain values, stored inline in their parent's record.
//!
//! Top-level **named sets** are represented as *collections*: a heap file
//! of member records plus an anchor object giving the collection an OID
//! (so `own ref` members have an owner and integrity edges have a holder).
//! Nested sets/arrays (e.g. `kids`) are stored inline in the parent
//! record, as the paper's NF²-style complex objects suggest.
//!
//! Values longer than a page spill into a large object ([`crate::store`]
//! uses [`exodus_storage::lob`]), transparently.

use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::RwLock;

use exodus_storage::btree::BTree;
use exodus_storage::buffer::BufferPool;
use exodus_storage::heap::{self, HeapFile};
use exodus_storage::lob::{Lob, LobId};
use exodus_storage::object::ObjectTable;
use exodus_storage::txn::{visible, ReclaimOp, TS_LATEST};
use exodus_storage::{FileId, Oid, RecordId, StorageManager};

use crate::error::{ModelError, ModelResult};
use crate::schema::{TypeId, TypeRegistry};
use crate::types::{Ownership, QualType, Type};
use crate::value::Value;
use crate::valueio;

const INLINE_LIMIT: usize = 7000;
const TAG_INLINE: u8 = 0;
const TAG_LOB: u8 = 1;

/// Kinds of back-reference holders.
const BK_OBJECT: u8 = 0;
const BK_MEMBER: u8 = 1;

/// The page-level anchors of an [`ObjectStore`], as plain numbers: what
/// a replica needs (besides the replicated pages themselves) to
/// re-attach via [`ObjectStore::attach`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRoots {
    /// Root page of the object table.
    pub table_root: u64,
    /// Root page of the back-reference index.
    pub backrefs_root: u64,
    /// Root page of the ownership-children index.
    pub children_root: u64,
    /// Heap file id of the top-level object file.
    pub file: u64,
}

/// An integrity edge extracted from a value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Edge {
    /// A `ref`-mode reference to `target`, declared at `declared`.
    Ref { target: Oid, declared: TypeId },
    /// An `own ref` component `child`, declared at `declared`.
    Own { child: Oid, declared: TypeId },
}

/// A collection: a heap file of members plus its element type.
#[derive(Debug, Clone, Copy)]
struct CollectionInfo {
    file: FileId,
    elem: u32,
}

/// The object store. Cheap to clone is not needed; share via `Arc`.
pub struct ObjectStore {
    sm: StorageManager,
    table: ObjectTable,
    /// Back-reference index:
    /// key = `target ++ kind ++ holder ++ extra`, value = 0.
    backrefs: BTree,
    /// Ownership index: key = `owner ++ child`, value = child OID.
    children: BTree,
    /// Heap file holding all object records.
    file: FileId,
    /// Interned qualified types (object-table `type_id` → descriptor).
    types: RwLock<Vec<QualType>>,
    /// Collection anchors.
    collections: RwLock<HashMap<Oid, CollectionInfo>>,
}

fn be(oid: Oid) -> [u8; 8] {
    oid.0.to_be_bytes()
}

fn backref_key(target: Oid, kind: u8, holder: Oid, extra: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(25);
    k.extend_from_slice(&be(target));
    k.push(kind);
    k.extend_from_slice(&be(holder));
    k.extend_from_slice(&extra.to_be_bytes());
    k
}

fn child_key(owner: Oid, child: Oid) -> Vec<u8> {
    let mut k = Vec::with_capacity(16);
    k.extend_from_slice(&be(owner));
    k.extend_from_slice(&be(child));
    k
}

fn prefix_bounds(prefix: &[u8]) -> (Bound<Vec<u8>>, Bound<Vec<u8>>) {
    let mut upper = prefix.to_vec();
    for i in (0..upper.len()).rev() {
        if upper[i] != 0xFF {
            upper[i] += 1;
            upper.truncate(i + 1);
            return (Bound::Included(prefix.to_vec()), Bound::Excluded(upper));
        }
    }
    (Bound::Included(prefix.to_vec()), Bound::Unbounded)
}

impl ObjectStore {
    /// Create a fresh object store over a storage manager.
    pub fn new(sm: StorageManager) -> ModelResult<ObjectStore> {
        let pool = sm.pool().clone();
        let table = ObjectTable::create(&pool)?;
        let backrefs = BTree::create(&pool)?;
        let children = BTree::create(&pool)?;
        let file = sm.create_file()?;
        Ok(ObjectStore {
            sm,
            table,
            backrefs,
            children,
            file,
            types: RwLock::new(Vec::new()),
            collections: RwLock::new(HashMap::new()),
        })
    }

    /// The store's physical anchors: enough to re-attach to the same
    /// pages from another process over a replicated volume.
    pub fn roots(&self) -> StoreRoots {
        StoreRoots {
            table_root: self.table.root(),
            backrefs_root: self.backrefs.root(),
            children_root: self.children.root(),
            file: self.file.0,
        }
    }

    /// Attach to an existing store's pages — the replica-side
    /// counterpart of [`ObjectStore::new`]. The volume must already hold
    /// the structures the roots point at (it does on a replica, whose
    /// pages are physical copies of the primary's); the in-memory halves
    /// (interned types, collection map) arrive separately via
    /// [`ObjectStore::import_image`].
    pub fn attach(sm: StorageManager, roots: &StoreRoots) -> ObjectStore {
        ObjectStore {
            sm,
            table: ObjectTable::open(roots.table_root),
            backrefs: BTree::open(roots.backrefs_root),
            children: BTree::open(roots.children_root),
            file: FileId(roots.file),
            types: RwLock::new(Vec::new()),
            collections: RwLock::new(HashMap::new()),
        }
    }

    /// Serialize the store's in-memory state (interned qualified types
    /// and the collection map) for a replication catalog image.
    pub fn export_image(&self) -> Vec<u8> {
        use crate::typeio::{put_u32, put_u64, write_qty};
        let mut out = Vec::new();
        let types = self.types.read();
        put_u32(&mut out, types.len() as u32);
        for q in types.iter() {
            write_qty(q, &mut out);
        }
        drop(types);
        let cols = self.collections.read();
        put_u32(&mut out, cols.len() as u32);
        for (oid, info) in cols.iter() {
            put_u64(&mut out, oid.0);
            put_u64(&mut out, info.file.0);
            put_u32(&mut out, info.elem);
        }
        out
    }

    /// Replace the store's in-memory state with an exported image.
    /// Interned type ids are positional, so the vector must be swapped
    /// wholesale — never merged.
    pub fn import_image(&self, buf: &[u8]) -> ModelResult<()> {
        use crate::typeio::{get_u32, get_u64, read_qty};
        let mut pos = 0;
        let n = get_u32(buf, &mut pos)?;
        let mut types = Vec::with_capacity(n as usize);
        for _ in 0..n {
            types.push(read_qty(buf, &mut pos)?);
        }
        let nc = get_u32(buf, &mut pos)?;
        let mut cols = HashMap::with_capacity(nc as usize);
        for _ in 0..nc {
            let oid = Oid(get_u64(buf, &mut pos)?);
            let file = FileId(get_u64(buf, &mut pos)?);
            let elem = get_u32(buf, &mut pos)?;
            cols.insert(oid, CollectionInfo { file, elem });
        }
        *self.types.write() = types;
        *self.collections.write() = cols;
        Ok(())
    }

    /// The underlying storage manager.
    pub fn storage(&self) -> &StorageManager {
        &self.sm
    }

    fn pool(&self) -> &Arc<BufferPool> {
        self.sm.pool()
    }

    /// The active write transaction's provisional timestamp, if the
    /// caller runs inside one — mutations are then versioned (new
    /// versions stamped with the timestamp, superseded versions
    /// end-stamped instead of destroyed).
    fn write_ts(&self) -> Option<u64> {
        self.sm.txn().current_write_ts()
    }

    /// The snapshot implicit reads evaluate against: the writer's own
    /// timestamp inside a write transaction (it sees its own mutations),
    /// [`TS_LATEST`] otherwise. Reader sessions pass explicit snapshots
    /// through the `_at` read variants instead.
    fn current_snap(&self) -> u64 {
        self.write_ts().unwrap_or(TS_LATEST)
    }

    /// Insert a record, versioned when inside a write transaction.
    fn insert_record(&self, file: FileId, rec: &[u8]) -> ModelResult<RecordId> {
        let hf = HeapFile::open(file);
        Ok(match self.write_ts() {
            Some(ts) => hf.insert_at(self.pool(), rec, ts)?,
            None => hf.insert(self.pool(), rec)?,
        })
    }

    /// Intern a qualified type, returning its small id.
    pub fn intern(&self, qty: &QualType) -> u32 {
        let mut types = self.types.write();
        if let Some(i) = types.iter().position(|t| t == qty) {
            return i as u32;
        }
        types.push(qty.clone());
        (types.len() - 1) as u32
    }

    /// Recover a qualified type from its interned id.
    pub fn qtype(&self, id: u32) -> QualType {
        self.types.read()[id as usize].clone()
    }

    // -- record payloads ---------------------------------------------------

    fn encode_payload(&self, owner: Oid, value: &Value) -> ModelResult<Vec<u8>> {
        let body = valueio::to_bytes(value);
        let mut rec = Vec::with_capacity(9 + body.len().min(INLINE_LIMIT));
        rec.extend_from_slice(&owner.0.to_le_bytes());
        if body.len() <= INLINE_LIMIT {
            rec.push(TAG_INLINE);
            rec.extend_from_slice(&body);
        } else {
            rec.push(TAG_LOB);
            let lob = Lob::create(self.pool())?;
            lob.append(self.pool(), &body)?;
            rec.extend_from_slice(&lob.id().0.to_le_bytes());
        }
        Ok(rec)
    }

    fn decode_payload(&self, rec: &[u8]) -> ModelResult<(Oid, Value)> {
        if rec.len() < 9 {
            return Err(ModelError::Semantic("truncated object record".into()));
        }
        let mut a = [0u8; 8];
        a.copy_from_slice(&rec[..8]);
        let owner = Oid(u64::from_le_bytes(a));
        let value = match rec[8] {
            TAG_INLINE => valueio::from_bytes(&rec[9..])?,
            TAG_LOB => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&rec[9..17]);
                let lob = Lob::open(LobId(u64::from_le_bytes(b)));
                valueio::from_bytes(&lob.read_all(self.pool())?)?
            }
            other => return Err(ModelError::Semantic(format!("bad record tag {other}"))),
        };
        Ok((owner, value))
    }

    // -- objects ------------------------------------------------------------

    /// Create an object with identity. Registers integrity edges for the
    /// refs inside `value` (per `qty`'s modes) and adopts `own ref`
    /// components.
    pub fn create_object(
        &self,
        reg: &TypeRegistry,
        qty: &QualType,
        value: Value,
    ) -> ModelResult<Oid> {
        let type_id = self.intern(qty);
        let rec = self.encode_payload(Oid::NULL, &value)?;
        let rid = self.insert_record(self.file, &rec)?;
        let oid = self.table.allocate(self.pool(), rid, type_id)?;
        let edges = self.collect_edges(reg, qty, &value)?;
        for e in &edges {
            self.add_edge(reg, oid, e)?;
        }
        Ok(oid)
    }

    /// Whether an OID names a live object (at the implicit snapshot —
    /// the writer's own timestamp inside a transaction, latest otherwise).
    pub fn exists(&self, oid: Oid) -> ModelResult<bool> {
        self.exists_at(oid, self.current_snap())
    }

    /// Whether an OID names an object with a version visible at `snap`.
    pub fn exists_at(&self, oid: Oid, snap: u64) -> ModelResult<bool> {
        if !self.table.exists(self.pool(), oid)? {
            return Ok(false);
        }
        Ok(self.read_version_bytes(oid, snap)?.is_some())
    }

    /// Raw record bytes of the version of `oid` visible at `snap`, or
    /// `None` when no version is visible (created after the snapshot,
    /// deleted before it, or uncommitted by another transaction). The
    /// head version is tried first; older versions are resolved through
    /// the in-memory chain kept by the transaction manager.
    fn read_version_bytes(&self, oid: Oid, snap: u64) -> ModelResult<Option<Vec<u8>>> {
        let entry = self.table.get(self.pool(), oid)?;
        if let Ok((begin, end, bytes)) = heap::read_record_versioned(self.pool(), entry.rid) {
            if visible(begin, end, snap) {
                return Ok(Some(bytes));
            }
        }
        for rid in self.sm.txn().chain_rids(oid).into_iter().rev() {
            if rid == entry.rid {
                continue;
            }
            if let Ok((begin, end, bytes)) = heap::read_record_versioned(self.pool(), rid) {
                if visible(begin, end, snap) {
                    return Ok(Some(bytes));
                }
            }
        }
        Ok(None)
    }

    fn version_bytes_or_missing(&self, oid: Oid, snap: u64) -> ModelResult<Vec<u8>> {
        self.read_version_bytes(oid, snap)?.ok_or_else(|| {
            ModelError::Semantic(format!("object {oid} is not visible at this snapshot"))
        })
    }

    /// Fetch `(declared type, owner, value)` of an object.
    pub fn get(&self, oid: Oid) -> ModelResult<(QualType, Oid, Value)> {
        self.get_at(oid, self.current_snap())
    }

    /// Like [`ObjectStore::get`], reading the version visible at `snap`.
    pub fn get_at(&self, oid: Oid, snap: u64) -> ModelResult<(QualType, Oid, Value)> {
        let entry = self.table.get(self.pool(), oid)?;
        let rec = self.version_bytes_or_missing(oid, snap)?;
        let (owner, value) = self.decode_payload(&rec)?;
        Ok((self.qtype(entry.type_id), owner, value))
    }

    /// Fetch just the value of an object.
    pub fn value_of(&self, oid: Oid) -> ModelResult<Value> {
        Ok(self.get(oid)?.2)
    }

    /// Like [`ObjectStore::value_of`], reading the version visible at `snap`.
    pub fn value_of_at(&self, oid: Oid, snap: u64) -> ModelResult<Value> {
        Ok(self.get_at(oid, snap)?.2)
    }

    /// Batched [`ObjectStore::field_of_at`]: decode field `pos` of many
    /// objects at once, pinning each directory and heap page once per
    /// batch instead of three pages per object — the probe path of hash
    /// and index joins. `None` entries are the cases the single-object
    /// call handles specially (unknown OID, head version invisible at
    /// `snap`, LOB payload, non-tuple record, `pos` out of range);
    /// callers fall back to the per-object path for those, reproducing
    /// its exact semantics including version-chain walks and errors.
    pub fn fields_of_batch_at(
        &self,
        oids: &[Oid],
        pos: usize,
        snap: u64,
    ) -> ModelResult<Vec<Option<Value>>> {
        let entries = self.table.get_many(self.pool(), oids)?;
        let mut idxs = Vec::with_capacity(oids.len());
        let mut rids = Vec::with_capacity(oids.len());
        for (i, entry) in entries.iter().enumerate() {
            if let Some(e) = entry {
                idxs.push(i);
                rids.push(e.rid);
            }
        }
        let recs = heap::read_records_versioned(self.pool(), &rids);
        let mut out = vec![None; oids.len()];
        for (k, rec) in recs.into_iter().enumerate() {
            let Some((begin, end, rec)) = rec else {
                continue;
            };
            if !visible(begin, end, snap) || rec.len() < 9 || rec[8] != TAG_INLINE {
                continue;
            }
            out[idxs[k]] = valueio::tuple_field_from_bytes(&rec[9..], pos)?;
        }
        Ok(out)
    }

    /// Decode only field `pos` of a tuple-valued object, skipping the
    /// other fields (no allocation for them). Returns `None` when the
    /// stored value is not a tuple or `pos` is out of range; callers fall
    /// back to [`ObjectStore::value_of`] for those cases.
    pub fn field_of(&self, oid: Oid, pos: usize) -> ModelResult<Option<Value>> {
        self.field_of_at(oid, pos, self.current_snap())
    }

    /// Like [`ObjectStore::field_of`], reading the version visible at `snap`.
    pub fn field_of_at(&self, oid: Oid, pos: usize, snap: u64) -> ModelResult<Option<Value>> {
        let rec = self.version_bytes_or_missing(oid, snap)?;
        if rec.len() < 9 {
            return Err(ModelError::Semantic("truncated object record".into()));
        }
        match rec[8] {
            TAG_INLINE => valueio::tuple_field_from_bytes(&rec[9..], pos),
            TAG_LOB => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&rec[9..17]);
                let lob = Lob::open(LobId(u64::from_le_bytes(b)));
                valueio::tuple_field_from_bytes(&lob.read_all(self.pool())?, pos)
            }
            other => Err(ModelError::Semantic(format!("bad record tag {other}"))),
        }
    }

    /// The owner of an object (`Oid::NULL` if unowned).
    pub fn owner_of(&self, oid: Oid) -> ModelResult<Oid> {
        Ok(self.get(oid)?.1)
    }

    fn rewrite_record(&self, oid: Oid, owner: Oid, value: &Value) -> ModelResult<()> {
        let entry = self.table.get(self.pool(), oid)?;
        let rec = self.encode_payload(owner, value)?;
        match self.write_ts() {
            None => {
                let new_rid = self.sm.update(self.file, entry.rid, &rec)?;
                if new_rid != entry.rid {
                    self.table.relocate(self.pool(), oid, new_rid)?;
                }
            }
            Some(ts) => {
                // Versioned rewrite: insert a new version stamped `ts`,
                // end-stamp the old one, repoint the object table. The
                // chain entry is published *before* the relocate so a
                // reader that resolves the new (invisible-to-it) head can
                // still find the old version.
                let txn = self.sm.txn();
                txn.note_chain(oid, entry.rid);
                let hf = HeapFile::open(self.file);
                let new_rid = hf.insert_at(self.pool(), &rec, ts)?;
                hf.delete_versioned(self.pool(), entry.rid, ts)?;
                self.table.relocate(self.pool(), oid, new_rid)?;
                txn.defer_reclaim(ReclaimOp::Record {
                    file: self.file.0,
                    rid: entry.rid,
                });
                txn.defer_reclaim(ReclaimOp::ChainEntry {
                    oid,
                    rid: entry.rid,
                });
            }
        }
        Ok(())
    }

    /// Replace an object's value, maintaining integrity edges: removed
    /// `own ref` components are deleted (they are exclusively owned),
    /// added ones are adopted, and `ref` back-references are re-indexed.
    pub fn set_value(&self, reg: &TypeRegistry, oid: Oid, value: Value) -> ModelResult<()> {
        let (qty, owner, old) = self.get(oid)?;
        let old_edges: HashSet<Edge> = self.collect_edges(reg, &qty, &old)?.into_iter().collect();
        let new_edges: HashSet<Edge> = self.collect_edges(reg, &qty, &value)?.into_iter().collect();
        // Validate/adopt additions *before* the destructive removals.
        for e in new_edges.difference(&old_edges) {
            self.add_edge(reg, oid, e)?;
        }
        self.rewrite_record(oid, owner, &value)?;
        for e in old_edges.difference(&new_edges) {
            self.remove_edge(oid, e)?;
            if let Edge::Own { child, .. } = e {
                // Exclusively owned and no longer held: the component dies.
                self.delete_object(reg, *child)?;
            }
        }
        Ok(())
    }

    /// Delete an object: cascades to `own ref` components, nulls out
    /// dangling `ref`s, removes dangling ref-set members.
    pub fn delete_object(&self, reg: &TypeRegistry, oid: Oid) -> ModelResult<()> {
        let mut visited = HashSet::new();
        self.delete_rec(reg, oid, &mut visited)
    }

    fn delete_rec(
        &self,
        reg: &TypeRegistry,
        oid: Oid,
        visited: &mut HashSet<Oid>,
    ) -> ModelResult<()> {
        if !visited.insert(oid) {
            return Ok(());
        }
        if !self.exists(oid)? {
            return Ok(()); // already cascaded away
        }
        let (qty, owner, value) = self.get(oid)?;

        // 0. If this object is an own-ref component deleted directly,
        //    detach it from its owner's value first (unless the owner is
        //    being deleted too).
        if !owner.is_null() && !visited.contains(&owner) {
            self.children
                .delete(self.pool(), &child_key(owner, oid), oid.0)?;
            if self.exists(owner)? {
                let (_, oowner, ovalue) = self.get(owner)?;
                let cleaned = null_out(&ovalue, oid);
                self.rewrite_record(owner, oowner, &cleaned)?;
            }
        }

        // 1. Cascade to owned components.
        let kids: Vec<Oid> = {
            let (lo, hi) = prefix_bounds(&be(oid));
            self.children
                .scan(self.pool().clone(), lo, hi)
                .map(|r| r.map(|(_, v)| Oid(v)))
                .collect::<Result<_, _>>()?
        };
        for kid in kids {
            self.delete_rec(reg, kid, visited)?;
        }

        // 2. Null out / remove dangling references to this object.
        let inbound: Vec<(u8, Oid, u64)> = {
            let (lo, hi) = prefix_bounds(&be(oid));
            self.backrefs
                .scan(self.pool().clone(), lo, hi)
                .map(|r| {
                    r.map(|(k, _)| {
                        let kind = k[8];
                        let mut h = [0u8; 8];
                        h.copy_from_slice(&k[9..17]);
                        let mut x = [0u8; 8];
                        x.copy_from_slice(&k[17..25]);
                        (kind, Oid(u64::from_be_bytes(h)), u64::from_be_bytes(x))
                    })
                })
                .collect::<Result<_, _>>()?
        };
        for (kind, holder, extra) in inbound {
            self.backrefs
                .delete(self.pool(), &backref_key(oid, kind, holder, extra), 0)?;
            if visited.contains(&holder) {
                continue; // holder is being deleted anyway
            }
            match kind {
                BK_OBJECT => {
                    if self.exists(holder)? {
                        let (_, howner, hvalue) = self.get(holder)?;
                        let nulled = null_out(&hvalue, oid);
                        self.rewrite_record(holder, howner, &nulled)?;
                    }
                }
                BK_MEMBER => {
                    // holder is a collection anchor; extra is the member rid.
                    let info = self.collections.read().get(&holder).copied();
                    if let Some(info) = info {
                        let rid = RecordId::unpack(extra);
                        let hf = HeapFile::open(info.file);
                        match self.write_ts() {
                            None => {
                                let _ = hf.delete(self.pool(), rid);
                            }
                            Some(ts) => {
                                if hf.delete_versioned(self.pool(), rid, ts).is_ok() {
                                    self.sm.txn().defer_reclaim(ReclaimOp::Record {
                                        file: info.file.0,
                                        rid,
                                    });
                                }
                            }
                        }
                    }
                }
                other => return Err(ModelError::Semantic(format!("bad backref kind {other}"))),
            }
        }

        // 3. Drop this object's outgoing edges.
        for e in self.collect_edges(reg, &qty, &value)? {
            self.remove_edge(oid, &e)?;
        }

        // 4. If it anchors a collection, destroy the members.
        let info = self.collections.write().remove(&oid);
        if let Some(info) = info {
            let members: Vec<(RecordId, Vec<u8>)> = HeapFile::open(info.file)
                .scan(self.pool().clone())
                .collect::<Result<_, _>>()?;
            let elem = self.qtype(info.elem);
            for (rid, bytes) in members {
                let member = valueio::from_bytes(&bytes)?;
                if let Value::Ref(m) = member {
                    self.backrefs.delete(
                        self.pool(),
                        &backref_key(m, BK_MEMBER, oid, rid.pack()),
                        0,
                    )?;
                    if elem.mode == Ownership::OwnRef {
                        self.children.delete(self.pool(), &child_key(oid, m), m.0)?;
                        self.delete_rec(reg, m, visited)?;
                    }
                }
            }
        }

        // 5. Remove record and identity.
        let entry = self.table.get(self.pool(), oid)?;
        match self.write_ts() {
            None => {
                self.sm.delete(entry.rid)?;
                self.table.free(self.pool(), oid)?;
            }
            Some(ts) => {
                // Versioned delete: end-stamp the record so snapshots
                // opened before `ts` still see it; the physical record
                // and the OID slot are reclaimed by vacuum once no live
                // snapshot can need them.
                HeapFile::open(self.file).delete_versioned(self.pool(), entry.rid, ts)?;
                let txn = self.sm.txn();
                txn.defer_reclaim(ReclaimOp::Record {
                    file: self.file.0,
                    rid: entry.rid,
                });
                txn.defer_reclaim(ReclaimOp::ObjectSlot { oid });
            }
        }
        Ok(())
    }

    // -- ownership ----------------------------------------------------------

    /// Make `owner` the exclusive owner of `child`.
    pub fn adopt(&self, child: Oid, owner: Oid) -> ModelResult<()> {
        let (_, current, value) = self.get(child)?;
        if current == owner {
            return Ok(());
        }
        if !current.is_null() {
            return Err(ModelError::Integrity(format!(
                "object {child} is already an own-ref component of {current}; \
                 own-ref objects cannot be shared"
            )));
        }
        self.rewrite_record(child, owner, &value)?;
        self.children
            .insert(self.pool(), &child_key(owner, child), child.0, false)?;
        Ok(())
    }

    /// Release `child` from `owner` without deleting it.
    pub fn orphan(&self, child: Oid, owner: Oid) -> ModelResult<()> {
        let (_, current, value) = self.get(child)?;
        if current != owner {
            return Err(ModelError::Integrity(format!(
                "object {child} is not owned by {owner}"
            )));
        }
        self.rewrite_record(child, Oid::NULL, &value)?;
        self.children
            .delete(self.pool(), &child_key(owner, child), child.0)?;
        Ok(())
    }

    // -- integrity edges ----------------------------------------------------

    /// Extract integrity edges from a value, guided by the declared type.
    fn collect_edges(
        &self,
        reg: &TypeRegistry,
        qty: &QualType,
        value: &Value,
    ) -> ModelResult<Vec<Edge>> {
        let mut edges = Vec::new();
        self.walk_edges(reg, qty, value, &mut edges)?;
        Ok(edges)
    }

    fn walk_edges(
        &self,
        reg: &TypeRegistry,
        qty: &QualType,
        value: &Value,
        out: &mut Vec<Edge>,
    ) -> ModelResult<()> {
        match qty.mode {
            Ownership::Ref | Ownership::OwnRef => {
                let Type::Schema(declared) = qty.ty else {
                    return Err(ModelError::RefToValueType(reg.display_type(&qty.ty)));
                };
                match value {
                    Value::Null => Ok(()),
                    Value::Ref(oid) => {
                        out.push(if qty.mode == Ownership::Ref {
                            Edge::Ref {
                                target: *oid,
                                declared,
                            }
                        } else {
                            Edge::Own {
                                child: *oid,
                                declared,
                            }
                        });
                        Ok(())
                    }
                    other => Err(ModelError::TypeMismatch {
                        expected: reg.display_qual(qty),
                        got: other.kind().into(),
                    }),
                }
            }
            Ownership::Own => match (&qty.ty, value) {
                (Type::Schema(tid), Value::Tuple(fields)) => {
                    let st = reg.get(*tid);
                    for (f, a) in fields.iter().zip(st.attributes()) {
                        self.walk_edges(reg, &a.qty, f, out)?;
                    }
                    Ok(())
                }
                (Type::Tuple(attrs), Value::Tuple(fields)) => {
                    for (f, a) in fields.iter().zip(attrs.iter()) {
                        self.walk_edges(reg, &a.qty, f, out)?;
                    }
                    Ok(())
                }
                (Type::Set(elem), Value::Set(ms)) => {
                    for m in ms {
                        self.walk_edges(reg, elem, m, out)?;
                    }
                    Ok(())
                }
                (Type::Array(_, elem), Value::Array(items)) => {
                    for i in items {
                        self.walk_edges(reg, elem, i, out)?;
                    }
                    Ok(())
                }
                _ => Ok(()),
            },
        }
    }

    /// Validate that `target` is a live instance of (a subtype of)
    /// `declared`.
    fn check_target(&self, reg: &TypeRegistry, target: Oid, declared: TypeId) -> ModelResult<()> {
        let (qty, _, _) = self.get(target).map_err(|_| {
            ModelError::Integrity(format!(
                "reference target {target} does not exist (referenced objects \
                 must exist elsewhere in the database)"
            ))
        })?;
        match qty.ty {
            Type::Schema(t) if reg.is_subtype(t, declared) => Ok(()),
            other => Err(ModelError::TypeMismatch {
                expected: reg.get(declared).name.clone(),
                got: reg.display_type(&other),
            }),
        }
    }

    fn add_edge(&self, reg: &TypeRegistry, source: Oid, edge: &Edge) -> ModelResult<()> {
        match edge {
            Edge::Ref { target, declared } => {
                self.check_target(reg, *target, *declared)?;
                self.backrefs.insert(
                    self.pool(),
                    &backref_key(*target, BK_OBJECT, source, 0),
                    0,
                    false,
                )?;
                Ok(())
            }
            Edge::Own { child, declared } => {
                self.check_target(reg, *child, *declared)?;
                self.adopt(*child, source)?;
                Ok(())
            }
        }
    }

    fn remove_edge(&self, source: Oid, edge: &Edge) -> ModelResult<()> {
        match edge {
            Edge::Ref { target, .. } => {
                self.backrefs.delete(
                    self.pool(),
                    &backref_key(*target, BK_OBJECT, source, 0),
                    0,
                )?;
                Ok(())
            }
            Edge::Own { child, .. } => {
                self.children
                    .delete(self.pool(), &child_key(source, *child), child.0)?;
                Ok(())
            }
        }
    }

    // -- collections ----------------------------------------------------------

    /// Create a named collection (a top-level set object): returns its
    /// anchor OID.
    pub fn create_collection(&self, elem: &QualType) -> ModelResult<Oid> {
        let file = self.sm.create_file()?;
        let coll_ty = QualType::own(Type::Set(Box::new(elem.clone())));
        let type_id = self.intern(&coll_ty);
        let rec = self.encode_payload(Oid::NULL, &Value::Null)?;
        let rid = self.sm.insert(self.file, &rec)?;
        let anchor = self.table.allocate(self.pool(), rid, type_id)?;
        self.collections.write().insert(
            anchor,
            CollectionInfo {
                file,
                elem: self.intern(elem),
            },
        );
        Ok(anchor)
    }

    /// Whether an OID anchors a collection.
    pub fn is_collection(&self, oid: Oid) -> bool {
        self.collections.read().contains_key(&oid)
    }

    /// The element type of a collection.
    pub fn collection_elem(&self, anchor: Oid) -> ModelResult<QualType> {
        let info = self.collection_info(anchor)?;
        Ok(self.qtype(info.elem))
    }

    fn collection_info(&self, anchor: Oid) -> ModelResult<CollectionInfo> {
        self.collections
            .read()
            .get(&anchor)
            .copied()
            .ok_or_else(|| ModelError::Semantic(format!("{anchor} is not a collection")))
    }

    /// Append a member. For `own`-mode elements the value is stored
    /// inline; for `ref` / `own ref` it must be a `Value::Ref` (ref-sets
    /// dedupe by OID; `own ref` members are adopted).
    pub fn append_member(
        &self,
        reg: &TypeRegistry,
        anchor: Oid,
        value: Value,
    ) -> ModelResult<RecordId> {
        let info = self.collection_info(anchor)?;
        let elem = self.qtype(info.elem);
        match elem.mode {
            Ownership::Own => {
                let rid = self.insert_record(info.file, &valueio::to_bytes(&value))?;
                Ok(rid)
            }
            Ownership::Ref | Ownership::OwnRef => {
                let Value::Ref(target) = value else {
                    return Err(ModelError::TypeMismatch {
                        expected: "a reference".into(),
                        got: value.kind().into(),
                    });
                };
                let Type::Schema(declared) = elem.ty else {
                    return Err(ModelError::RefToValueType("collection element".into()));
                };
                self.check_target(reg, target, declared)?;
                // Sets have no duplicates: an existing membership backref
                // for this (target, anchor) means the member is present.
                let (lo, hi) = {
                    let mut p = Vec::with_capacity(17);
                    p.extend_from_slice(&be(target));
                    p.push(BK_MEMBER);
                    p.extend_from_slice(&be(anchor));
                    prefix_bounds(&p)
                };
                let dup = self
                    .backrefs
                    .scan(self.pool().clone(), lo, hi)
                    .next()
                    .transpose()?
                    .is_some();
                if dup {
                    return Err(ModelError::Integrity(format!(
                        "{target} is already a member of this set"
                    )));
                }
                if elem.mode == Ownership::OwnRef {
                    self.adopt(target, anchor)?;
                }
                let rid = self.insert_record(info.file, &valueio::to_bytes(&value))?;
                self.backrefs.insert(
                    self.pool(),
                    &backref_key(target, BK_MEMBER, anchor, rid.pack()),
                    0,
                    false,
                )?;
                Ok(rid)
            }
        }
    }

    /// Iterate over `(rid, value)` members of a collection.
    pub fn scan_members(
        &self,
        anchor: Oid,
    ) -> ModelResult<impl Iterator<Item = ModelResult<(RecordId, Value)>>> {
        let info = self.collection_info(anchor)?;
        let snap = self.current_snap();
        Ok(HeapFile::open(info.file)
            .scan(self.pool().clone())
            .with_snapshot(snap)
            .map(|r| {
                let (rid, bytes) = r?;
                Ok((rid, valueio::from_bytes(&bytes)?))
            }))
    }

    /// Batched member scan: decodes records a batch at a time on top of
    /// the heap file's page-at-a-time [`HeapScan::next_batch`](exodus_storage::heap::HeapScan::next_batch).
    pub fn scan_members_batch(&self, anchor: Oid) -> ModelResult<MemberScan> {
        self.scan_members_batch_at(anchor, self.current_snap())
    }

    /// Like [`ObjectStore::scan_members_batch`], but visiting only the
    /// member versions visible at `snap`.
    pub fn scan_members_batch_at(&self, anchor: Oid, snap: u64) -> ModelResult<MemberScan> {
        let info = self.collection_info(anchor)?;
        Ok(MemberScan::new(
            HeapFile::open(info.file)
                .scan(self.pool().clone())
                .with_snapshot(snap),
        ))
    }

    /// Split a collection's member scan into at most `k` partitioned
    /// scans over contiguous heap-page runs — the morsel sources for
    /// parallel query execution. Concatenating the partitions in order
    /// reproduces [`ObjectStore::scan_members_batch`]'s member order; an
    /// empty collection yields no partitions.
    pub fn scan_members_partitions(&self, anchor: Oid, k: usize) -> ModelResult<Vec<MemberScan>> {
        self.scan_members_partitions_at(anchor, k, self.current_snap())
    }

    /// Like [`ObjectStore::scan_members_partitions`], but each partition
    /// visits only the member versions visible at `snap`.
    pub fn scan_members_partitions_at(
        &self,
        anchor: Oid,
        k: usize,
        snap: u64,
    ) -> ModelResult<Vec<MemberScan>> {
        let info = self.collection_info(anchor)?;
        Ok(HeapFile::open(info.file)
            .partitions(self.pool(), k)?
            .into_iter()
            .map(|s| MemberScan::new(s.with_snapshot(snap)))
            .collect())
    }

    /// Number of members.
    pub fn member_count(&self, anchor: Oid) -> ModelResult<u64> {
        let info = self.collection_info(anchor)?;
        Ok(HeapFile::open(info.file).record_count(self.pool())?)
    }

    /// Remove a member by record id. `own ref` members are deleted
    /// (exclusive ownership); `ref` members are merely dropped from the
    /// set; `own` members vanish with their record.
    pub fn remove_member(&self, reg: &TypeRegistry, anchor: Oid, rid: RecordId) -> ModelResult<()> {
        let info = self.collection_info(anchor)?;
        let elem = self.qtype(info.elem);
        let hf = HeapFile::open(info.file);
        let bytes = self.sm.read(rid)?;
        let member = valueio::from_bytes(&bytes)?;
        match self.write_ts() {
            None => hf.delete(self.pool(), rid)?,
            Some(ts) => {
                hf.delete_versioned(self.pool(), rid, ts)?;
                self.sm.txn().defer_reclaim(ReclaimOp::Record {
                    file: info.file.0,
                    rid,
                });
            }
        }
        if let Value::Ref(target) = member {
            self.backrefs.delete(
                self.pool(),
                &backref_key(target, BK_MEMBER, anchor, rid.pack()),
                0,
            )?;
            if elem.mode == Ownership::OwnRef {
                self.children
                    .delete(self.pool(), &child_key(anchor, target), target.0)?;
                // Rewrite owner so delete_object's cascade bookkeeping stays
                // consistent, then delete the exclusively-owned component.
                let (_, _, v) = self.get(target)?;
                self.rewrite_record(target, Oid::NULL, &v)?;
                self.delete_object(reg, target)?;
            }
        }
        Ok(())
    }

    /// Update an `own`-mode member in place (the record may move).
    pub fn update_member(
        &self,
        anchor: Oid,
        rid: RecordId,
        value: &Value,
    ) -> ModelResult<RecordId> {
        let info = self.collection_info(anchor)?;
        let elem = self.qtype(info.elem);
        if elem.mode != Ownership::Own {
            return Err(ModelError::Semantic(
                "update_member applies to own-mode members; update the object instead".into(),
            ));
        }
        let hf = HeapFile::open(info.file);
        let bytes = valueio::to_bytes(value);
        match self.write_ts() {
            None => Ok(hf.update(self.pool(), rid, &bytes)?),
            Some(ts) => {
                // Versioned update: members are scan-addressed (no OID), so
                // instead of chaining we insert a new version and end-stamp
                // the old record; snapshot scans pick exactly one of them.
                let new_rid = hf.insert_at(self.pool(), &bytes, ts)?;
                hf.delete_versioned(self.pool(), rid, ts)?;
                self.sm.txn().defer_reclaim(ReclaimOp::Record {
                    file: info.file.0,
                    rid,
                });
                Ok(new_rid)
            }
        }
    }

    /// Collections an object is currently a member of:
    /// `(anchor, member record id)` pairs.
    pub fn memberships(&self, oid: Oid) -> ModelResult<Vec<(Oid, RecordId)>> {
        let mut prefix = Vec::with_capacity(9);
        prefix.extend_from_slice(&be(oid));
        prefix.push(BK_MEMBER);
        let (lo, hi) = prefix_bounds(&prefix);
        self.backrefs
            .scan(self.pool().clone(), lo, hi)
            .map(|r| {
                let (k, _) = r?;
                let mut h = [0u8; 8];
                h.copy_from_slice(&k[9..17]);
                let mut x = [0u8; 8];
                x.copy_from_slice(&k[17..25]);
                Ok((
                    Oid(u64::from_be_bytes(h)),
                    RecordId::unpack(u64::from_be_bytes(x)),
                ))
            })
            .collect()
    }

    // -- vacuum --------------------------------------------------------------

    /// Physically reclaim superseded record versions, freed OID slots and
    /// stale chain entries whose commit timestamps are at or below the
    /// reclaim watermark (no live snapshot can still need them). Runs
    /// inside an opportunistic write transaction: if a writer is active
    /// this is a no-op. Returns the number of reclaim ops applied.
    ///
    /// LOB pages referenced by reclaimed versions are intentionally left
    /// behind (a leak bounded by update traffic on LOB-sized values);
    /// reclaiming them would require a LOB refcount the format lacks.
    pub fn vacuum(&self) -> ModelResult<usize> {
        if self.sm.txn().pending_reclaims() == 0 {
            return Ok(0);
        }
        let Some(txn) = self.sm.try_begin_txn()? else {
            return Ok(0);
        };
        let ripe = self.sm.txn().take_ripe();
        if ripe.is_empty() {
            txn.abort()?;
            return Ok(0);
        }
        let applied = ripe.len();
        for r in &ripe {
            match r.op {
                // The record counter was already decremented when the
                // version was end-stamped, so the count-free delete is
                // the right one here.
                ReclaimOp::Record { rid, .. } => {
                    let _ = heap::delete_record(self.pool(), rid);
                }
                ReclaimOp::ObjectSlot { oid } => {
                    let _ = self.table.free(self.pool(), oid);
                }
                ReclaimOp::ChainEntry { oid, rid } => {
                    self.sm.txn().remove_chain(oid, rid);
                }
            }
        }
        txn.commit()?;
        Ok(applied)
    }

    // -- equality -------------------------------------------------------------

    /// Recursive value equality in the sense of \[Banc86\]: references are
    /// chased and compared by content. (`is` — identity — is plain `==`
    /// on `Value::Ref`.)
    pub fn deep_eq(&self, a: &Value, b: &Value) -> ModelResult<bool> {
        let mut seen = HashSet::new();
        self.deep_eq_rec(a, b, &mut seen)
    }

    fn deep_eq_rec(
        &self,
        a: &Value,
        b: &Value,
        seen: &mut HashSet<(Oid, Oid)>,
    ) -> ModelResult<bool> {
        match (a, b) {
            (Value::Ref(x), Value::Ref(y)) => {
                if x == y || !seen.insert((*x, *y)) {
                    return Ok(true);
                }
                let va = self.value_of(*x)?;
                let vb = self.value_of(*y)?;
                self.deep_eq_rec(&va, &vb, seen)
            }
            (Value::Ref(x), other) | (other, Value::Ref(x)) => {
                let v = self.value_of(*x)?;
                self.deep_eq_rec(&v, other, seen)
            }
            (Value::Tuple(xs), Value::Tuple(ys)) | (Value::Array(xs), Value::Array(ys)) => {
                if xs.len() != ys.len() {
                    return Ok(false);
                }
                for (x, y) in xs.iter().zip(ys) {
                    if !self.deep_eq_rec(x, y, seen)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            (Value::Set(xs), Value::Set(ys)) => {
                if xs.len() != ys.len() {
                    return Ok(false);
                }
                // Order-insensitive matching.
                let mut used = vec![false; ys.len()];
                'outer: for x in xs {
                    for (i, y) in ys.iter().enumerate() {
                        if !used[i] && self.deep_eq_rec(x, y, seen)? {
                            used[i] = true;
                            continue 'outer;
                        }
                    }
                    return Ok(false);
                }
                Ok(true)
            }
            _ => Ok(a == b),
        }
    }
}

/// Replace every `Ref(target)` in `v` with `Null` (GEM null-out).
/// A batched collection-member scan (see
/// [`ObjectStore::scan_members_batch`]).
pub struct MemberScan {
    scan: exodus_storage::heap::HeapScan,
    /// Reused record arena: one allocation per batch refill instead of
    /// one `Vec<u8>` per record.
    scratch: exodus_storage::heap::RecordBatch,
}

impl MemberScan {
    fn new(scan: exodus_storage::heap::HeapScan) -> MemberScan {
        MemberScan {
            scan,
            scratch: exodus_storage::heap::RecordBatch::new(),
        }
    }

    /// Decode up to `n` more `(rid, value)` members. Returns an empty
    /// vector when the collection is exhausted.
    pub fn next_batch(&mut self, n: usize) -> ModelResult<Vec<(RecordId, Value)>> {
        self.scan.next_batch_into(n, &mut self.scratch)?;
        self.scratch
            .iter()
            .map(|(rid, bytes)| Ok((rid, valueio::from_bytes(bytes)?)))
            .collect()
    }
}

fn null_out(v: &Value, target: Oid) -> Value {
    match v {
        Value::Ref(o) if *o == target => Value::Null,
        Value::Tuple(fs) => Value::Tuple(fs.iter().map(|f| null_out(f, target)).collect()),
        Value::Set(ms) => Value::Set(
            ms.iter()
                .filter(|m| !matches!(m, Value::Ref(o) if *o == target))
                .map(|m| null_out(m, target))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(|i| null_out(i, target)).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Attribute;

    struct Fixture {
        reg: TypeRegistry,
        store: ObjectStore,
        person: TypeId,
        dept: TypeId,
        employee: TypeId,
    }

    /// The paper's running schema: Person, Department, Employee with
    /// `dept: ref Department` and `kids: { own ref Person }`.
    fn fixture() -> Fixture {
        let mut reg = TypeRegistry::new();
        let person = reg
            .define(
                "Person",
                vec![],
                vec![
                    Attribute::own("name", Type::varchar()),
                    Attribute::own("age", Type::int4()),
                ],
            )
            .unwrap();
        let dept = reg
            .define(
                "Department",
                vec![],
                vec![
                    Attribute::own("dname", Type::varchar()),
                    Attribute::own("floor", Type::int4()),
                ],
            )
            .unwrap();
        let employee = reg
            .define(
                "Employee",
                vec![crate::schema::InheritSpec::plain("Person")],
                vec![
                    Attribute::own("salary", Type::float8()),
                    Attribute::reference("dept", Type::Schema(dept)),
                    Attribute::own(
                        "kids",
                        Type::Set(Box::new(QualType::own_ref(Type::Schema(person)))),
                    ),
                ],
            )
            .unwrap();
        let store = ObjectStore::new(StorageManager::in_memory(256)).unwrap();
        Fixture {
            reg,
            store,
            person,
            dept,
            employee,
        }
    }

    fn person_v(name: &str, age: i64) -> Value {
        Value::Tuple(vec![Value::str(name), Value::Int(age)])
    }

    fn employee_v(name: &str, age: i64, salary: f64, dept: Value, kids: Vec<Value>) -> Value {
        Value::Tuple(vec![
            Value::str(name),
            Value::Int(age),
            Value::Float(salary),
            dept,
            Value::Set(kids),
        ])
    }

    #[test]
    fn create_and_get_object() {
        let f = fixture();
        let qty = QualType::own(Type::Schema(f.person));
        let oid = f
            .store
            .create_object(&f.reg, &qty, person_v("ann", 30))
            .unwrap();
        let (got_qty, owner, v) = f.store.get(oid).unwrap();
        assert_eq!(got_qty, qty);
        assert!(owner.is_null());
        assert_eq!(v, person_v("ann", 30));
        assert!(f.store.exists(oid).unwrap());
    }

    #[test]
    fn ref_must_target_live_object_of_right_type() {
        let f = fixture();
        let d = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.dept)),
                Value::Tuple(vec![Value::str("toy"), Value::Int(2)]),
            )
            .unwrap();
        let e_qty = QualType::own(Type::Schema(f.employee));
        // Valid: dept ref to a Department.
        f.store
            .create_object(
                &f.reg,
                &e_qty,
                employee_v("bob", 40, 50e3, Value::Ref(d), vec![]),
            )
            .unwrap();
        // Dangling ref rejected.
        let err = f
            .store
            .create_object(
                &f.reg,
                &e_qty,
                employee_v("eve", 35, 60e3, Value::Ref(Oid(999)), vec![]),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::Integrity(_)));
        // Wrong-type ref rejected (a Person where a Department is needed).
        let p = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.person)),
                person_v("kid", 5),
            )
            .unwrap();
        let err = f
            .store
            .create_object(
                &f.reg,
                &e_qty,
                employee_v("sam", 20, 1e3, Value::Ref(p), vec![]),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn delete_nulls_out_dangling_refs() {
        // "referential integrity and null values will be handled in a
        // manner similar to GEM".
        let f = fixture();
        let d = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.dept)),
                Value::Tuple(vec![Value::str("toy"), Value::Int(2)]),
            )
            .unwrap();
        let e = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.employee)),
                employee_v("bob", 40, 50e3, Value::Ref(d), vec![]),
            )
            .unwrap();
        f.store.delete_object(&f.reg, d).unwrap();
        assert!(!f.store.exists(d).unwrap());
        let (_, _, v) = f.store.get(e).unwrap();
        assert_eq!(v, employee_v("bob", 40, 50e3, Value::Null, vec![]));
    }

    #[test]
    fn own_ref_cascade_on_owner_delete() {
        // "if an employee is deleted, so are his or her kids".
        let f = fixture();
        let kid1 = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.person)),
                person_v("k1", 5),
            )
            .unwrap();
        let kid2 = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.person)),
                person_v("k2", 7),
            )
            .unwrap();
        let e = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.employee)),
                employee_v(
                    "bob",
                    40,
                    50e3,
                    Value::Null,
                    vec![Value::Ref(kid1), Value::Ref(kid2)],
                ),
            )
            .unwrap();
        assert_eq!(f.store.owner_of(kid1).unwrap(), e);
        f.store.delete_object(&f.reg, e).unwrap();
        assert!(!f.store.exists(kid1).unwrap());
        assert!(!f.store.exists(kid2).unwrap());
    }

    #[test]
    fn own_ref_exclusivity() {
        // "a Person instance in the kids set of one Employee instance
        // cannot be in the kids set of another Employee instance".
        let f = fixture();
        let kid = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.person)),
                person_v("k", 5),
            )
            .unwrap();
        let e_qty = QualType::own(Type::Schema(f.employee));
        f.store
            .create_object(
                &f.reg,
                &e_qty,
                employee_v("a", 40, 1e3, Value::Null, vec![Value::Ref(kid)]),
            )
            .unwrap();
        let err = f
            .store
            .create_object(
                &f.reg,
                &e_qty,
                employee_v("b", 41, 1e3, Value::Null, vec![Value::Ref(kid)]),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::Integrity(_)));
    }

    #[test]
    fn own_ref_component_still_referenceable() {
        // Own-ref components have identity: other objects may `ref` them;
        // when the owner dies the component dies and those refs null out.
        let f = fixture();
        let mut reg = fixture().reg;
        let _ = &mut reg;
        let kid = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.person)),
                person_v("k", 5),
            )
            .unwrap();
        let e = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.employee)),
                employee_v("a", 40, 1e3, Value::Null, vec![Value::Ref(kid)]),
            )
            .unwrap();
        // A second employee *refs* the kid via dept? dept is Department;
        // instead make a Person-typed ref through a fresh type: reuse
        // Employee.kids is own-ref, so use deep_eq-style check through a
        // plain object holding a ref: model it as an anonymous tuple type.
        // Simpler: verify set_value cascade: replacing kids deletes the kid.
        f.store
            .set_value(&f.reg, e, employee_v("a", 40, 1e3, Value::Null, vec![]))
            .unwrap();
        assert!(
            !f.store.exists(kid).unwrap(),
            "removed own-ref component dies"
        );
    }

    #[test]
    fn set_value_reindexes_refs() {
        let f = fixture();
        let d1 = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.dept)),
                Value::Tuple(vec![Value::str("toy"), Value::Int(2)]),
            )
            .unwrap();
        let d2 = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.dept)),
                Value::Tuple(vec![Value::str("shoe"), Value::Int(1)]),
            )
            .unwrap();
        let e = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.employee)),
                employee_v("bob", 40, 50e3, Value::Ref(d1), vec![]),
            )
            .unwrap();
        f.store
            .set_value(
                &f.reg,
                e,
                employee_v("bob", 40, 50e3, Value::Ref(d2), vec![]),
            )
            .unwrap();
        // Deleting d1 must not touch e; deleting d2 nulls e's dept.
        f.store.delete_object(&f.reg, d1).unwrap();
        assert_eq!(
            f.store.get(e).unwrap().2,
            employee_v("bob", 40, 50e3, Value::Ref(d2), vec![])
        );
        f.store.delete_object(&f.reg, d2).unwrap();
        assert_eq!(
            f.store.get(e).unwrap().2,
            employee_v("bob", 40, 50e3, Value::Null, vec![])
        );
    }

    #[test]
    fn collections_own_mode() {
        let f = fixture();
        let anchor = f
            .store
            .create_collection(&QualType::own(Type::Schema(f.person)))
            .unwrap();
        for i in 0..10 {
            f.store
                .append_member(&f.reg, anchor, person_v(&format!("p{i}"), 20 + i))
                .unwrap();
        }
        assert_eq!(f.store.member_count(anchor).unwrap(), 10);
        let members: Vec<Value> = f
            .store
            .scan_members(anchor)
            .unwrap()
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(members.len(), 10);
        assert_eq!(members[0], person_v("p0", 20));
    }

    #[test]
    fn collections_ref_mode_dedupe_and_dangle() {
        let f = fixture();
        let p = f
            .store
            .create_object(
                &f.reg,
                &QualType::own(Type::Schema(f.person)),
                person_v("ann", 30),
            )
            .unwrap();
        let anchor = f
            .store
            .create_collection(&QualType::reference(Type::Schema(f.person)))
            .unwrap();
        f.store
            .append_member(&f.reg, anchor, Value::Ref(p))
            .unwrap();
        let err = f
            .store
            .append_member(&f.reg, anchor, Value::Ref(p))
            .unwrap_err();
        assert!(
            matches!(err, ModelError::Integrity(_)),
            "sets dedupe by identity"
        );
        // Deleting the object removes the dangling member.
        f.store.delete_object(&f.reg, p).unwrap();
        assert_eq!(f.store.member_count(anchor).unwrap(), 0);
    }

    #[test]
    fn collections_own_ref_mode_cascade() {
        let f = fixture();
        let e_qty = QualType::own(Type::Schema(f.employee));
        let e1 = f
            .store
            .create_object(
                &f.reg,
                &e_qty,
                employee_v("a", 30, 1e3, Value::Null, vec![]),
            )
            .unwrap();
        let e2 = f
            .store
            .create_object(
                &f.reg,
                &e_qty,
                employee_v("b", 31, 2e3, Value::Null, vec![]),
            )
            .unwrap();
        let anchor = f
            .store
            .create_collection(&QualType::own_ref(Type::Schema(f.employee)))
            .unwrap();
        f.store
            .append_member(&f.reg, anchor, Value::Ref(e1))
            .unwrap();
        f.store
            .append_member(&f.reg, anchor, Value::Ref(e2))
            .unwrap();
        assert_eq!(f.store.owner_of(e1).unwrap(), anchor);
        // Exclusivity across collections too.
        let other = f
            .store
            .create_collection(&QualType::own_ref(Type::Schema(f.employee)))
            .unwrap();
        assert!(f
            .store
            .append_member(&f.reg, other, Value::Ref(e1))
            .is_err());
        // Removing a member deletes the owned object.
        let rid = f
            .store
            .scan_members(anchor)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .0;
        f.store.remove_member(&f.reg, anchor, rid).unwrap();
        assert!(!f.store.exists(e1).unwrap());
        // Destroying the collection cascades to remaining members.
        f.store.delete_object(&f.reg, anchor).unwrap();
        assert!(!f.store.exists(e2).unwrap());
    }

    #[test]
    fn deep_vs_identity_equality() {
        let f = fixture();
        let q = QualType::own(Type::Schema(f.person));
        let a = f
            .store
            .create_object(&f.reg, &q, person_v("ann", 30))
            .unwrap();
        let b = f
            .store
            .create_object(&f.reg, &q, person_v("ann", 30))
            .unwrap();
        // is: different objects.
        assert_ne!(Value::Ref(a), Value::Ref(b));
        // deep equality in the sense of [Banc86]: equal contents.
        assert!(f.store.deep_eq(&Value::Ref(a), &Value::Ref(b)).unwrap());
        f.store.set_value(&f.reg, b, person_v("ann", 31)).unwrap();
        assert!(!f.store.deep_eq(&Value::Ref(a), &Value::Ref(b)).unwrap());
        // Sets compare order-insensitively.
        assert!(f
            .store
            .deep_eq(
                &Value::Set(vec![Value::Int(1), Value::Int(2)]),
                &Value::Set(vec![Value::Int(2), Value::Int(1)]),
            )
            .unwrap());
    }

    #[test]
    fn large_values_spill_to_lob() {
        let f = fixture();
        let q = QualType::own(Type::varchar());
        let big = "x".repeat(50_000);
        let oid = f.store.create_object(&f.reg, &q, Value::str(&big)).unwrap();
        assert_eq!(f.store.value_of(oid).unwrap(), Value::str(&big));
        // Update back to small and re-read.
        f.store.set_value(&f.reg, oid, Value::str("small")).unwrap();
        assert_eq!(f.store.value_of(oid).unwrap(), Value::str("small"));
    }
}
