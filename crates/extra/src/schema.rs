//! Schema types and the type registry: named tuple types with multiple
//! inheritance.
//!
//! EXTRA resolves inheritance conflicts by **renaming only** — "we provide
//! no automatic resolution" (paper §2.3, Figure 3). A diamond (the same
//! attribute reaching a type along two paths from one ancestor) is not a
//! conflict; two *distinct* attributes arriving under one name is, and
//! must be renamed in the `inherits` clause.
//!
//! The registry also enforces that `ref` / `own ref` qualify schema types
//! only (object identity exists only for schema-type instances), and it
//! supports local *specialization*: a subtype may redeclare an inherited
//! attribute at a subtype of its original type.

use std::collections::HashMap;
use std::fmt;

use crate::error::{ModelError, ModelResult};
use crate::types::{Attribute, Ownership, QualType, Type};

/// Identifies a schema type in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Provenance of an inherited attribute: the type that originally declared
/// it and its original name. Used to tell diamonds from true conflicts.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Origin {
    declared_in: TypeId,
    original_name: String,
}

/// One flattened attribute with provenance.
#[derive(Debug, Clone)]
struct FlatAttr {
    attr: Attribute,
    origin: Origin,
}

/// An `inherits` clause: base type plus renames (`rename a to b`).
#[derive(Debug, Clone)]
pub struct InheritSpec {
    /// The base type's name.
    pub base: String,
    /// `(old name, new name)` pairs.
    pub renames: Vec<(String, String)>,
}

impl InheritSpec {
    /// Inherit without renames.
    pub fn plain(base: &str) -> InheritSpec {
        InheritSpec {
            base: base.into(),
            renames: Vec::new(),
        }
    }

    /// Inherit with renames.
    pub fn renamed(base: &str, renames: &[(&str, &str)]) -> InheritSpec {
        InheritSpec {
            base: base.into(),
            renames: renames
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        }
    }
}

/// A defined schema (tuple) type.
#[derive(Debug, Clone)]
pub struct SchemaType {
    /// Registry id.
    pub id: TypeId,
    /// Type name.
    pub name: String,
    /// Direct supertypes.
    pub supertypes: Vec<TypeId>,
    /// Locally declared attributes.
    pub local_attrs: Vec<Attribute>,
    /// Flattened attributes: inherited (post-rename, in base order) then
    /// local additions.
    flat: Vec<FlatAttr>,
}

impl SchemaType {
    /// All attributes (inherited + local), in order.
    pub fn attributes(&self) -> impl Iterator<Item = &Attribute> {
        self.flat.iter().map(|f| &f.attr)
    }

    /// Number of attributes (tuple width).
    pub fn arity(&self) -> usize {
        self.flat.len()
    }

    /// Look up an attribute by name, returning `(position, attribute)`.
    pub fn attribute(&self, name: &str) -> Option<(usize, &Attribute)> {
        self.flat
            .iter()
            .enumerate()
            .find(|(_, f)| f.attr.name == name)
            .map(|(i, f)| (i, &f.attr))
    }
}

/// The schema-type registry.
#[derive(Debug, Default)]
pub struct TypeRegistry {
    types: Vec<SchemaType>,
    by_name: HashMap<String, TypeId>,
}

impl TypeRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a type id by name.
    pub fn lookup(&self, name: &str) -> ModelResult<TypeId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownType(name.into()))
    }

    /// Whether a name is defined.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Get a type by id.
    pub fn get(&self, id: TypeId) -> &SchemaType {
        &self.types[id.0 as usize]
    }

    /// Get a type by name.
    pub fn get_by_name(&self, name: &str) -> ModelResult<&SchemaType> {
        Ok(self.get(self.lookup(name)?))
    }

    /// All defined types.
    pub fn iter(&self) -> impl Iterator<Item = &SchemaType> {
        self.types.iter()
    }

    /// Number of defined types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether no types are defined.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// `sub` is-a `sup` (reflexive, transitive).
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        if sub == sup {
            return true;
        }
        self.get(sub)
            .supertypes
            .iter()
            .any(|&s| self.is_subtype(s, sup))
    }

    /// Validate that ref/own-ref modes qualify schema types only, and that
    /// nested constructor types are themselves well formed.
    fn validate_qty(&self, qty: &QualType) -> ModelResult<()> {
        if qty.mode != Ownership::Own && !matches!(qty.ty, Type::Schema(_)) {
            return Err(ModelError::RefToValueType(self.display_type(&qty.ty)));
        }
        match &qty.ty {
            Type::Set(e) | Type::Array(_, e) => self.validate_qty(e),
            Type::Tuple(attrs) => {
                for a in attrs {
                    self.validate_qty(&a.qty)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Whether `a` is assignable where `b` is expected (covariant on schema
    /// types through the subtype lattice, invariant elsewhere).
    pub fn assignable(&self, a: &Type, b: &Type) -> bool {
        match (a, b) {
            (Type::Unknown, _) | (_, Type::Unknown) => true,
            (Type::Schema(x), Type::Schema(y)) => self.is_subtype(*x, *y),
            (Type::Set(x), Type::Set(y)) => x.mode == y.mode && self.assignable(&x.ty, &y.ty),
            (Type::Array(n, x), Type::Array(m, y)) => {
                n == m && x.mode == y.mode && self.assignable(&x.ty, &y.ty)
            }
            _ => a == b,
        }
    }

    /// Forward-declare a type name (for self-referential definitions like
    /// `define type Person (kids: { own ref Person })`). Must be followed
    /// by [`TypeRegistry::complete`]; an incomplete declaration behaves as
    /// an attribute-less type.
    pub fn declare(&mut self, name: &str) -> ModelResult<TypeId> {
        if self.by_name.contains_key(name) {
            return Err(ModelError::DuplicateType(name.into()));
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(SchemaType {
            id,
            name: name.into(),
            supertypes: Vec::new(),
            local_attrs: Vec::new(),
            flat: Vec::new(),
        });
        self.by_name.insert(name.into(), id);
        Ok(id)
    }

    /// Define a new schema type (`define type Name inherits ... ( attrs )`).
    pub fn define(
        &mut self,
        name: &str,
        inherits: Vec<InheritSpec>,
        attrs: Vec<Attribute>,
    ) -> ModelResult<TypeId> {
        let id = self.declare(name)?;
        match self.complete(id, inherits, attrs) {
            Ok(()) => Ok(id),
            Err(e) => {
                self.by_name.remove(name);
                Err(e)
            }
        }
    }

    /// Fill in a forward-declared type.
    pub fn complete(
        &mut self,
        new_id: TypeId,
        inherits: Vec<InheritSpec>,
        attrs: Vec<Attribute>,
    ) -> ModelResult<()> {
        let name = self.get(new_id).name.clone();
        let name = name.as_str();
        let mut supertypes = Vec::with_capacity(inherits.len());
        let mut flat: Vec<FlatAttr> = Vec::new();

        for spec in &inherits {
            let base_id = self.lookup(&spec.base)?;
            supertypes.push(base_id);
            let base = self.get(base_id);
            // Validate renames against the base's attributes.
            for (old, _) in &spec.renames {
                if base.attribute(old).is_none() {
                    return Err(ModelError::BadRename {
                        base: spec.base.clone(),
                        attr: old.clone(),
                    });
                }
            }
            for fa in &base.flat {
                let mut attr = fa.attr.clone();
                if let Some((_, new_name)) = spec.renames.iter().find(|(old, _)| *old == attr.name)
                {
                    attr.name = new_name.clone();
                }
                // Merge with already-collected inherited attributes.
                if let Some(existing) = flat.iter().find(|f| f.attr.name == attr.name) {
                    if existing.origin == fa.origin {
                        continue; // diamond: same attribute along two paths
                    }
                    let from = vec![
                        self.get(existing.origin.declared_in).name.clone(),
                        self.get(fa.origin.declared_in).name.clone(),
                    ];
                    return Err(ModelError::InheritanceConflict {
                        attr: attr.name,
                        from,
                    });
                }
                flat.push(FlatAttr {
                    attr,
                    origin: fa.origin.clone(),
                });
            }
        }

        // Local attributes: additions, or specializations of inherited ones.
        for attr in &attrs {
            self.validate_qty(&attr.qty)?;
            if let Some(pos) = flat.iter().position(|f| f.attr.name == attr.name) {
                let inherited = &flat[pos].attr;
                let compatible = inherited.qty.mode == attr.qty.mode
                    && self.assignable(&attr.qty.ty, &inherited.qty.ty);
                if !compatible {
                    return Err(ModelError::InheritanceConflict {
                        attr: attr.name.clone(),
                        from: vec![
                            self.get(flat[pos].origin.declared_in).name.clone(),
                            name.to_string(),
                        ],
                    });
                }
                // Specialization: narrow the type, keep provenance.
                flat[pos].attr = attr.clone();
            } else {
                flat.push(FlatAttr {
                    attr: attr.clone(),
                    origin: Origin {
                        declared_in: new_id,
                        original_name: attr.name.clone(),
                    },
                });
            }
        }

        // Reject duplicate local names.
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(ModelError::InheritanceConflict {
                    attr: a.name.clone(),
                    from: vec![name.to_string(), name.to_string()],
                });
            }
        }

        let slot = &mut self.types[new_id.0 as usize];
        slot.supertypes = supertypes;
        slot.local_attrs = attrs;
        slot.flat = flat;
        Ok(())
    }

    /// Remove a type definition by name. The id remains allocated (stale
    /// `TypeId`s in values stay resolvable) but the name becomes free.
    /// The caller is responsible for checking that no other type or
    /// instance depends on it.
    pub fn undefine(&mut self, name: &str) -> ModelResult<()> {
        self.by_name
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ModelError::UnknownType(name.into()))
    }

    /// Whether any defined type inherits from or references `id` in its
    /// attributes (dependency check for `drop type`).
    pub fn has_dependents(&self, id: TypeId) -> bool {
        fn mentions(ty: &Type, id: TypeId) -> bool {
            match ty {
                Type::Schema(t) => *t == id,
                Type::Set(e) | Type::Array(_, e) => mentions(&e.ty, id),
                Type::Tuple(attrs) => attrs.iter().any(|a| mentions(&a.qty.ty, id)),
                _ => false,
            }
        }
        self.by_name.values().any(|&tid| {
            if tid == id {
                return false;
            }
            let t = self.get(tid);
            t.supertypes.contains(&id) || t.local_attrs.iter().any(|a| mentions(&a.qty.ty, id))
        })
    }

    /// Human-readable rendering of a type.
    pub fn display_type(&self, ty: &Type) -> String {
        match ty {
            Type::Base(b) => b.to_string(),
            Type::Adt(id) => format!("adt#{}", id.0),
            Type::Schema(id) => self.get(*id).name.clone(),
            Type::Tuple(attrs) => {
                let inner: Vec<String> = attrs
                    .iter()
                    .map(|a| format!("{}: {}", a.name, self.display_qual(&a.qty)))
                    .collect();
                format!("({})", inner.join(", "))
            }
            Type::Set(e) => format!("{{ {} }}", self.display_qual(e)),
            Type::Array(Some(n), e) => format!("[{n}] {}", self.display_qual(e)),
            Type::Array(None, e) => format!("[] {}", self.display_qual(e)),
            Type::Unknown => "unknown".into(),
        }
    }

    /// Human-readable rendering of a qualified type.
    pub fn display_qual(&self, qty: &QualType) -> String {
        match qty.mode {
            Ownership::Own => self.display_type(&qty.ty),
            mode => format!("{mode} {}", self.display_type(&qty.ty)),
        }
    }

    /// Serialize the registry's full state for a replication catalog
    /// image (see `docs/REPLICATION.md`). Everything round-trips —
    /// renames, specializations, undefined-but-allocated slots — because
    /// the flattened attribute lists are shipped as-is rather than
    /// rebuilt by replaying DDL.
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::typeio::{put_str, put_u32, write_attribute};
        let mut out = Vec::new();
        put_u32(&mut out, self.types.len() as u32);
        for t in &self.types {
            put_u32(&mut out, t.id.0);
            put_str(&mut out, &t.name);
            put_u32(&mut out, t.supertypes.len() as u32);
            for s in &t.supertypes {
                put_u32(&mut out, s.0);
            }
            put_u32(&mut out, t.local_attrs.len() as u32);
            for a in &t.local_attrs {
                write_attribute(a, &mut out);
            }
            put_u32(&mut out, t.flat.len() as u32);
            for f in &t.flat {
                write_attribute(&f.attr, &mut out);
                put_u32(&mut out, f.origin.declared_in.0);
                put_str(&mut out, &f.origin.original_name);
            }
        }
        put_u32(&mut out, self.by_name.len() as u32);
        for (name, id) in &self.by_name {
            put_str(&mut out, name);
            put_u32(&mut out, id.0);
        }
        out
    }

    /// Rebuild a registry from [`TypeRegistry::to_bytes`] output.
    pub fn from_bytes(buf: &[u8]) -> ModelResult<TypeRegistry> {
        use crate::typeio::{get_str, get_u32, read_attribute};
        let mut pos = 0;
        let n = get_u32(buf, &mut pos)?;
        let mut types = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = TypeId(get_u32(buf, &mut pos)?);
            let name = get_str(buf, &mut pos)?;
            let ns = get_u32(buf, &mut pos)?;
            let mut supertypes = Vec::with_capacity(ns as usize);
            for _ in 0..ns {
                supertypes.push(TypeId(get_u32(buf, &mut pos)?));
            }
            let nl = get_u32(buf, &mut pos)?;
            let mut local_attrs = Vec::with_capacity(nl as usize);
            for _ in 0..nl {
                local_attrs.push(read_attribute(buf, &mut pos)?);
            }
            let nf = get_u32(buf, &mut pos)?;
            let mut flat = Vec::with_capacity(nf as usize);
            for _ in 0..nf {
                let attr = read_attribute(buf, &mut pos)?;
                let declared_in = TypeId(get_u32(buf, &mut pos)?);
                let original_name = get_str(buf, &mut pos)?;
                flat.push(FlatAttr {
                    attr,
                    origin: Origin {
                        declared_in,
                        original_name,
                    },
                });
            }
            types.push(SchemaType {
                id,
                name,
                supertypes,
                local_attrs,
                flat,
            });
        }
        let nb = get_u32(buf, &mut pos)?;
        let mut by_name = HashMap::with_capacity(nb as usize);
        for _ in 0..nb {
            let name = get_str(buf, &mut pos)?;
            by_name.insert(name, TypeId(get_u32(buf, &mut pos)?));
        }
        Ok(TypeRegistry { types, by_name })
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BaseType;

    fn person_attrs() -> Vec<Attribute> {
        vec![
            Attribute::own("name", Type::varchar()),
            Attribute::own("age", Type::int4()),
        ]
    }

    #[test]
    fn define_and_lookup() {
        let mut reg = TypeRegistry::new();
        let id = reg.define("Person", vec![], person_attrs()).unwrap();
        assert_eq!(reg.lookup("Person").unwrap(), id);
        let t = reg.get(id);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.attribute("name").unwrap().0, 0);
        assert!(t.attribute("salary").is_none());
        assert!(matches!(
            reg.lookup("Nobody"),
            Err(ModelError::UnknownType(_))
        ));
    }

    #[test]
    fn duplicate_type_rejected() {
        let mut reg = TypeRegistry::new();
        reg.define("Person", vec![], person_attrs()).unwrap();
        assert!(matches!(
            reg.define("Person", vec![], vec![]),
            Err(ModelError::DuplicateType(_))
        ));
    }

    #[test]
    fn single_inheritance_flattens() {
        let mut reg = TypeRegistry::new();
        let person = reg.define("Person", vec![], person_attrs()).unwrap();
        let emp = reg
            .define(
                "Employee",
                vec![InheritSpec::plain("Person")],
                vec![Attribute::own("salary", Type::float8())],
            )
            .unwrap();
        let t = reg.get(emp);
        assert_eq!(t.arity(), 3);
        assert_eq!(
            t.attributes().map(|a| a.name.as_str()).collect::<Vec<_>>(),
            vec!["name", "age", "salary"]
        );
        assert!(reg.is_subtype(emp, person));
        assert!(!reg.is_subtype(person, emp));
        assert!(reg.is_subtype(person, person), "is-a is reflexive");
    }

    #[test]
    fn conflict_requires_rename() {
        // Paper Figure 3: Student and Employee both have a dept attribute;
        // TA inherits from both — conflict unless renamed.
        let mut reg = TypeRegistry::new();
        reg.define(
            "Department",
            vec![],
            vec![Attribute::own("dname", Type::varchar())],
        )
        .unwrap();
        let dept = reg.lookup("Department").unwrap();
        reg.define(
            "Student",
            vec![],
            vec![
                Attribute::own("name", Type::varchar()),
                Attribute::reference("dept", Type::Schema(dept)),
            ],
        )
        .unwrap();
        reg.define(
            "Employee",
            vec![],
            vec![Attribute::reference("dept", Type::Schema(dept))],
        )
        .unwrap();
        let err = reg
            .define(
                "TA",
                vec![
                    InheritSpec::plain("Student"),
                    InheritSpec::plain("Employee"),
                ],
                vec![],
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::InheritanceConflict { ref attr, .. } if attr == "dept"));

        // Renaming resolves it.
        let ta = reg
            .define(
                "TA2",
                vec![
                    InheritSpec::renamed("Student", &[("dept", "enrolled_dept")]),
                    InheritSpec::renamed("Employee", &[("dept", "works_in_dept")]),
                ],
                vec![],
            )
            .unwrap();
        let t = reg.get(ta);
        assert!(t.attribute("enrolled_dept").is_some());
        assert!(t.attribute("works_in_dept").is_some());
        assert!(t.attribute("dept").is_none());
    }

    #[test]
    fn diamond_is_not_a_conflict() {
        let mut reg = TypeRegistry::new();
        reg.define("Thing", vec![], vec![Attribute::own("id", Type::int4())])
            .unwrap();
        reg.define("A", vec![InheritSpec::plain("Thing")], vec![])
            .unwrap();
        reg.define("B", vec![InheritSpec::plain("Thing")], vec![])
            .unwrap();
        let d = reg
            .define(
                "D",
                vec![InheritSpec::plain("A"), InheritSpec::plain("B")],
                vec![],
            )
            .unwrap();
        let t = reg.get(d);
        assert_eq!(t.arity(), 1, "diamond attribute appears once");
    }

    #[test]
    fn bad_rename_rejected() {
        let mut reg = TypeRegistry::new();
        reg.define("Person", vec![], person_attrs()).unwrap();
        let err = reg
            .define(
                "X",
                vec![InheritSpec::renamed("Person", &[("salary", "pay")])],
                vec![],
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::BadRename { .. }));
    }

    #[test]
    fn specialization_narrows_inherited_attribute() {
        let mut reg = TypeRegistry::new();
        let person = reg.define("Person", vec![], person_attrs()).unwrap();
        let emp = reg
            .define(
                "Employee",
                vec![InheritSpec::plain("Person")],
                vec![Attribute::own("salary", Type::float8())],
            )
            .unwrap();
        // Team has a leader: Person; ExecTeam narrows leader to Employee.
        reg.define(
            "Team",
            vec![],
            vec![Attribute::reference("leader", Type::Schema(person))],
        )
        .unwrap();
        let exec = reg
            .define(
                "ExecTeam",
                vec![InheritSpec::plain("Team")],
                vec![Attribute::reference("leader", Type::Schema(emp))],
            )
            .unwrap();
        let (pos, attr) = reg.get(exec).attribute("leader").unwrap();
        assert_eq!(pos, 0);
        assert_eq!(attr.qty.ty, Type::Schema(emp));
        // Widening is rejected.
        let err = reg
            .define(
                "BadTeam",
                vec![InheritSpec::plain("ExecTeam")],
                vec![Attribute::reference("leader", Type::Schema(person))],
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::InheritanceConflict { .. }));
    }

    #[test]
    fn ref_requires_schema_type() {
        let mut reg = TypeRegistry::new();
        let err = reg
            .define("Bad", vec![], vec![Attribute::reference("x", Type::int4())])
            .unwrap_err();
        assert!(matches!(err, ModelError::RefToValueType(_)));
        // Nested inside a set, too.
        let err = reg
            .define(
                "Bad2",
                vec![],
                vec![Attribute::own(
                    "xs",
                    Type::Set(Box::new(QualType::reference(Type::varchar()))),
                )],
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::RefToValueType(_)));
    }

    #[test]
    fn assignability_through_lattice() {
        let mut reg = TypeRegistry::new();
        let person = reg.define("Person", vec![], person_attrs()).unwrap();
        let emp = reg
            .define("Employee", vec![InheritSpec::plain("Person")], vec![])
            .unwrap();
        assert!(reg.assignable(&Type::Schema(emp), &Type::Schema(person)));
        assert!(!reg.assignable(&Type::Schema(person), &Type::Schema(emp)));
        // Sets are covariant in element type, invariant in mode.
        let set_emp = Type::Set(Box::new(QualType::reference(Type::Schema(emp))));
        let set_person = Type::Set(Box::new(QualType::reference(Type::Schema(person))));
        assert!(reg.assignable(&set_emp, &set_person));
        let set_own = Type::Set(Box::new(QualType::own(Type::Schema(emp))));
        assert!(!reg.assignable(&set_own, &set_person));
        assert!(reg.assignable(&Type::int4(), &Type::int4()));
        assert!(!reg.assignable(&Type::int4(), &Type::Base(BaseType::Int8)));
    }

    #[test]
    fn display_renders_nested_types() {
        let mut reg = TypeRegistry::new();
        let person = reg.define("Person", vec![], person_attrs()).unwrap();
        let qty = QualType::own_ref(Type::Schema(person));
        assert_eq!(reg.display_qual(&qty), "own ref Person");
        let set = Type::Set(Box::new(qty));
        assert_eq!(reg.display_type(&set), "{ own ref Person }");
        let arr = Type::Array(
            Some(10),
            Box::new(QualType::reference(Type::Schema(person))),
        );
        assert_eq!(reg.display_type(&arr), "[10] ref Person");
    }
}
