//! Byte serialization of EXTRA types, for replication catalog images.
//!
//! A replica cannot re-run the DDL that built the primary's catalog (it
//! refuses writes), so the primary ships its catalog as a versioned
//! image instead — see `docs/REPLICATION.md`. This module gives the
//! image a stable binary form for [`crate::types`] values; the registry
//! and store halves live next to their (private) state in
//! [`crate::schema`] and [`crate::store`].
//!
//! The encoding is tag-byte + little-endian lengths throughout, the same
//! dialect as [`crate::valueio`]. It is an internal wire format between
//! identically versioned binaries, not an archival format.

use crate::adt::AdtId;
use crate::error::{ModelError, ModelResult};
use crate::schema::TypeId;
use crate::types::{Attribute, BaseType, Ownership, QualType, Type};

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_u32(buf: &[u8], pos: &mut usize) -> ModelResult<u32> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| ModelError::Integrity("truncated catalog image".into()))?;
    let v = u32::from_le_bytes(buf[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

pub(crate) fn get_u64(buf: &[u8], pos: &mut usize) -> ModelResult<u64> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| ModelError::Integrity("truncated catalog image".into()))?;
    let v = u64::from_le_bytes(buf[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

pub(crate) fn get_u8(buf: &[u8], pos: &mut usize) -> ModelResult<u8> {
    let b = *buf
        .get(*pos)
        .ok_or_else(|| ModelError::Integrity("truncated catalog image".into()))?;
    *pos += 1;
    Ok(b)
}

pub(crate) fn get_str(buf: &[u8], pos: &mut usize) -> ModelResult<String> {
    let len = get_u32(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| ModelError::Integrity("truncated catalog image".into()))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| ModelError::Integrity("catalog image holds invalid utf-8".into()))?
        .to_string();
    *pos = end;
    Ok(s)
}

/// Append the encoding of an ownership mode.
pub fn write_ownership(m: Ownership, out: &mut Vec<u8>) {
    out.push(match m {
        Ownership::Own => 0,
        Ownership::Ref => 1,
        Ownership::OwnRef => 2,
    });
}

/// Decode an ownership mode.
pub fn read_ownership(buf: &[u8], pos: &mut usize) -> ModelResult<Ownership> {
    Ok(match get_u8(buf, pos)? {
        0 => Ownership::Own,
        1 => Ownership::Ref,
        2 => Ownership::OwnRef,
        t => return Err(ModelError::Integrity(format!("bad ownership tag {t}"))),
    })
}

fn write_base(b: &BaseType, out: &mut Vec<u8>) {
    match b {
        BaseType::Int1 => out.push(0),
        BaseType::Int2 => out.push(1),
        BaseType::Int4 => out.push(2),
        BaseType::Int8 => out.push(3),
        BaseType::Float4 => out.push(4),
        BaseType::Float8 => out.push(5),
        BaseType::Boolean => out.push(6),
        BaseType::Char(n) => {
            out.push(7);
            put_u64(out, *n as u64);
        }
        BaseType::Varchar => out.push(8),
        BaseType::Enum(syms) => {
            out.push(9);
            put_u32(out, syms.len() as u32);
            for s in syms {
                put_str(out, s);
            }
        }
    }
}

fn read_base(buf: &[u8], pos: &mut usize) -> ModelResult<BaseType> {
    Ok(match get_u8(buf, pos)? {
        0 => BaseType::Int1,
        1 => BaseType::Int2,
        2 => BaseType::Int4,
        3 => BaseType::Int8,
        4 => BaseType::Float4,
        5 => BaseType::Float8,
        6 => BaseType::Boolean,
        7 => BaseType::Char(get_u64(buf, pos)? as usize),
        8 => BaseType::Varchar,
        9 => {
            let n = get_u32(buf, pos)?;
            let mut syms = Vec::with_capacity(n as usize);
            for _ in 0..n {
                syms.push(get_str(buf, pos)?);
            }
            BaseType::Enum(syms)
        }
        t => return Err(ModelError::Integrity(format!("bad base-type tag {t}"))),
    })
}

/// Append the encoding of a type.
pub fn write_type(ty: &Type, out: &mut Vec<u8>) {
    match ty {
        Type::Base(b) => {
            out.push(0);
            write_base(b, out);
        }
        Type::Adt(id) => {
            out.push(1);
            put_u32(out, id.0);
        }
        Type::Schema(id) => {
            out.push(2);
            put_u32(out, id.0);
        }
        Type::Tuple(attrs) => {
            out.push(3);
            put_u32(out, attrs.len() as u32);
            for a in attrs {
                write_attribute(a, out);
            }
        }
        Type::Set(e) => {
            out.push(4);
            write_qty(e, out);
        }
        Type::Array(n, e) => {
            out.push(5);
            match n {
                Some(n) => {
                    out.push(1);
                    put_u64(out, *n as u64);
                }
                None => out.push(0),
            }
            write_qty(e, out);
        }
        Type::Unknown => out.push(6),
    }
}

/// Decode a type.
pub fn read_type(buf: &[u8], pos: &mut usize) -> ModelResult<Type> {
    Ok(match get_u8(buf, pos)? {
        0 => Type::Base(read_base(buf, pos)?),
        1 => Type::Adt(AdtId(get_u32(buf, pos)?)),
        2 => Type::Schema(TypeId(get_u32(buf, pos)?)),
        3 => {
            let n = get_u32(buf, pos)?;
            let mut attrs = Vec::with_capacity(n as usize);
            for _ in 0..n {
                attrs.push(read_attribute(buf, pos)?);
            }
            Type::Tuple(attrs)
        }
        4 => Type::Set(Box::new(read_qty(buf, pos)?)),
        5 => {
            let n = match get_u8(buf, pos)? {
                0 => None,
                1 => Some(get_u64(buf, pos)? as usize),
                t => return Err(ModelError::Integrity(format!("bad array-len tag {t}"))),
            };
            Type::Array(n, Box::new(read_qty(buf, pos)?))
        }
        6 => Type::Unknown,
        t => return Err(ModelError::Integrity(format!("bad type tag {t}"))),
    })
}

/// Append the encoding of a qualified type.
pub fn write_qty(q: &QualType, out: &mut Vec<u8>) {
    write_ownership(q.mode, out);
    write_type(&q.ty, out);
}

/// Decode a qualified type.
pub fn read_qty(buf: &[u8], pos: &mut usize) -> ModelResult<QualType> {
    Ok(QualType {
        mode: read_ownership(buf, pos)?,
        ty: read_type(buf, pos)?,
    })
}

/// Append the encoding of a named attribute.
pub fn write_attribute(a: &Attribute, out: &mut Vec<u8>) {
    put_str(out, &a.name);
    write_qty(&a.qty, out);
}

/// Decode a named attribute.
pub fn read_attribute(buf: &[u8], pos: &mut usize) -> ModelResult<Attribute> {
    let name = get_str(buf, pos)?;
    let qty = read_qty(buf, pos)?;
    Ok(Attribute { name, qty })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_shape() {
        let samples = vec![
            QualType::own(Type::int4()),
            QualType::own(Type::Base(BaseType::Char(12))),
            QualType::own(Type::Base(BaseType::Enum(vec![
                "red".into(),
                "blue".into(),
            ]))),
            QualType::reference(Type::Schema(TypeId(7))),
            QualType::own_ref(Type::Schema(TypeId(0))),
            QualType::own(Type::Adt(AdtId(3))),
            QualType::own(Type::Set(Box::new(QualType::reference(Type::Schema(
                TypeId(2),
            ))))),
            QualType::own(Type::Array(
                Some(10),
                Box::new(QualType::own(Type::float8())),
            )),
            QualType::own(Type::Array(None, Box::new(QualType::own(Type::varchar())))),
            QualType::own(Type::Tuple(vec![
                Attribute::own("x", Type::int4()),
                Attribute::own_ref("y", Type::Schema(TypeId(1))),
            ])),
            QualType::own(Type::Unknown),
        ];
        for q in &samples {
            let mut buf = Vec::new();
            write_qty(q, &mut buf);
            let mut pos = 0;
            let back = read_qty(&buf, &mut pos).unwrap();
            assert_eq!(&back, q);
            assert_eq!(pos, buf.len(), "trailing bytes for {q:?}");
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        write_qty(
            &QualType::own(Type::Base(BaseType::Enum(vec!["a".into(), "b".into()]))),
            &mut buf,
        );
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(read_qty(&buf[..cut], &mut pos).is_err());
        }
    }
}
