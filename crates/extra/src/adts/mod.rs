//! Built-in example ADTs.
//!
//! The paper uses two ADTs as running examples — `Date` (Figure 1) and
//! `Complex` (Figure 7, where its E dbclass interface is shown) — and
//! motivates the facility with geometric/engineering data
//! (\[Lohm83, Kemp87\]), for which `Polygon` stands in here.

pub mod complex;
pub mod date;
pub mod polygon;

pub use complex::ComplexAdt;
pub use date::DateAdt;
pub use polygon::PolygonAdt;
