//! The `Date` ADT (paper Figure 1 uses a `Date`-typed attribute).
//!
//! Storage format: a single little-endian `u32` packing
//! `year << 9 | month << 5 | day`, which is order-preserving when compared
//! field-major. Literals accept `M/D/YYYY` (the paper's American style)
//! and ISO `YYYY-MM-DD`.

use std::sync::Arc;

use crate::adt::{AdtFunction, AdtReturn, AdtType};
use crate::error::{ModelError, ModelResult};
use crate::value::Value;

/// The `Date` abstract data type.
pub struct DateAdt;

fn pack(y: u32, m: u32, d: u32) -> ModelResult<Vec<u8>> {
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) || y > 8000 {
        return Err(ModelError::AdtError(format!("invalid date {m}/{d}/{y}")));
    }
    Ok(((y << 9) | (m << 5) | d).to_le_bytes().to_vec())
}

fn unpack(bytes: &[u8]) -> ModelResult<(u32, u32, u32)> {
    if bytes.len() != 4 {
        return Err(ModelError::AdtError("corrupt Date value".into()));
    }
    let mut a = [0u8; 4];
    a.copy_from_slice(bytes);
    let v = u32::from_le_bytes(a);
    Ok((v >> 9, (v >> 5) & 0xF, v & 0x1F))
}

fn date_arg(v: &Value) -> ModelResult<(u32, u32, u32)> {
    match v {
        Value::Adt(_, bytes) => unpack(bytes),
        other => Err(ModelError::AdtError(format!(
            "expected a Date, got {}",
            other.kind()
        ))),
    }
}

/// Days from a civil date (proleptic Gregorian), for date arithmetic.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = (mp + 2) % 12 + 1;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl AdtType for DateAdt {
    fn name(&self) -> &str {
        "Date"
    }

    fn parse(&self, literal: &str) -> ModelResult<Vec<u8>> {
        let s = literal.trim().trim_matches('"');
        let bad = || ModelError::AdtError(format!("bad Date literal '{s}'"));
        if let Some((y, rest)) = s.split_once('-') {
            // ISO: YYYY-MM-DD
            let (m, d) = rest.split_once('-').ok_or_else(bad)?;
            return pack(
                y.parse().map_err(|_| bad())?,
                m.parse().map_err(|_| bad())?,
                d.parse().map_err(|_| bad())?,
            );
        }
        // American: M/D/YYYY
        let mut it = s.split('/');
        let (m, d, y) = (
            it.next().ok_or_else(bad)?,
            it.next().ok_or_else(bad)?,
            it.next().ok_or_else(bad)?,
        );
        if it.next().is_some() {
            return Err(bad());
        }
        pack(
            y.parse().map_err(|_| bad())?,
            m.parse().map_err(|_| bad())?,
            d.parse().map_err(|_| bad())?,
        )
    }

    fn display(&self, bytes: &[u8]) -> String {
        match unpack(bytes) {
            Ok((y, m, d)) => format!("{m}/{d}/{y}"),
            Err(_) => "<corrupt Date>".into(),
        }
    }

    fn ordered(&self) -> bool {
        true
    }

    fn key_encode(&self, bytes: &[u8]) -> Option<Vec<u8>> {
        let (y, m, d) = unpack(bytes).ok()?;
        Some(((y << 9) | (m << 5) | d).to_be_bytes().to_vec())
    }

    fn functions(&self) -> Vec<AdtFunction> {
        vec![
            AdtFunction {
                name: "Year".into(),
                arity: 1,
                returns: AdtReturn::Int,
                body: Arc::new(|args| Ok(Value::Int(date_arg(&args[0])?.0 as i64))),
            },
            AdtFunction {
                name: "Month".into(),
                arity: 1,
                returns: AdtReturn::Int,
                body: Arc::new(|args| Ok(Value::Int(date_arg(&args[0])?.1 as i64))),
            },
            AdtFunction {
                name: "Day".into(),
                arity: 1,
                returns: AdtReturn::Int,
                body: Arc::new(|args| Ok(Value::Int(date_arg(&args[0])?.2 as i64))),
            },
            AdtFunction {
                name: "AddDays".into(),
                arity: 2,
                returns: AdtReturn::SameAdt,
                body: Arc::new(|args| {
                    let (y, m, d) = date_arg(&args[0])?;
                    let n = args[1].as_i64()?;
                    let serial = days_from_civil(y as i64, m as i64, d as i64) + n;
                    let (y2, m2, d2) = civil_from_days(serial);
                    let id = match &args[0] {
                        Value::Adt(id, _) => *id,
                        _ => unreachable!("date_arg checked"),
                    };
                    Ok(Value::Adt(id, pack(y2 as u32, m2 as u32, d2 as u32)?))
                }),
            },
            AdtFunction {
                name: "DaysBetween".into(),
                arity: 2,
                returns: AdtReturn::Int,
                body: Arc::new(|args| {
                    let (y1, m1, d1) = date_arg(&args[0])?;
                    let (y2, m2, d2) = date_arg(&args[1])?;
                    Ok(Value::Int(
                        days_from_civil(y2 as i64, m2 as i64, d2 as i64)
                            - days_from_civil(y1 as i64, m1 as i64, d1 as i64),
                    ))
                }),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::AdtRegistry;

    fn reg() -> AdtRegistry {
        AdtRegistry::with_builtins()
    }

    #[test]
    fn parse_both_formats() {
        let r = reg();
        let id = r.lookup("Date").unwrap();
        let a = r.parse(id, "8/29/1988").unwrap();
        let b = r.parse(id, "1988-08-29").unwrap();
        assert_eq!(a, b);
        match a {
            Value::Adt(_, bytes) => assert_eq!(r.display(id, &bytes), "8/29/1988"),
            _ => panic!("not adt"),
        }
        assert!(r.parse(id, "13/1/1990").is_err());
        assert!(r.parse(id, "not a date").is_err());
    }

    #[test]
    fn ordering_matches_chronology() {
        let r = reg();
        let id = r.lookup("Date").unwrap();
        assert!(r.indexable(id));
        let parse = |s: &str| match r.parse(id, s).unwrap() {
            Value::Adt(_, b) => b,
            _ => unreachable!(),
        };
        let dates = ["1953-08-29", "1987-01-02", "1987-12-31", "1988-06-01"];
        let keys: Vec<Vec<u8>> = dates
            .iter()
            .map(|d| r.key_encode(id, &parse(d)).unwrap())
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn date_functions() {
        let r = reg();
        let id = r.lookup("Date").unwrap();
        let d = r.parse(id, "2/28/1988").unwrap();
        let call = |name: &str, args: &[Value]| (r.function(id, name).unwrap().body)(args).unwrap();
        assert_eq!(call("Year", std::slice::from_ref(&d)), Value::Int(1988));
        assert_eq!(call("Month", std::slice::from_ref(&d)), Value::Int(2));
        assert_eq!(call("Day", std::slice::from_ref(&d)), Value::Int(28));
        // 1988 is a leap year: +2 days crosses Feb 29.
        let later = call("AddDays", &[d.clone(), Value::Int(2)]);
        match &later {
            Value::Adt(_, bytes) => assert_eq!(r.display(id, bytes), "3/1/1988"),
            _ => panic!("not adt"),
        }
        assert_eq!(call("DaysBetween", &[d, later]), Value::Int(2));
    }
}
