//! The `Complex` ADT — paper Figure 7 shows its E dbclass interface, and
//! §4.1 uses it for both call syntaxes (`CnumPair.val1.Add(...)` and the
//! symmetric `Add(CnumPair.val1, CnumPair.val2)`) and for overloading the
//! `+` operator.
//!
//! Storage format: two little-endian `f64`s (re, im). Literals:
//! `(re, im)`, e.g. `(1.5, -2)`. Not ordered (complex numbers have no
//! total order), hence not indexable — exercising the optimizer's
//! access-method applicability table negatively.

use std::sync::Arc;

use crate::adt::{AdtFunction, AdtOperator, AdtReturn, AdtType, Assoc};
use crate::error::{ModelError, ModelResult};
use crate::value::Value;

/// The `Complex` abstract data type.
pub struct ComplexAdt;

fn pack(re: f64, im: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&re.to_le_bytes());
    out.extend_from_slice(&im.to_le_bytes());
    out
}

fn unpack(bytes: &[u8]) -> ModelResult<(f64, f64)> {
    if bytes.len() != 16 {
        return Err(ModelError::AdtError("corrupt Complex value".into()));
    }
    let mut re = [0u8; 8];
    let mut im = [0u8; 8];
    re.copy_from_slice(&bytes[..8]);
    im.copy_from_slice(&bytes[8..]);
    Ok((f64::from_le_bytes(re), f64::from_le_bytes(im)))
}

fn complex_arg(v: &Value) -> ModelResult<(f64, f64)> {
    match v {
        Value::Adt(_, bytes) => unpack(bytes),
        // Reals promote to complex in arithmetic.
        Value::Int(i) => Ok((*i as f64, 0.0)),
        Value::Float(f) => Ok((*f, 0.0)),
        other => Err(ModelError::AdtError(format!(
            "expected a Complex, got {}",
            other.kind()
        ))),
    }
}

fn adt_id_of(args: &[Value]) -> ModelResult<crate::adt::AdtId> {
    args.iter()
        .find_map(|v| match v {
            Value::Adt(id, _) => Some(*id),
            _ => None,
        })
        .ok_or_else(|| ModelError::AdtError("no Complex argument".into()))
}

type CBinop = fn((f64, f64), (f64, f64)) -> (f64, f64);

fn binop(name: &str, f: CBinop) -> AdtFunction {
    AdtFunction {
        name: name.into(),
        arity: 2,
        returns: AdtReturn::SameAdt,
        body: Arc::new(move |args| {
            let a = complex_arg(&args[0])?;
            let b = complex_arg(&args[1])?;
            let (re, im) = f(a, b);
            Ok(Value::Adt(adt_id_of(args)?, pack(re, im)))
        }),
    }
}

impl AdtType for ComplexAdt {
    fn name(&self) -> &str {
        "Complex"
    }

    fn parse(&self, literal: &str) -> ModelResult<Vec<u8>> {
        let s = literal.trim();
        let bad = || ModelError::AdtError(format!("bad Complex literal '{s}'"));
        let inner = s
            .strip_prefix('(')
            .and_then(|x| x.strip_suffix(')'))
            .ok_or_else(bad)?;
        let (re, im) = inner.split_once(',').ok_or_else(bad)?;
        Ok(pack(
            re.trim().parse().map_err(|_| bad())?,
            im.trim().parse().map_err(|_| bad())?,
        ))
    }

    fn display(&self, bytes: &[u8]) -> String {
        match unpack(bytes) {
            Ok((re, im)) => format!("({re}, {im})"),
            Err(_) => "<corrupt Complex>".into(),
        }
    }

    fn functions(&self) -> Vec<AdtFunction> {
        vec![
            binop("Add", |(ar, ai), (br, bi)| (ar + br, ai + bi)),
            binop("Sub", |(ar, ai), (br, bi)| (ar - br, ai - bi)),
            binop("Mul", |(ar, ai), (br, bi)| {
                (ar * br - ai * bi, ar * bi + ai * br)
            }),
            AdtFunction {
                name: "Magnitude".into(),
                arity: 1,
                returns: AdtReturn::Float,
                body: Arc::new(|args| {
                    let (re, im) = complex_arg(&args[0])?;
                    Ok(Value::Float((re * re + im * im).sqrt()))
                }),
            },
            AdtFunction {
                name: "Re".into(),
                arity: 1,
                returns: AdtReturn::Float,
                body: Arc::new(|args| Ok(Value::Float(complex_arg(&args[0])?.0))),
            },
            AdtFunction {
                name: "Im".into(),
                arity: 1,
                returns: AdtReturn::Float,
                body: Arc::new(|args| Ok(Value::Float(complex_arg(&args[0])?.1))),
            },
            AdtFunction {
                name: "Conjugate".into(),
                arity: 1,
                returns: AdtReturn::SameAdt,
                body: Arc::new(|args| {
                    let (re, im) = complex_arg(&args[0])?;
                    Ok(Value::Adt(adt_id_of(args)?, pack(re, -im)))
                }),
            },
        ]
    }

    fn operators(&self) -> Vec<AdtOperator> {
        // "Existing EXCESS operators can be overloaded" — +, -, * take the
        // standard arithmetic precedences.
        vec![
            AdtOperator {
                symbol: "+".into(),
                precedence: 4,
                assoc: Assoc::Left,
                function: "Add".into(),
                arity: 2,
            },
            AdtOperator {
                symbol: "-".into(),
                precedence: 4,
                assoc: Assoc::Left,
                function: "Sub".into(),
                arity: 2,
            },
            AdtOperator {
                symbol: "*".into(),
                precedence: 5,
                assoc: Assoc::Left,
                function: "Mul".into(),
                arity: 2,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::AdtRegistry;

    fn setup() -> (AdtRegistry, crate::adt::AdtId) {
        let r = AdtRegistry::with_builtins();
        let id = r.lookup("Complex").unwrap();
        (r, id)
    }

    #[test]
    fn parse_and_display() {
        let (r, id) = setup();
        let v = r.parse(id, "(1.5, -2)").unwrap();
        match &v {
            Value::Adt(_, b) => assert_eq!(r.display(id, b), "(1.5, -2)"),
            _ => panic!("not adt"),
        }
        assert!(r.parse(id, "1.5").is_err());
        assert!(r.parse(id, "(a, b)").is_err());
    }

    #[test]
    fn figure7_add_both_syntaxes() {
        // The language layer maps x.Add(y) and Add(x, y) to the same
        // function; here we exercise the function itself.
        let (r, id) = setup();
        let a = r.parse(id, "(1, 2)").unwrap();
        let b = r.parse(id, "(3, 4)").unwrap();
        let add = r.function(id, "Add").unwrap();
        let sum = (add.body)(&[a.clone(), b.clone()]).unwrap();
        match &sum {
            Value::Adt(_, bytes) => assert_eq!(r.display(id, bytes), "(4, 6)"),
            _ => panic!("not adt"),
        }
        // The overloaded + operator reaches the same implementation.
        assert_eq!(r.apply_operator("+", &[a, b]).unwrap(), sum);
    }

    #[test]
    fn arithmetic_and_promotion() {
        let (r, id) = setup();
        let a = r.parse(id, "(1, 2)").unwrap();
        let mul = r.function(id, "Mul").unwrap();
        let sq = (mul.body)(&[a.clone(), a.clone()]).unwrap();
        match &sq {
            Value::Adt(_, bytes) => assert_eq!(r.display(id, bytes), "(-3, 4)"),
            _ => panic!("not adt"),
        }
        // Real promotes: (1,2) + 1 = (2,2).
        let add = r.function(id, "Add").unwrap();
        let v = (add.body)(&[a.clone(), Value::Int(1)]).unwrap();
        match &v {
            Value::Adt(_, bytes) => assert_eq!(r.display(id, bytes), "(2, 2)"),
            _ => panic!("not adt"),
        }
        let mag = r.function(id, "Magnitude").unwrap();
        assert_eq!(
            (mag.body)(&[r.parse(id, "(3, 4)").unwrap()]).unwrap(),
            Value::Float(5.0)
        );
    }

    #[test]
    fn complex_is_not_indexable() {
        let (r, id) = setup();
        assert!(!r.indexable(id), "no total order on complex numbers");
        assert!(r.key_encode(id, &pack(1.0, 1.0)).is_err());
    }
}
