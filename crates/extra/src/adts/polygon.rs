//! The `Polygon` ADT — standing in for the geometric/engineering data
//! types motivating EXTRA's ADT facility (\[Lohm83, Kemp87\]).
//!
//! Storage format: `n: u32` then `n` × (`x: f64`, `y: f64`), vertices in
//! ring order. Literals: `((x1 y1) (x2 y2) ...)`. Supplies area,
//! perimeter, point containment and bounding-box overlap — the kinds of
//! predicates a spatial access method would be registered for.

use std::sync::Arc;

use crate::adt::{AdtFunction, AdtOperator, AdtReturn, AdtType, Assoc};
use crate::error::{ModelError, ModelResult};
use crate::value::Value;

/// The `Polygon` abstract data type.
pub struct PolygonAdt;

fn pack(points: &[(f64, f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + points.len() * 16);
    out.extend_from_slice(&(points.len() as u32).to_le_bytes());
    for (x, y) in points {
        out.extend_from_slice(&x.to_le_bytes());
        out.extend_from_slice(&y.to_le_bytes());
    }
    out
}

fn unpack(bytes: &[u8]) -> ModelResult<Vec<(f64, f64)>> {
    if bytes.len() < 4 {
        return Err(ModelError::AdtError("corrupt Polygon value".into()));
    }
    let mut n = [0u8; 4];
    n.copy_from_slice(&bytes[..4]);
    let n = u32::from_le_bytes(n) as usize;
    if bytes.len() != 4 + n * 16 {
        return Err(ModelError::AdtError("corrupt Polygon value".into()));
    }
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let off = 4 + i * 16;
        let mut x = [0u8; 8];
        let mut y = [0u8; 8];
        x.copy_from_slice(&bytes[off..off + 8]);
        y.copy_from_slice(&bytes[off + 8..off + 16]);
        points.push((f64::from_le_bytes(x), f64::from_le_bytes(y)));
    }
    Ok(points)
}

fn poly_arg(v: &Value) -> ModelResult<Vec<(f64, f64)>> {
    match v {
        Value::Adt(_, bytes) => unpack(bytes),
        other => Err(ModelError::AdtError(format!(
            "expected a Polygon, got {}",
            other.kind()
        ))),
    }
}

fn signed_area(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len();
    let mut s = 0.0;
    for i in 0..n {
        let (x1, y1) = pts[i];
        let (x2, y2) = pts[(i + 1) % n];
        s += x1 * y2 - x2 * y1;
    }
    s / 2.0
}

fn bbox(pts: &[(f64, f64)]) -> (f64, f64, f64, f64) {
    let mut b = (
        f64::INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in pts {
        b.0 = b.0.min(x);
        b.1 = b.1.min(y);
        b.2 = b.2.max(x);
        b.3 = b.3.max(y);
    }
    b
}

impl AdtType for PolygonAdt {
    fn name(&self) -> &str {
        "Polygon"
    }

    fn parse(&self, literal: &str) -> ModelResult<Vec<u8>> {
        let s = literal.trim();
        let bad = || ModelError::AdtError(format!("bad Polygon literal '{s}'"));
        let inner = s
            .strip_prefix('(')
            .and_then(|x| x.strip_suffix(')'))
            .ok_or_else(bad)?;
        let mut points = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            let open = rest.find('(').ok_or_else(bad)?;
            let close = rest[open..].find(')').ok_or_else(bad)? + open;
            let pair = &rest[open + 1..close];
            let mut it = pair.split_whitespace();
            let x: f64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let y: f64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            if it.next().is_some() {
                return Err(bad());
            }
            points.push((x, y));
            rest = rest[close + 1..].trim();
        }
        if points.len() < 3 {
            return Err(ModelError::AdtError(
                "a Polygon needs at least 3 vertices".into(),
            ));
        }
        Ok(pack(&points))
    }

    fn display(&self, bytes: &[u8]) -> String {
        match unpack(bytes) {
            Ok(points) => {
                let inner: Vec<String> = points.iter().map(|(x, y)| format!("({x} {y})")).collect();
                format!("({})", inner.join(" "))
            }
            Err(_) => "<corrupt Polygon>".into(),
        }
    }

    fn functions(&self) -> Vec<AdtFunction> {
        vec![
            AdtFunction {
                name: "Area".into(),
                arity: 1,
                returns: AdtReturn::Float,
                body: Arc::new(|args| Ok(Value::Float(signed_area(&poly_arg(&args[0])?).abs()))),
            },
            AdtFunction {
                name: "Perimeter".into(),
                arity: 1,
                returns: AdtReturn::Float,
                body: Arc::new(|args| {
                    let pts = poly_arg(&args[0])?;
                    let n = pts.len();
                    let mut p = 0.0;
                    for i in 0..n {
                        let (x1, y1) = pts[i];
                        let (x2, y2) = pts[(i + 1) % n];
                        p += ((x2 - x1).powi(2) + (y2 - y1).powi(2)).sqrt();
                    }
                    Ok(Value::Float(p))
                }),
            },
            AdtFunction {
                name: "NumVertices".into(),
                arity: 1,
                returns: AdtReturn::Int,
                body: Arc::new(|args| Ok(Value::Int(poly_arg(&args[0])?.len() as i64))),
            },
            AdtFunction {
                name: "Contains".into(),
                arity: 3,
                returns: AdtReturn::Bool,
                body: Arc::new(|args| {
                    // Ray casting: Contains(poly, x, y).
                    let pts = poly_arg(&args[0])?;
                    let (px, py) = (args[1].as_f64()?, args[2].as_f64()?);
                    let n = pts.len();
                    let mut inside = false;
                    let mut j = n - 1;
                    for i in 0..n {
                        let (xi, yi) = pts[i];
                        let (xj, yj) = pts[j];
                        if ((yi > py) != (yj > py)) && (px < (xj - xi) * (py - yi) / (yj - yi) + xi)
                        {
                            inside = !inside;
                        }
                        j = i;
                    }
                    Ok(Value::Bool(inside))
                }),
            },
            AdtFunction {
                name: "Overlaps".into(),
                arity: 2,
                returns: AdtReturn::Bool,
                body: Arc::new(|args| {
                    // Bounding-box overlap — the filter step a spatial
                    // index would implement.
                    let a = bbox(&poly_arg(&args[0])?);
                    let b = bbox(&poly_arg(&args[1])?);
                    Ok(Value::Bool(
                        a.0 <= b.2 && b.0 <= a.2 && a.1 <= b.3 && b.1 <= a.3,
                    ))
                }),
            },
        ]
    }

    fn operators(&self) -> Vec<AdtOperator> {
        // A brand-new punctuation operator with definer-chosen precedence:
        // `&&&` = Overlaps, binding like a comparison.
        vec![AdtOperator {
            symbol: "&&&".into(),
            precedence: 3,
            assoc: Assoc::Left,
            function: "Overlaps".into(),
            arity: 2,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::AdtRegistry;

    fn setup() -> (AdtRegistry, crate::adt::AdtId) {
        let r = AdtRegistry::with_builtins();
        let id = r.lookup("Polygon").unwrap();
        (r, id)
    }

    #[test]
    fn parse_display_round_trip() {
        let (r, id) = setup();
        let v = r.parse(id, "((0 0) (4 0) (4 3) (0 3))").unwrap();
        match &v {
            Value::Adt(_, b) => assert_eq!(r.display(id, b), "((0 0) (4 0) (4 3) (0 3))"),
            _ => panic!("not adt"),
        }
        assert!(r.parse(id, "((0 0) (1 1))").is_err(), "too few vertices");
        assert!(r.parse(id, "nonsense").is_err());
    }

    #[test]
    fn geometry_functions() {
        let (r, id) = setup();
        let rect = r.parse(id, "((0 0) (4 0) (4 3) (0 3))").unwrap();
        let call = |name: &str, args: &[Value]| (r.function(id, name).unwrap().body)(args).unwrap();
        assert_eq!(
            call("Area", std::slice::from_ref(&rect)),
            Value::Float(12.0)
        );
        assert_eq!(
            call("Perimeter", std::slice::from_ref(&rect)),
            Value::Float(14.0)
        );
        assert_eq!(
            call("NumVertices", std::slice::from_ref(&rect)),
            Value::Int(4)
        );
        assert_eq!(
            call(
                "Contains",
                &[rect.clone(), Value::Float(2.0), Value::Float(1.0)]
            ),
            Value::Bool(true)
        );
        assert_eq!(
            call(
                "Contains",
                &[rect.clone(), Value::Float(9.0), Value::Float(1.0)]
            ),
            Value::Bool(false)
        );
    }

    #[test]
    fn overlap_operator() {
        let (r, id) = setup();
        let a = r.parse(id, "((0 0) (2 0) (2 2) (0 2))").unwrap();
        let b = r.parse(id, "((1 1) (3 1) (3 3) (1 3))").unwrap();
        let c = r.parse(id, "((10 10) (11 10) (11 11) (10 11))").unwrap();
        assert_eq!(
            r.apply_operator("&&&", &[a.clone(), b]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            r.apply_operator("&&&", &[a, c]).unwrap(),
            Value::Bool(false)
        );
    }
}
