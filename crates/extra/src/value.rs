//! Runtime values of the EXTRA data model.
//!
//! A [`Value`] is the in-memory form of any EXTRA datum: base-type values,
//! ADT values (kept in their ADT's byte format), tuples, sets, arrays, and
//! references. `ref` and `own ref` attributes hold [`Value::Ref`] — an OID
//! into the object store — while `own` attributes hold the component value
//! inline, exactly mirroring the paper's storage semantics ("an own
//! attribute is simply a value, not a first-class object; it lacks
//! identity").
//!
//! Equality (`==`) on values is *structural*; two `Ref`s are equal iff
//! they hold the same OID — which is precisely the `is` operator of
//! EXCESS. Recursive value-equality in the sense of \[Banc86\] requires
//! the store and lives in [`crate::store::ObjectStore::deep_eq`].

use std::cmp::Ordering;
use std::fmt;

use exodus_storage::Oid;

use crate::adt::{AdtId, AdtRegistry};
use crate::error::{ModelError, ModelResult};
use crate::schema::TypeRegistry;
use crate::types::{BaseType, Ownership, QualType, Type};

/// A runtime EXTRA value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The null value (GEM-style nulls permeate the model).
    Null,
    /// Any integer (width checked against the declared type on store).
    Int(i64),
    /// Any float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String (char(n) and varchar).
    Str(String),
    /// Enumeration value: ordinal (for ordering) and symbol (for display).
    Enum(u16, String),
    /// An ADT value in its ADT's storage format.
    Adt(AdtId, Vec<u8>),
    /// A tuple, attributes in declaration order.
    Tuple(Vec<Value>),
    /// A set. Invariant: no two members compare equal (maintained by
    /// [`Value::set_insert`]).
    Set(Vec<Value>),
    /// An array (fixed arrays are padded with nulls to their length).
    Array(Vec<Value>),
    /// A reference to an object with identity.
    Ref(Oid),
}

impl Value {
    /// Shorthand string constructor.
    pub fn str(s: &str) -> Value {
        Value::Str(s.into())
    }

    /// A short description of the value's runtime shape, for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Enum(_, _) => "enum",
            Value::Adt(_, _) => "adt",
            Value::Tuple(_) => "tuple",
            Value::Set(_) => "set",
            Value::Array(_) => "array",
            Value::Ref(_) => "reference",
        }
    }

    /// Whether this is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truth value for qualification clauses; non-boolean is an error.
    /// Null is false (two-valued logic with null rejection, per QUEL
    /// lineage).
    pub fn truthy(&self) -> ModelResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Null => Ok(false),
            other => Err(ModelError::TypeMismatch {
                expected: "boolean".into(),
                got: other.kind().into(),
            }),
        }
    }

    /// Numeric coercion for arithmetic.
    pub fn as_f64(&self) -> ModelResult<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(ModelError::TypeMismatch {
                expected: "number".into(),
                got: other.kind().into(),
            }),
        }
    }

    /// Integer extraction.
    pub fn as_i64(&self) -> ModelResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(ModelError::TypeMismatch {
                expected: "integer".into(),
                got: other.kind().into(),
            }),
        }
    }

    /// Ordering between two values, if they are comparable. Numeric types
    /// cross-compare; strings, booleans, and enums compare naturally; ADT
    /// values compare through their key encoding. References are *not*
    /// comparable (the paper restricts them to `is`/`isnot`). Null
    /// compares to nothing.
    pub fn compare(&self, other: &Value, adts: &AdtRegistry) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Enum(a, _), Value::Enum(b, _)) => Some(a.cmp(b)),
            (Value::Adt(ia, ba), Value::Adt(ib, bb)) if ia == ib => {
                let adt = adts.get(*ia);
                match (adt.key_encode(ba), adt.key_encode(bb)) {
                    (Some(ka), Some(kb)) => Some(ka.cmp(&kb)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Insert into a set, skipping values already present (sets have no
    /// duplicates; `Ref` members dedupe by OID — object semantics).
    pub fn set_insert(&mut self, v: Value) -> ModelResult<bool> {
        match self {
            Value::Set(members) => {
                if members.contains(&v) {
                    Ok(false)
                } else {
                    members.push(v);
                    Ok(true)
                }
            }
            other => Err(ModelError::TypeMismatch {
                expected: "set".into(),
                got: other.kind().into(),
            }),
        }
    }

    /// Set membership.
    pub fn set_contains(&self, v: &Value) -> ModelResult<bool> {
        match self {
            Value::Set(members) => Ok(members.contains(v)),
            other => Err(ModelError::TypeMismatch {
                expected: "set".into(),
                got: other.kind().into(),
            }),
        }
    }

    /// Set union (dedup preserved).
    pub fn set_union(&self, other: &Value) -> ModelResult<Value> {
        match (self, other) {
            (Value::Set(a), Value::Set(b)) => {
                let mut out = a.clone();
                for v in b {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
                Ok(Value::Set(out))
            }
            _ => Err(ModelError::TypeMismatch {
                expected: "set".into(),
                got: format!("{} / {}", self.kind(), other.kind()),
            }),
        }
    }

    /// Set intersection.
    pub fn set_intersect(&self, other: &Value) -> ModelResult<Value> {
        match (self, other) {
            (Value::Set(a), Value::Set(b)) => Ok(Value::Set(
                a.iter().filter(|v| b.contains(v)).cloned().collect(),
            )),
            _ => Err(ModelError::TypeMismatch {
                expected: "set".into(),
                got: format!("{} / {}", self.kind(), other.kind()),
            }),
        }
    }

    /// Set difference (`minus`).
    pub fn set_minus(&self, other: &Value) -> ModelResult<Value> {
        match (self, other) {
            (Value::Set(a), Value::Set(b)) => Ok(Value::Set(
                a.iter().filter(|v| !b.contains(v)).cloned().collect(),
            )),
            _ => Err(ModelError::TypeMismatch {
                expected: "set".into(),
                got: format!("{} / {}", self.kind(), other.kind()),
            }),
        }
    }

    /// 1-based array indexing (the paper writes `TopTen[1]`).
    pub fn array_index(&self, index: i64) -> ModelResult<&Value> {
        match self {
            Value::Array(items) => {
                if index < 1 || index as usize > items.len() {
                    Err(ModelError::IndexOutOfRange {
                        index,
                        len: items.len(),
                    })
                } else {
                    Ok(&items[index as usize - 1])
                }
            }
            other => Err(ModelError::TypeMismatch {
                expected: "array".into(),
                got: other.kind().into(),
            }),
        }
    }

    /// Check conformance of this value to a qualified type. Shape-level:
    /// `Ref` target types are validated by the object store on write.
    /// Null conforms to every type.
    // The ADT registry is threaded through for future ADT value checks.
    #[allow(clippy::only_used_in_recursion)]
    pub fn conforms(
        &self,
        qty: &QualType,
        reg: &TypeRegistry,
        adts: &AdtRegistry,
    ) -> ModelResult<()> {
        if self.is_null() {
            return Ok(());
        }
        if qty.mode != Ownership::Own {
            return match self {
                Value::Ref(_) => Ok(()),
                other => Err(ModelError::TypeMismatch {
                    expected: format!("{} (a reference)", reg.display_qual(qty)),
                    got: other.kind().into(),
                }),
            };
        }
        let mismatch = |expected: String, got: &Value| ModelError::TypeMismatch {
            expected,
            got: got.kind().into(),
        };
        match (&qty.ty, self) {
            (Type::Base(b), v) => match (b, v) {
                (bt, Value::Int(i)) if bt.is_integer() => {
                    let (lo, hi) = bt.int_range().expect("integer type has a range");
                    if *i < lo || *i > hi {
                        Err(ModelError::TypeMismatch {
                            expected: bt.to_string(),
                            got: format!("integer {i} (out of range)"),
                        })
                    } else {
                        Ok(())
                    }
                }
                (bt, Value::Float(_)) if bt.is_float() => Ok(()),
                (bt, Value::Int(_)) if bt.is_float() => Ok(()),
                (BaseType::Boolean, Value::Bool(_)) => Ok(()),
                (BaseType::Varchar, Value::Str(_)) => Ok(()),
                (BaseType::Char(n), Value::Str(s)) => {
                    if s.chars().count() <= *n {
                        Ok(())
                    } else {
                        Err(ModelError::TypeMismatch {
                            expected: format!("char({n})"),
                            got: format!("string of {} characters", s.chars().count()),
                        })
                    }
                }
                (BaseType::Enum(syms), Value::Enum(ord, sym)) => {
                    if syms.get(*ord as usize).map(String::as_str) == Some(sym.as_str()) {
                        Ok(())
                    } else {
                        Err(ModelError::TypeMismatch {
                            expected: b.to_string(),
                            got: format!("enum value '{sym}'"),
                        })
                    }
                }
                (bt, v) => Err(mismatch(bt.to_string(), v)),
            },
            (Type::Adt(id), Value::Adt(got, _)) if id == got => Ok(()),
            (Type::Schema(tid), Value::Tuple(fields)) => {
                let st = reg.get(*tid);
                if fields.len() != st.arity() {
                    return Err(ModelError::TypeMismatch {
                        expected: format!("{} ({} attributes)", st.name, st.arity()),
                        got: format!("tuple of {}", fields.len()),
                    });
                }
                for (f, a) in fields.iter().zip(st.attributes()) {
                    f.conforms(&a.qty, reg, adts)?;
                }
                Ok(())
            }
            (Type::Tuple(attrs), Value::Tuple(fields)) => {
                if fields.len() != attrs.len() {
                    return Err(ModelError::TypeMismatch {
                        expected: format!("tuple of {}", attrs.len()),
                        got: format!("tuple of {}", fields.len()),
                    });
                }
                for (f, a) in fields.iter().zip(attrs.iter()) {
                    f.conforms(&a.qty, reg, adts)?;
                }
                Ok(())
            }
            (Type::Set(elem), Value::Set(members)) => {
                for m in members {
                    m.conforms(elem, reg, adts)?;
                }
                Ok(())
            }
            (Type::Array(len, elem), Value::Array(items)) => {
                if let Some(n) = len {
                    if items.len() != *n {
                        return Err(ModelError::TypeMismatch {
                            expected: format!("array of exactly {n}"),
                            got: format!("array of {}", items.len()),
                        });
                    }
                }
                for i in items {
                    i.conforms(elem, reg, adts)?;
                }
                Ok(())
            }
            (ty, v) => Err(mismatch(reg.display_type(ty), v)),
        }
    }

    /// Render for output; ADT values use their ADT's display form.
    pub fn render(&self, adts: &AdtRegistry) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => format!("\"{s}\""),
            Value::Enum(_, sym) => sym.clone(),
            Value::Adt(id, bytes) => adts.display(*id, bytes),
            Value::Tuple(fs) => {
                let inner: Vec<String> = fs.iter().map(|f| f.render(adts)).collect();
                format!("({})", inner.join(", "))
            }
            Value::Set(ms) => {
                let inner: Vec<String> = ms.iter().map(|m| m.render(adts)).collect();
                format!("{{{}}}", inner.join(", "))
            }
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(|i| i.render(adts)).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Ref(oid) => oid.to_string(),
        }
    }

    /// Order-preserving key encoding of a scalar value, for B+-tree
    /// indexes and index-scan bounds. `None` for unordered or composite
    /// values. Integers and floats share the numeric key space via the
    /// float encoding when `numeric_as_float` is set by the caller through
    /// coercion; here ints encode as ints — index build and probe must use
    /// the same declared attribute type, which the planner guarantees.
    pub fn key_encode(&self, adts: &AdtRegistry) -> Option<Vec<u8>> {
        use exodus_storage::encoding::KeyWriter;
        let mut k = KeyWriter::new();
        match self {
            Value::Int(i) => k.put_i64(*i),
            Value::Float(f) => k.put_f64(*f),
            Value::Bool(b) => k.put_bool(*b),
            Value::Str(s) => k.put_str(s),
            Value::Enum(ord, _) => k.put_i64(*ord as i64),
            Value::Adt(id, bytes) => k.put_raw(&adts.get(*id).key_encode(bytes)?),
            _ => return None,
        }
        Some(k.into_bytes())
    }

    /// A fixed-length array of `n` nulls.
    pub fn null_array(n: usize) -> Value {
        Value::Array(vec![Value::Null; n])
    }

    /// An empty set.
    pub fn empty_set() -> Value {
        Value::Set(Vec::new())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display without an ADT registry renders ADTs opaquely.
        match self {
            Value::Adt(id, bytes) => write!(f, "{id}({} bytes)", bytes.len()),
            other => {
                let reg = AdtRegistry::new();
                write!(f, "{}", other.render(&reg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Attribute;

    fn regs() -> (TypeRegistry, AdtRegistry) {
        (TypeRegistry::new(), AdtRegistry::new())
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).truthy().unwrap());
        assert!(!Value::Bool(false).truthy().unwrap());
        assert!(!Value::Null.truthy().unwrap(), "null qualifies as false");
        assert!(Value::Int(1).truthy().is_err());
    }

    #[test]
    fn numeric_comparisons_cross_type() {
        let adts = AdtRegistry::new();
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5), &adts),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).compare(&Value::Int(3), &adts),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::str("abc").compare(&Value::str("abd"), &adts),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Enum(0, "red".into()).compare(&Value::Enum(2, "blue".into()), &adts),
            Some(Ordering::Less)
        );
        // Refs are not comparable: only is/isnot.
        assert_eq!(Value::Ref(Oid(1)).compare(&Value::Ref(Oid(1)), &adts), None);
        assert_eq!(Value::Null.compare(&Value::Int(0), &adts), None);
    }

    #[test]
    fn ref_equality_is_identity() {
        // `is` compares OIDs, not contents.
        assert_eq!(Value::Ref(Oid(5)), Value::Ref(Oid(5)));
        assert_ne!(Value::Ref(Oid(5)), Value::Ref(Oid(6)));
    }

    #[test]
    fn set_semantics_dedupe() {
        let mut s = Value::empty_set();
        assert!(s.set_insert(Value::Int(1)).unwrap());
        assert!(s.set_insert(Value::Int(2)).unwrap());
        assert!(!s.set_insert(Value::Int(1)).unwrap(), "duplicate rejected");
        assert!(s.set_contains(&Value::Int(2)).unwrap());
        let t = Value::Set(vec![Value::Int(2), Value::Int(3)]);
        assert_eq!(
            s.set_union(&t).unwrap(),
            Value::Set(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            s.set_intersect(&t).unwrap(),
            Value::Set(vec![Value::Int(2)])
        );
        assert_eq!(s.set_minus(&t).unwrap(), Value::Set(vec![Value::Int(1)]));
        assert!(Value::Int(1).set_insert(Value::Int(1)).is_err());
    }

    #[test]
    fn one_based_array_indexing() {
        let a = Value::Array(vec![Value::Int(10), Value::Int(20)]);
        assert_eq!(a.array_index(1).unwrap(), &Value::Int(10));
        assert_eq!(a.array_index(2).unwrap(), &Value::Int(20));
        assert!(matches!(
            a.array_index(0),
            Err(ModelError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            a.array_index(3),
            Err(ModelError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn conforms_base_types() {
        let (reg, adts) = regs();
        let q = |t: Type| QualType::own(t);
        Value::Int(100)
            .conforms(&q(Type::Base(BaseType::Int1)), &reg, &adts)
            .unwrap();
        assert!(Value::Int(200)
            .conforms(&q(Type::Base(BaseType::Int1)), &reg, &adts)
            .is_err());
        Value::str("hi")
            .conforms(&q(Type::Base(BaseType::Char(2))), &reg, &adts)
            .unwrap();
        assert!(Value::str("hello")
            .conforms(&q(Type::Base(BaseType::Char(2))), &reg, &adts)
            .is_err());
        // Int is acceptable where a float is expected.
        Value::Int(3)
            .conforms(&q(Type::float8()), &reg, &adts)
            .unwrap();
        // Null conforms to everything.
        Value::Null.conforms(&q(Type::int4()), &reg, &adts).unwrap();
        // Enum must match ordinal and symbol.
        let e = Type::Base(BaseType::Enum(vec!["a".into(), "b".into()]));
        Value::Enum(1, "b".into())
            .conforms(&q(e.clone()), &reg, &adts)
            .unwrap();
        assert!(Value::Enum(0, "b".into())
            .conforms(&q(e), &reg, &adts)
            .is_err());
    }

    #[test]
    fn conforms_constructors() {
        let (mut reg, adts) = regs();
        let person = reg
            .define(
                "Person",
                vec![],
                vec![
                    Attribute::own("name", Type::varchar()),
                    Attribute::own("age", Type::int4()),
                ],
            )
            .unwrap();
        let v = Value::Tuple(vec![Value::str("ann"), Value::Int(30)]);
        v.conforms(&QualType::own(Type::Schema(person)), &reg, &adts)
            .unwrap();
        let bad = Value::Tuple(vec![Value::str("ann")]);
        assert!(bad
            .conforms(&QualType::own(Type::Schema(person)), &reg, &adts)
            .is_err());

        let set_t = QualType::own(Type::Set(Box::new(QualType::own(Type::int4()))));
        Value::Set(vec![Value::Int(1), Value::Int(2)])
            .conforms(&set_t, &reg, &adts)
            .unwrap();
        assert!(Value::Set(vec![Value::str("x")])
            .conforms(&set_t, &reg, &adts)
            .is_err());

        let arr_t = QualType::own(Type::Array(Some(2), Box::new(QualType::own(Type::int4()))));
        Value::Array(vec![Value::Int(1), Value::Null])
            .conforms(&arr_t, &reg, &adts)
            .unwrap();
        assert!(Value::Array(vec![Value::Int(1)])
            .conforms(&arr_t, &reg, &adts)
            .is_err());

        // A ref-qualified slot takes only references or null.
        let rq = QualType::reference(Type::Schema(person));
        Value::Ref(Oid(9)).conforms(&rq, &reg, &adts).unwrap();
        Value::Null.conforms(&rq, &reg, &adts).unwrap();
        assert!(Value::Tuple(vec![]).conforms(&rq, &reg, &adts).is_err());
    }

    #[test]
    fn render_forms() {
        let adts = AdtRegistry::new();
        let v = Value::Tuple(vec![
            Value::str("ann"),
            Value::Int(3),
            Value::Set(vec![Value::Int(1)]),
            Value::Array(vec![Value::Float(1.0)]),
            Value::Null,
            Value::Ref(Oid(7)),
        ]);
        assert_eq!(v.render(&adts), "(\"ann\", 3, {1}, [1.0], null, @7)");
    }
}
