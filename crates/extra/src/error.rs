//! Data-model error type.

use std::fmt;

use exodus_storage::StorageError;

/// Errors raised by the EXTRA data-model layer.
#[derive(Debug)]
pub enum ModelError {
    /// A storage-level failure.
    Storage(StorageError),
    /// A named type that does not exist.
    UnknownType(String),
    /// A type name already in use.
    DuplicateType(String),
    /// An attribute that does not exist on a type.
    UnknownAttribute { ty: String, attr: String },
    /// Multiple inheritance produced a name clash that was not renamed
    /// away (EXTRA provides *no* automatic resolution).
    InheritanceConflict { attr: String, from: Vec<String> },
    /// A rename clause naming an attribute the base type does not have.
    BadRename { base: String, attr: String },
    /// A value that does not conform to the declared type.
    TypeMismatch { expected: String, got: String },
    /// `ref` / `own ref` used with a type that has no object identity.
    RefToValueType(String),
    /// An integrity violation (exclusivity, dangling reference, ...).
    Integrity(String),
    /// An unknown ADT or ADT function/operator.
    UnknownAdt(String),
    /// An ADT function failed (bad argument, parse error, ...).
    AdtError(String),
    /// Array index out of range (EXCESS arrays are 1-based).
    IndexOutOfRange { index: i64, len: usize },
    /// Any other semantic violation.
    Semantic(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Storage(e) => write!(f, "storage error: {e}"),
            ModelError::UnknownType(t) => write!(f, "unknown type '{t}'"),
            ModelError::DuplicateType(t) => write!(f, "type '{t}' is already defined"),
            ModelError::UnknownAttribute { ty, attr } => {
                write!(f, "type '{ty}' has no attribute '{attr}'")
            }
            ModelError::InheritanceConflict { attr, from } => write!(
                f,
                "attribute '{attr}' is inherited from multiple types ({}); \
                 resolve the conflict with a rename clause",
                from.join(", ")
            ),
            ModelError::BadRename { base, attr } => {
                write!(
                    f,
                    "rename of '{attr}': base type '{base}' has no such attribute"
                )
            }
            ModelError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            ModelError::RefToValueType(t) => {
                write!(
                    f,
                    "'{t}' is not a schema type; ref/own ref require object identity"
                )
            }
            ModelError::Integrity(m) => write!(f, "integrity violation: {m}"),
            ModelError::UnknownAdt(a) => write!(f, "unknown ADT or ADT member '{a}'"),
            ModelError::AdtError(m) => write!(f, "ADT error: {m}"),
            ModelError::IndexOutOfRange { index, len } => {
                write!(
                    f,
                    "array index {index} out of range (length {len}, arrays are 1-based)"
                )
            }
            ModelError::Semantic(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ModelError {
    fn from(e: StorageError) -> Self {
        ModelError::Storage(e)
    }
}

/// Convenience alias used throughout the crate.
pub type ModelResult<T> = Result<T, ModelError>;
