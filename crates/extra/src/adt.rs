//! The ADT facility: user-defined base types.
//!
//! The paper adds new base types through abstract data types written in the
//! E language and registered with the system, each supplying its storage
//! format, functions, and operators — with operator precedence and
//! associativity chosen by the type definer, and with table-driven
//! information telling the optimizer which access methods apply (§4.1).
//!
//! Here an ADT is a Rust value implementing [`AdtType`] (the substitution
//! for an E dbclass; see DESIGN.md). The contract is the same:
//!
//! * a byte-level storage format, produced by [`AdtType::parse`] and
//!   rendered by [`AdtType::display`];
//! * named [`AdtFunction`]s over [`Value`]s (invocable as
//!   `x.Add(y)` or symmetrically `Add(x, y)` in EXCESS);
//! * registered [`AdtOperator`]s mapping symbols to functions with a
//!   user-specified precedence and associativity;
//! * an optional order-preserving key encoding, which is exactly the
//!   "access method applicability" table entry: an ADT with a key encoding
//!   supports comparisons and B+-tree indexes.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{ModelError, ModelResult};
use crate::value::Value;

/// Implementation signature of an ADT function body.
pub type AdtFnBody = Arc<dyn Fn(&[Value]) -> ModelResult<Value> + Send + Sync>;

/// Declared result type of an ADT function (for static type checking in
/// the EXCESS semantic analyzer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdtReturn {
    /// Returns a value of the same ADT.
    SameAdt,
    /// Returns an integer.
    Int,
    /// Returns a float.
    Float,
    /// Returns a boolean.
    Bool,
    /// Returns a string.
    Varchar,
}

/// Identifies a registered ADT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AdtId(pub u32);

impl fmt::Display for AdtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "adt#{}", self.0)
    }
}

/// Operator associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assoc {
    /// Groups left-to-right.
    Left,
    /// Groups right-to-left.
    Right,
}

/// A function exported by an ADT.
#[derive(Clone)]
pub struct AdtFunction {
    /// Function name as written in EXCESS.
    pub name: String,
    /// Number of arguments (including the receiver).
    pub arity: usize,
    /// Declared result type.
    pub returns: AdtReturn,
    /// The implementation.
    pub body: AdtFnBody,
}

impl fmt::Debug for AdtFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AdtFunction({}/{})", self.name, self.arity)
    }
}

/// An operator registration: symbol → function, with parser guidance.
///
/// The paper: "it is possible to introduce new operators (any legal EXCESS
/// identifier or sequence of punctuation characters may be used). For new
/// operators, we require the precedence and associativity of the operator
/// to be specified."
#[derive(Debug, Clone)]
pub struct AdtOperator {
    /// Operator symbol (punctuation sequence or identifier).
    pub symbol: String,
    /// Binding strength; higher binds tighter. Built-in EXCESS levels:
    /// `or`=1, `and`=2, comparisons=3, `+ -`=4, `* /`=5.
    pub precedence: u8,
    /// Associativity.
    pub assoc: Assoc,
    /// Name of the [`AdtFunction`] implementing the operator.
    pub function: String,
    /// 1 = prefix, 2 = infix.
    pub arity: usize,
}

/// A user-defined base type. The trait is object-safe; implementations are
/// registered with [`AdtRegistry::register`].
pub trait AdtType: Send + Sync {
    /// The type's name as written in schemas (e.g. `Date`).
    fn name(&self) -> &str;

    /// Parse a literal into the storage format.
    fn parse(&self, literal: &str) -> ModelResult<Vec<u8>>;

    /// Render a stored value for output.
    fn display(&self, bytes: &[u8]) -> String;

    /// Whether the type has a total order. An ordered type must implement
    /// [`AdtType::key_encode`]; ordering makes it comparable
    /// (`< <= > >=`) and B+-tree indexable — this is the access-method
    /// applicability entry the optimizer consults.
    fn ordered(&self) -> bool {
        false
    }

    /// Order-preserving key encoding for ordered types.
    fn key_encode(&self, bytes: &[u8]) -> Option<Vec<u8>> {
        let _ = bytes;
        None
    }

    /// Functions exported by the type.
    fn functions(&self) -> Vec<AdtFunction> {
        Vec::new()
    }

    /// Operators registered by the type.
    fn operators(&self) -> Vec<AdtOperator> {
        Vec::new()
    }
}

/// The ADT registry: dynamic, as the paper requires ("so that ADTs can be
/// easily added dynamically").
#[derive(Default, Clone)]
pub struct AdtRegistry {
    adts: Vec<Arc<dyn AdtType>>,
    by_name: HashMap<String, AdtId>,
    /// Function table: `(adt, function name)` → function.
    functions: HashMap<(AdtId, String), AdtFunction>,
    /// Operator table: symbol → candidate `(adt, operator)` entries.
    operators: HashMap<String, Vec<(AdtId, AdtOperator)>>,
}

impl fmt::Debug for AdtRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AdtRegistry({} adts)", self.adts.len())
    }
}

impl AdtRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the paper's example ADTs
    /// (`Date`, `Complex`, `Polygon`).
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register(Arc::new(crate::adts::date::DateAdt))
            .expect("fresh registry");
        r.register(Arc::new(crate::adts::complex::ComplexAdt))
            .expect("fresh registry");
        r.register(Arc::new(crate::adts::polygon::PolygonAdt))
            .expect("fresh registry");
        r
    }

    /// Register a new ADT, indexing its functions and operators.
    pub fn register(&mut self, adt: Arc<dyn AdtType>) -> ModelResult<AdtId> {
        let name = adt.name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(ModelError::DuplicateType(name));
        }
        let id = AdtId(self.adts.len() as u32);
        for f in adt.functions() {
            self.functions.insert((id, f.name.clone()), f);
        }
        for op in adt.operators() {
            if !self.functions.contains_key(&(id, op.function.clone())) {
                return Err(ModelError::AdtError(format!(
                    "ADT '{}' registers operator '{}' for missing function '{}'",
                    name, op.symbol, op.function
                )));
            }
            self.operators
                .entry(op.symbol.clone())
                .or_default()
                .push((id, op));
        }
        self.by_name.insert(name, id);
        self.adts.push(adt);
        Ok(id)
    }

    /// Look up an ADT by name.
    pub fn lookup(&self, name: &str) -> ModelResult<AdtId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownAdt(name.into()))
    }

    /// Whether a name is a registered ADT.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Get an ADT by id.
    pub fn get(&self, id: AdtId) -> &Arc<dyn AdtType> {
        &self.adts[id.0 as usize]
    }

    /// Parse a literal of the named ADT.
    pub fn parse(&self, id: AdtId, literal: &str) -> ModelResult<Value> {
        Ok(Value::Adt(id, self.get(id).parse(literal)?))
    }

    /// Render an ADT value.
    pub fn display(&self, id: AdtId, bytes: &[u8]) -> String {
        self.get(id).display(bytes)
    }

    /// Whether the ADT supports ordering (and thus indexes) — the
    /// access-method applicability lookup.
    pub fn indexable(&self, id: AdtId) -> bool {
        self.get(id).ordered()
    }

    /// Look up a function on a specific ADT.
    pub fn function(&self, id: AdtId, name: &str) -> ModelResult<&AdtFunction> {
        self.functions
            .get(&(id, name.to_string()))
            .ok_or_else(|| ModelError::UnknownAdt(format!("{}.{}", self.get(id).name(), name)))
    }

    /// Resolve a function by name across all ADTs given the receiver's ADT
    /// id, supporting the symmetric call syntax `Add(x, y)`: the first
    /// argument's type owns the function.
    pub fn resolve_function(&self, name: &str, receiver: AdtId) -> ModelResult<&AdtFunction> {
        self.function(receiver, name)
    }

    /// All registrations for an operator symbol.
    pub fn operator_candidates(&self, symbol: &str) -> &[(AdtId, AdtOperator)] {
        self.operators
            .get(symbol)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Every registered operator symbol with its parse properties
    /// (the EXCESS parser folds these into its operator table).
    pub fn operator_symbols(&self) -> impl Iterator<Item = (&str, u8, Assoc, usize)> {
        self.operators.iter().flat_map(|(sym, regs)| {
            regs.iter()
                .map(move |(_, op)| (sym.as_str(), op.precedence, op.assoc, op.arity))
        })
    }

    /// Apply an operator to evaluated arguments: dispatch on the first
    /// ADT-typed argument.
    pub fn apply_operator(&self, symbol: &str, args: &[Value]) -> ModelResult<Value> {
        let recv = args
            .iter()
            .find_map(|v| match v {
                Value::Adt(id, _) => Some(*id),
                _ => None,
            })
            .ok_or_else(|| ModelError::UnknownAdt(format!("operator {symbol}")))?;
        let cands = self.operator_candidates(symbol);
        let (id, op) = cands
            .iter()
            .find(|(id, op)| *id == recv && op.arity == args.len())
            .ok_or_else(|| {
                ModelError::UnknownAdt(format!(
                    "operator {symbol}/{} on {}",
                    args.len(),
                    self.get(recv).name()
                ))
            })?;
        let f = self.function(*id, &op.function)?;
        (f.body)(args)
    }

    /// Key-encode an ADT value for indexing/comparison.
    pub fn key_encode(&self, id: AdtId, bytes: &[u8]) -> ModelResult<Vec<u8>> {
        self.get(id).key_encode(bytes).ok_or_else(|| {
            ModelError::AdtError(format!("ADT '{}' is not ordered", self.get(id).name()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Celsius;

    impl AdtType for Celsius {
        fn name(&self) -> &str {
            "Celsius"
        }
        fn parse(&self, literal: &str) -> ModelResult<Vec<u8>> {
            let v: f64 = literal
                .trim()
                .parse()
                .map_err(|e| ModelError::AdtError(format!("bad Celsius literal: {e}")))?;
            Ok(v.to_le_bytes().to_vec())
        }
        fn display(&self, bytes: &[u8]) -> String {
            let mut a = [0u8; 8];
            a.copy_from_slice(bytes);
            format!("{}°C", f64::from_le_bytes(a))
        }
        fn functions(&self) -> Vec<AdtFunction> {
            vec![AdtFunction {
                name: "Warmer".into(),
                arity: 2,
                returns: AdtReturn::Bool,
                body: Arc::new(|args| {
                    let get = |v: &Value| -> ModelResult<f64> {
                        match v {
                            Value::Adt(_, b) => {
                                let mut a = [0u8; 8];
                                a.copy_from_slice(b);
                                Ok(f64::from_le_bytes(a))
                            }
                            other => Err(ModelError::AdtError(format!("not Celsius: {other:?}"))),
                        }
                    };
                    Ok(Value::Bool(get(&args[0])? > get(&args[1])?))
                }),
            }]
        }
        fn operators(&self) -> Vec<AdtOperator> {
            vec![AdtOperator {
                symbol: ">>".into(),
                precedence: 3,
                assoc: Assoc::Left,
                function: "Warmer".into(),
                arity: 2,
            }]
        }
    }

    #[test]
    fn register_parse_display() {
        let mut reg = AdtRegistry::new();
        let id = reg.register(Arc::new(Celsius)).unwrap();
        let v = reg.parse(id, "21.5").unwrap();
        match &v {
            Value::Adt(got, bytes) => {
                assert_eq!(*got, id);
                assert_eq!(reg.display(id, bytes), "21.5°C");
            }
            other => panic!("expected adt value, got {other:?}"),
        }
        assert!(reg.parse(id, "hot").is_err());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut reg = AdtRegistry::new();
        reg.register(Arc::new(Celsius)).unwrap();
        assert!(matches!(
            reg.register(Arc::new(Celsius)),
            Err(ModelError::DuplicateType(_))
        ));
    }

    #[test]
    fn function_and_operator_dispatch() {
        let mut reg = AdtRegistry::new();
        let id = reg.register(Arc::new(Celsius)).unwrap();
        let a = reg.parse(id, "30").unwrap();
        let b = reg.parse(id, "20").unwrap();
        let f = reg.function(id, "Warmer").unwrap();
        assert_eq!(
            (f.body)(&[a.clone(), b.clone()]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            reg.apply_operator(">>", &[b, a]).unwrap(),
            Value::Bool(false)
        );
        assert!(reg.function(id, "Cooler").is_err());
        assert!(reg
            .apply_operator("@@", &[reg.parse(id, "1").unwrap()])
            .is_err());
    }

    #[test]
    fn operator_for_missing_function_rejected() {
        struct Broken;
        impl AdtType for Broken {
            fn name(&self) -> &str {
                "Broken"
            }
            fn parse(&self, _: &str) -> ModelResult<Vec<u8>> {
                Ok(vec![])
            }
            fn display(&self, _: &[u8]) -> String {
                String::new()
            }
            fn operators(&self) -> Vec<AdtOperator> {
                vec![AdtOperator {
                    symbol: "!!".into(),
                    precedence: 4,
                    assoc: Assoc::Left,
                    function: "Nothing".into(),
                    arity: 2,
                }]
            }
        }
        let mut reg = AdtRegistry::new();
        assert!(matches!(
            reg.register(Arc::new(Broken)),
            Err(ModelError::AdtError(_))
        ));
    }

    #[test]
    fn builtins_present() {
        let reg = AdtRegistry::with_builtins();
        assert!(reg.contains("Date"));
        assert!(reg.contains("Complex"));
        assert!(reg.contains("Polygon"));
    }
}
