//! The EXTRA type system: base types, constructors and value semantics.
//!
//! Predefined base types (paper §2.1): integers of various sizes, single
//! and double precision floats, booleans, character strings, and
//! enumerations. New base types arrive through the ADT facility
//! ([`crate::adt`]).
//!
//! Type constructors: tuple, set (`{T}`), fixed-length array (`[n] T`),
//! variable-length array (`[] T`), and references. An attribute's value
//! carries one of three ownership semantics ([`Ownership`]) — own, ref,
//! own ref — treated uniformly by the EXCESS query language.

use std::fmt;

use crate::adt::AdtId;
use crate::schema::TypeId;

/// Value semantics of an attribute or collection element (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ownership {
    /// A value: part of its parent, no object identity ("it lacks identity
    /// in the sense of \[Khos86\]"). The default.
    #[default]
    Own,
    /// A reference to an independently existing object (GEM reference
    /// attributes). May be null; the referenced object must exist
    /// elsewhere in the database.
    Ref,
    /// An exclusively owned component object *with* identity: deleted with
    /// its parent, referenceable from elsewhere, but never shared between
    /// two owners (ORION composite objects).
    OwnRef,
}

impl fmt::Display for Ownership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ownership::Own => write!(f, "own"),
            Ownership::Ref => write!(f, "ref"),
            Ownership::OwnRef => write!(f, "own ref"),
        }
    }
}

/// Predefined base types (paper §2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BaseType {
    /// 8-bit signed integer.
    Int1,
    /// 16-bit signed integer.
    Int2,
    /// 32-bit signed integer.
    Int4,
    /// 64-bit signed integer.
    Int8,
    /// Single-precision float.
    Float4,
    /// Double-precision float.
    Float8,
    /// Boolean.
    Boolean,
    /// Fixed-length character string.
    Char(usize),
    /// Variable-length character string.
    Varchar,
    /// Enumeration over the given symbols (ordered as listed).
    Enum(Vec<String>),
}

impl BaseType {
    /// Inclusive integer range, if this is an integer type.
    pub fn int_range(&self) -> Option<(i64, i64)> {
        match self {
            BaseType::Int1 => Some((i8::MIN as i64, i8::MAX as i64)),
            BaseType::Int2 => Some((i16::MIN as i64, i16::MAX as i64)),
            BaseType::Int4 => Some((i32::MIN as i64, i32::MAX as i64)),
            BaseType::Int8 => Some((i64::MIN, i64::MAX)),
            _ => None,
        }
    }

    /// Whether this is any integer type.
    pub fn is_integer(&self) -> bool {
        self.int_range().is_some()
    }

    /// Whether this is any floating-point type.
    pub fn is_float(&self) -> bool {
        matches!(self, BaseType::Float4 | BaseType::Float8)
    }

    /// Whether this is any string type.
    pub fn is_string(&self) -> bool {
        matches!(self, BaseType::Char(_) | BaseType::Varchar)
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Int1 => write!(f, "int1"),
            BaseType::Int2 => write!(f, "int2"),
            BaseType::Int4 => write!(f, "int4"),
            BaseType::Int8 => write!(f, "int8"),
            BaseType::Float4 => write!(f, "float4"),
            BaseType::Float8 => write!(f, "float8"),
            BaseType::Boolean => write!(f, "boolean"),
            BaseType::Char(n) => write!(f, "char({n})"),
            BaseType::Varchar => write!(f, "varchar"),
            BaseType::Enum(syms) => write!(f, "enum({})", syms.join(", ")),
        }
    }
}

/// An EXTRA type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A predefined base type.
    Base(BaseType),
    /// An abstract data type registered with the ADT facility.
    Adt(AdtId),
    /// A named schema (tuple) type from the type registry.
    Schema(TypeId),
    /// An anonymous tuple type.
    Tuple(Vec<Attribute>),
    /// A set: `{ T }`.
    Set(Box<QualType>),
    /// An array: fixed-length `[n] T` (`Some(n)`) or variable-length
    /// `[] T` (`None`).
    Array(Option<usize>, Box<QualType>),
    /// The type of the `null` literal and of empty set literals: conforms
    /// to and unifies with every type (used during type inference only;
    /// never stored in a schema).
    Unknown,
}

impl Type {
    /// Shorthand for a base type.
    pub fn base(b: BaseType) -> Type {
        Type::Base(b)
    }

    /// Shorthand: `int4`.
    pub fn int4() -> Type {
        Type::Base(BaseType::Int4)
    }

    /// Shorthand: `varchar`.
    pub fn varchar() -> Type {
        Type::Base(BaseType::Varchar)
    }

    /// Shorthand: `float8`.
    pub fn float8() -> Type {
        Type::Base(BaseType::Float8)
    }

    /// Shorthand: `boolean`.
    pub fn boolean() -> Type {
        Type::Base(BaseType::Boolean)
    }

    /// Whether this type's instances are collections (sets/arrays).
    pub fn is_collection(&self) -> bool {
        matches!(self, Type::Set(_) | Type::Array(_, _))
    }

    /// The element type, if this is a collection.
    pub fn element(&self) -> Option<&QualType> {
        match self {
            Type::Set(e) | Type::Array(_, e) => Some(e),
            _ => None,
        }
    }
}

/// A type together with its ownership qualifier, e.g. `own ref Person`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QualType {
    /// Value semantics.
    pub mode: Ownership,
    /// The underlying type.
    pub ty: Type,
}

impl QualType {
    /// An `own` (plain value) qualified type.
    pub fn own(ty: Type) -> QualType {
        QualType {
            mode: Ownership::Own,
            ty,
        }
    }

    /// A `ref` qualified type.
    pub fn reference(ty: Type) -> QualType {
        QualType {
            mode: Ownership::Ref,
            ty,
        }
    }

    /// An `own ref` qualified type.
    pub fn own_ref(ty: Type) -> QualType {
        QualType {
            mode: Ownership::OwnRef,
            ty,
        }
    }

    /// Whether values of this qualified type are stored as OIDs.
    pub fn is_object_valued(&self) -> bool {
        !matches!(self.mode, Ownership::Own)
    }
}

/// A named attribute of a tuple/schema type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Qualified type.
    pub qty: QualType,
}

impl Attribute {
    /// Construct an `own` attribute.
    pub fn own(name: &str, ty: Type) -> Attribute {
        Attribute {
            name: name.into(),
            qty: QualType::own(ty),
        }
    }

    /// Construct a `ref` attribute.
    pub fn reference(name: &str, ty: Type) -> Attribute {
        Attribute {
            name: name.into(),
            qty: QualType::reference(ty),
        }
    }

    /// Construct an `own ref` attribute.
    pub fn own_ref(name: &str, ty: Type) -> Attribute {
        Attribute {
            name: name.into(),
            qty: QualType::own_ref(ty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges() {
        assert_eq!(BaseType::Int1.int_range(), Some((-128, 127)));
        assert_eq!(BaseType::Int2.int_range(), Some((-32768, 32767)));
        assert!(BaseType::Int4.is_integer());
        assert!(!BaseType::Float4.is_integer());
        assert!(BaseType::Float8.is_float());
        assert!(BaseType::Varchar.is_string());
        assert!(BaseType::Char(10).is_string());
    }

    #[test]
    fn ownership_default_is_own() {
        // "By default, all attributes are taken to be own attributes."
        assert_eq!(Ownership::default(), Ownership::Own);
    }

    #[test]
    fn display_forms() {
        assert_eq!(BaseType::Char(20).to_string(), "char(20)");
        assert_eq!(
            BaseType::Enum(vec!["red".into(), "blue".into()]).to_string(),
            "enum(red, blue)"
        );
        assert_eq!(Ownership::OwnRef.to_string(), "own ref");
    }

    #[test]
    fn collection_helpers() {
        let set = Type::Set(Box::new(QualType::own(Type::int4())));
        assert!(set.is_collection());
        assert_eq!(set.element().unwrap().ty, Type::int4());
        assert!(!Type::varchar().is_collection());
        let arr = Type::Array(Some(10), Box::new(QualType::own(Type::float8())));
        assert!(arr.is_collection());
    }

    #[test]
    fn object_valued_modes() {
        assert!(!QualType::own(Type::int4()).is_object_valued());
        assert!(QualType::reference(Type::Schema(TypeId(1))).is_object_valued());
        assert!(QualType::own_ref(Type::Schema(TypeId(1))).is_object_valued());
    }
}
