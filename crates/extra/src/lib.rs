//! # extra-model
//!
//! The **EXTRA data model** from "A Data Model and Query Language for
//! EXODUS" (Carey, DeWitt & Vandenberg, SIGMOD 1988).
//!
//! EXTRA is a structurally object-oriented data model synthesizing GEM,
//! POSTGRES, NF², DAPLEX, ORION and GemStone ideas:
//!
//! * **Base types** (`int1..int8`, `float4/float8`, `boolean`, `char(n)`,
//!   `varchar`, enumerations) plus an **ADT facility** for new base types
//!   ([`adt`], with `Date`, `Complex` and `Polygon` built in as the
//!   paper's examples).
//! * **Type constructors**: tuple, set, fixed- and variable-length array,
//!   and references ([`types`]).
//! * **Three attribute-value semantics** ([`types::Ownership`]):
//!   - `own` — a value, no object identity;
//!   - `ref` — a GEM-style reference to an independently existing object;
//!   - `own ref` — an exclusively-owned component object *with* identity
//!     (ORION composite objects / E-R weak entities).
//! * **Separation of type and instance**: types are defined in a
//!   [`schema::TypeRegistry`]; collections of instances are created
//!   explicitly, so one type may populate many sets/arrays.
//! * **Multiple inheritance** with *no automatic conflict resolution*:
//!   name clashes must be resolved by renaming ([`schema`]).
//! * **Object identity & integrity** ([`store`]): objects live in the
//!   storage manager keyed by OID; deleting an object cascades to its
//!   `own ref` components and nulls out dangling `ref`s (GEM-style), and
//!   `own ref` exclusivity is enforced through owner tracking.

#![deny(rustdoc::broken_intra_doc_links)]
pub mod adt;
pub mod adts;
pub mod error;
pub mod schema;
pub mod store;
pub mod typeio;
pub mod types;
pub mod value;
pub mod valueio;

pub use adt::{AdtFunction, AdtId, AdtOperator, AdtRegistry, AdtType};
pub use error::{ModelError, ModelResult};
pub use schema::{SchemaType, TypeId, TypeRegistry};
pub use store::{MemberScan, ObjectStore, StoreRoots};
pub use types::{Attribute, BaseType, Ownership, QualType, Type};
pub use value::Value;
