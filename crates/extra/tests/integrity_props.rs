//! Property tests for the object store's integrity invariants: after any
//! sequence of creates, link updates, and deletes, no live object holds a
//! dangling reference, and ownership is exclusive.

use proptest::prelude::*;

use exodus_storage::{Oid, StorageManager};
use extra_model::schema::InheritSpec;
use extra_model::{Attribute, ModelError, ObjectStore, QualType, Type, TypeRegistry, Value};

struct World {
    reg: TypeRegistry,
    store: ObjectStore,
    node: extra_model::TypeId,
    live: Vec<Oid>,
}

fn world() -> World {
    let mut reg = TypeRegistry::new();
    // Node: a ref link and an own-ref component slot.
    let node = reg.declare("Node").unwrap();
    reg.complete(
        node,
        Vec::<InheritSpec>::new(),
        vec![
            Attribute::own("tag", Type::int4()),
            Attribute::reference("link", Type::Schema(node)),
            Attribute::own_ref("part", Type::Schema(node)),
        ],
    )
    .unwrap();
    let store = ObjectStore::new(StorageManager::in_memory(512)).unwrap();
    World {
        reg,
        store,
        node,
        live: Vec::new(),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Create(i64),
    /// Link live[a] → live[b] via the `ref` attribute.
    Link(usize, usize),
    /// Adopt live[b] as live[a]'s own-ref part.
    Adopt(usize, usize),
    Delete(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..100).prop_map(Op::Create),
        (0usize..32, 0usize..32).prop_map(|(a, b)| Op::Link(a, b)),
        (0usize..32, 0usize..32).prop_map(|(a, b)| Op::Adopt(a, b)),
        (0usize..32).prop_map(Op::Delete),
    ]
}

fn node_value(tag: i64, link: Value, part: Value) -> Value {
    Value::Tuple(vec![Value::Int(tag), link, part])
}

impl World {
    fn qty(&self) -> QualType {
        QualType::own(Type::Schema(self.node))
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Create(tag) => {
                let oid = self
                    .store
                    .create_object(
                        &self.reg,
                        &self.qty(),
                        node_value(*tag, Value::Null, Value::Null),
                    )
                    .unwrap();
                self.live.push(oid);
            }
            Op::Link(a, b) => {
                if self.live.is_empty() {
                    return;
                }
                let a = self.live[a % self.live.len()];
                let b = self.live[b % self.live.len()];
                let (_, _, mut v) = self.store.get(a).unwrap();
                if let Value::Tuple(fields) = &mut v {
                    fields[1] = Value::Ref(b);
                }
                self.store.set_value(&self.reg, a, v).unwrap();
            }
            Op::Adopt(a, b) => {
                if self.live.is_empty() {
                    return;
                }
                let a = self.live[a % self.live.len()];
                let b = self.live[b % self.live.len()];
                if a == b {
                    return;
                }
                let (_, owner, _) = self.store.get(b).unwrap();
                let (_, _, mut v) = self.store.get(a).unwrap();
                if let Value::Tuple(fields) = &mut v {
                    if matches!(fields[2], Value::Ref(_)) {
                        return; // already holds a part; replacing would kill it
                    }
                    fields[2] = Value::Ref(b);
                }
                let result = self.store.set_value(&self.reg, a, v);
                match result {
                    Ok(()) => assert!(
                        owner.is_null() || owner == a,
                        "adoption of an owned object must have failed"
                    ),
                    Err(ModelError::Integrity(_)) => {
                        assert!(!owner.is_null(), "free object rejected?");
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
            Op::Delete(a) => {
                if self.live.is_empty() {
                    return;
                }
                let oid = self.live[a % self.live.len()];
                self.store.delete_object(&self.reg, oid).unwrap();
                // Cascades may have taken others with it; recompute below.
            }
        }
        self.live.retain(|o| self.store.exists(*o).unwrap());
    }

    /// Invariants: every live object's `link` is live or null; every
    /// `part` is live, owned by exactly this object; owners are live.
    fn check(&self) {
        for &oid in &self.live {
            let (_, owner, v) = self.store.get(oid).unwrap();
            if !owner.is_null() {
                assert!(
                    self.store.exists(owner).unwrap(),
                    "{oid} has a dead owner {owner}"
                );
            }
            let Value::Tuple(fields) = &v else {
                panic!("not a tuple")
            };
            match &fields[1] {
                Value::Null => {}
                Value::Ref(t) => assert!(
                    self.store.exists(*t).unwrap(),
                    "{oid} has a dangling ref {t}"
                ),
                other => panic!("bad link: {other:?}"),
            }
            match &fields[2] {
                Value::Null => {}
                Value::Ref(t) => {
                    assert!(self.store.exists(*t).unwrap(), "{oid} owns a dead part {t}");
                    let part_owner = self.store.owner_of(*t).unwrap();
                    assert_eq!(part_owner, oid, "exclusive ownership violated");
                }
                other => panic!("bad part: {other:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn integrity_invariants_hold(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut w = world();
        for op in &ops {
            w.apply(op);
            w.check();
        }
    }
}

#[test]
fn delete_cycle_of_refs_terminates() {
    let mut w = world();
    w.apply(&Op::Create(1));
    w.apply(&Op::Create(2));
    w.apply(&Op::Link(0, 1));
    w.apply(&Op::Link(1, 0));
    w.apply(&Op::Delete(0));
    w.check();
    assert_eq!(w.live.len(), 1);
    // Survivor's link was nulled.
    let (_, _, v) = w.store.get(w.live[0]).unwrap();
    match v {
        Value::Tuple(fields) => assert_eq!(fields[1], Value::Null),
        other => panic!("{other:?}"),
    }
}

#[test]
fn deep_ownership_chain_cascades() {
    let mut w = world();
    for i in 0..10 {
        w.apply(&Op::Create(i));
    }
    // 0 owns 1 owns 2 owns ... owns 9.
    for i in 0..9 {
        w.apply(&Op::Adopt(i, i + 1));
    }
    w.check();
    w.apply(&Op::Delete(0));
    assert!(w.live.is_empty(), "whole chain cascades: {:?}", w.live);
}
