//! # excess-sema
//!
//! Semantic analysis for EXCESS: name resolution, type checking, range
//! resolution, and function/procedure signature checking.
//!
//! The analyzer enforces the paper's semantic rules:
//!
//! * **Uniform own/ref/own-ref treatment**: attribute paths step through
//!   references transparently (`E.dept.floor` works whether `dept` is
//!   `own`, `ref`, or `own ref`) — "casual users can ignore the
//!   distinction".
//! * **References compare only with `is`/`isnot`** ("these are the only
//!   comparison operators applicable to references"); value comparisons
//!   on references are rejected.
//! * **Range resolution**: a range variable may range over a named set, a
//!   nested-set path (`Employees.kids` — iterating employees implicitly),
//!   or another variable's set-valued attribute (`E.kids`), yielding
//!   dependent bindings; `all` marks universal quantification.
//! * **Aggregate scoping**: `over` must name visible range variables; the
//!   aggregate consumes them (they do not escape); `by` partitions.
//! * **Function resolution through the type lattice**: an EXCESS function
//!   defined for `Person` applies to `Employee` receivers; the most
//!   specific applicable definition wins. ADT functions resolve by the
//!   receiver's ADT in both call syntaxes (`x.Add(y)` / `Add(x, y)`).

#![deny(rustdoc::broken_intra_doc_links)]
pub mod catalog;
pub mod error;
pub mod infer;
pub mod lower;
pub mod resolve;

pub use catalog::{
    AttrStats, CatalogLookup, CollectionStats, FunctionDef, IndexInfo, NamedObject, ProcedureDef,
    StatOp, SystemViewDef, HISTOGRAM_BUCKETS,
};
pub use error::{SemaError, SemaResult};
pub use infer::SemaCtx;
pub use resolve::{CheckedRetrieve, RangeEnv, ResolvedRange, RootSource};

/// Validate a procedure body at definition time: transaction control
/// (`begin` / `commit` / `abort`) is session-level and may not be
/// captured inside a procedure — a stored `commit` would publish a
/// transaction the calling session still believes is open. Recurses
/// into `explain` / `observe` wrappers.
pub fn validate_procedure_body(body: &[excess_lang::Stmt]) -> SemaResult<()> {
    use excess_lang::Stmt;
    fn check(stmt: &Stmt) -> SemaResult<()> {
        match stmt {
            Stmt::Begin | Stmt::Commit | Stmt::Abort => Err(SemaError::Other(format!(
                "'{stmt}' cannot appear in a procedure body; transaction control \
                 belongs to the session"
            ))),
            Stmt::Explain { stmt, .. } | Stmt::Observe { stmt } => check(stmt),
            _ => Ok(()),
        }
    }
    body.iter().try_for_each(check)
}
