//! Expression type inference and checking.

use std::collections::HashMap;

use excess_lang::{Aggregate, BinOp, Expr, Lit, UnOp};
use extra_model::adt::AdtReturn;
use extra_model::{AdtRegistry, BaseType, Ownership, QualType, Type, TypeRegistry};

use crate::catalog::{CatalogLookup, FunctionDef};
use crate::error::{SemaError, SemaResult};

/// Names of the built-in aggregate functions.
pub const BUILTIN_AGGS: &[&str] = &["count", "sum", "avg", "min", "max", "unique"];

/// The analysis context: registries, catalog, and the variables in scope.
pub struct SemaCtx<'a> {
    /// Schema types.
    pub types: &'a TypeRegistry,
    /// ADTs.
    pub adts: &'a AdtRegistry,
    /// Named objects, functions, procedures, indexes.
    pub catalog: &'a dyn CatalogLookup,
    /// Range variables and parameters in scope.
    pub vars: HashMap<String, QualType>,
}

fn int8() -> QualType {
    QualType::own(Type::Base(BaseType::Int8))
}

fn float8() -> QualType {
    QualType::own(Type::float8())
}

fn boolean() -> QualType {
    QualType::own(Type::boolean())
}

fn unknown() -> QualType {
    QualType::own(Type::Unknown)
}

fn is_numeric(t: &Type) -> bool {
    matches!(t, Type::Base(b) if b.is_integer() || b.is_float()) || matches!(t, Type::Unknown)
}

fn is_integer(t: &Type) -> bool {
    matches!(t, Type::Base(b) if b.is_integer()) || matches!(t, Type::Unknown)
}

impl<'a> SemaCtx<'a> {
    /// Build a context with no variables in scope.
    pub fn new(
        types: &'a TypeRegistry,
        adts: &'a AdtRegistry,
        catalog: &'a dyn CatalogLookup,
    ) -> Self {
        SemaCtx {
            types,
            adts,
            catalog,
            vars: HashMap::new(),
        }
    }

    /// Whether values of this type are references at runtime.
    pub fn is_ref_valued(&self, qty: &QualType) -> bool {
        qty.mode != Ownership::Own
    }

    fn display(&self, qty: &QualType) -> String {
        self.types.display_qual(qty)
    }

    /// Attribute access through a tuple-structured type, stepping through
    /// references transparently (the uniform treatment of §2.2).
    pub fn attr_type(&self, base: &QualType, attr: &str) -> SemaResult<QualType> {
        match &base.ty {
            Type::Schema(tid) => {
                let st = self.types.get(*tid);
                st.attribute(attr)
                    .map(|(_, a)| a.qty.clone())
                    .ok_or_else(|| SemaError::UnknownAttribute {
                        ty: st.name.clone(),
                        attr: attr.into(),
                    })
            }
            Type::Tuple(attrs) => attrs
                .iter()
                .find(|a| a.name == attr)
                .map(|a| a.qty.clone())
                .ok_or_else(|| SemaError::UnknownAttribute {
                    ty: self.display(base),
                    attr: attr.into(),
                }),
            Type::Unknown => Ok(unknown()),
            Type::Set(_) | Type::Array(_, _) => Err(SemaError::Other(format!(
                "cannot take attribute '{attr}' of a collection; \
                 bind a range variable over it first"
            ))),
            _ => Err(SemaError::UnknownAttribute {
                ty: self.display(base),
                attr: attr.into(),
            }),
        }
    }

    /// Position of an attribute in its tuple (for the evaluator).
    pub fn attr_pos(&self, base: &QualType, attr: &str) -> SemaResult<usize> {
        match &base.ty {
            Type::Schema(tid) => {
                let st = self.types.get(*tid);
                st.attribute(attr)
                    .map(|(i, _)| i)
                    .ok_or_else(|| SemaError::UnknownAttribute {
                        ty: st.name.clone(),
                        attr: attr.into(),
                    })
            }
            Type::Tuple(attrs) => attrs.iter().position(|a| a.name == attr).ok_or_else(|| {
                SemaError::UnknownAttribute {
                    ty: self.display(base),
                    attr: attr.into(),
                }
            }),
            other => Err(SemaError::UnknownAttribute {
                ty: self.types.display_type(other),
                attr: attr.into(),
            }),
        }
    }

    /// Unify two types (for set literals, unions, branch results).
    pub fn unify(&self, a: &QualType, b: &QualType) -> SemaResult<QualType> {
        if matches!(a.ty, Type::Unknown) {
            return Ok(b.clone());
        }
        if matches!(b.ty, Type::Unknown) {
            return Ok(a.clone());
        }
        if a == b {
            return Ok(a.clone());
        }
        // Numeric widening.
        if is_numeric(&a.ty) && is_numeric(&b.ty) {
            return Ok(if is_integer(&a.ty) && is_integer(&b.ty) {
                int8()
            } else {
                float8()
            });
        }
        if self.types.assignable(&a.ty, &b.ty) && a.mode == b.mode {
            return Ok(b.clone());
        }
        if self.types.assignable(&b.ty, &a.ty) && a.mode == b.mode {
            return Ok(a.clone());
        }
        Err(SemaError::TypeMismatch {
            expected: self.display(a),
            got: self.display(b),
        })
    }

    /// Whether two types are value-comparable with `=`/`!=`.
    fn eq_comparable(&self, a: &QualType, b: &QualType) -> bool {
        self.unify(a, b).is_ok()
    }

    /// Whether a type has a total order (for `<` and min/max).
    fn is_ordered(&self, t: &Type) -> bool {
        match t {
            // All base types are ordered (booleans order false < true,
            // enums by ordinal, strings lexicographically).
            Type::Base(_) => true,
            Type::Adt(id) => self.adts.indexable(*id),
            Type::Unknown => true,
            _ => false,
        }
    }

    fn adt_result(&self, ret: AdtReturn, recv: extra_model::AdtId) -> QualType {
        match ret {
            AdtReturn::SameAdt => QualType::own(Type::Adt(recv)),
            AdtReturn::Int => int8(),
            AdtReturn::Float => float8(),
            AdtReturn::Bool => boolean(),
            AdtReturn::Varchar => QualType::own(Type::varchar()),
        }
    }

    /// Resolve the most specific EXCESS function named `name` applicable to
    /// a first argument of type `first`.
    pub fn resolve_excess_function(
        &self,
        name: &str,
        first: Option<&QualType>,
        argc: usize,
    ) -> SemaResult<FunctionDef> {
        let candidates = self.catalog.functions_named(name);
        if candidates.is_empty() {
            return Err(SemaError::Function(format!("unknown function '{name}'")));
        }
        let mut best: Option<FunctionDef> = None;
        for c in candidates {
            if c.params.len() != argc {
                continue;
            }
            let applicable = match (&c.attached_to, first) {
                (Some(tid), Some(f)) => match &f.ty {
                    Type::Schema(sub) => self.types.is_subtype(*sub, *tid),
                    Type::Unknown => true,
                    _ => false,
                },
                (None, _) => true,
                (Some(_), None) => false,
            };
            if !applicable {
                continue;
            }
            // Most specific receiver wins.
            best = match best {
                None => Some(c),
                Some(b) => match (b.attached_to, c.attached_to) {
                    (Some(bt), Some(ct)) if self.types.is_subtype(ct, bt) => Some(c),
                    _ => Some(b),
                },
            };
        }
        best.ok_or_else(|| {
            SemaError::Function(format!(
                "no definition of '{name}' applies to these arguments"
            ))
        })
    }

    /// Infer an expression's type, raising semantic errors.
    pub fn infer(&self, expr: &Expr) -> SemaResult<QualType> {
        match expr {
            Expr::Lit(l) => Ok(match l {
                Lit::Int(_) => int8(),
                Lit::Float(_) => float8(),
                Lit::Str(_) => QualType::own(Type::varchar()),
                Lit::Bool(_) => boolean(),
                Lit::Null => unknown(),
            }),
            Expr::Var(name) => {
                if let Some(qty) = self.vars.get(name) {
                    return Ok(qty.clone());
                }
                if let Some(obj) = self.catalog.named(name) {
                    // A named schema-type object denotes a reference to it.
                    if matches!(obj.qty.ty, Type::Schema(_)) && obj.qty.mode == Ownership::Own {
                        return Ok(QualType::reference(obj.qty.ty));
                    }
                    return Ok(obj.qty);
                }
                Err(SemaError::UnknownName(name.clone()))
            }
            Expr::Path(base, attr) => {
                let bq = self.infer(base)?;
                self.attr_type(&bq, attr)
            }
            Expr::Index(base, idx) => {
                let bq = self.infer(base)?;
                let iq = self.infer(idx)?;
                if !is_integer(&iq.ty) {
                    return Err(SemaError::TypeMismatch {
                        expected: "integer index".into(),
                        got: self.display(&iq),
                    });
                }
                match &bq.ty {
                    Type::Array(_, elem) => Ok((**elem).clone()),
                    Type::Unknown => Ok(unknown()),
                    _ => Err(SemaError::TypeMismatch {
                        expected: "an array".into(),
                        got: self.display(&bq),
                    }),
                }
            }
            Expr::Call { recv, name, args } => self.infer_call(recv.as_deref(), name, args),
            Expr::Unary(UnOp::Not, e) => {
                let q = self.infer(e)?;
                if !matches!(q.ty, Type::Base(BaseType::Boolean) | Type::Unknown) {
                    return Err(SemaError::TypeMismatch {
                        expected: "boolean".into(),
                        got: self.display(&q),
                    });
                }
                Ok(boolean())
            }
            Expr::Unary(UnOp::Neg, e) => {
                let q = self.infer(e)?;
                if !is_numeric(&q.ty) {
                    return Err(SemaError::TypeMismatch {
                        expected: "a number".into(),
                        got: self.display(&q),
                    });
                }
                Ok(if is_integer(&q.ty) { int8() } else { float8() })
            }
            Expr::Binary(op, a, b) => self.infer_binary(*op, a, b),
            Expr::UserOp(sym, args) => {
                let mut recv = None;
                for a in args {
                    if let Type::Adt(id) = self.infer(a)?.ty {
                        recv = Some(id);
                        break;
                    }
                }
                let recv = recv.ok_or_else(|| {
                    SemaError::Function(format!("operator '{sym}' requires an ADT-typed operand"))
                })?;
                let cand = self
                    .adts
                    .operator_candidates(sym)
                    .iter()
                    .find(|(id, op)| *id == recv && op.arity == args.len())
                    .ok_or_else(|| {
                        SemaError::Function(format!(
                            "operator '{sym}' is not defined for {}",
                            self.adts.get(recv).name()
                        ))
                    })?;
                let f = self.adts.function(recv, &cand.1.function)?;
                Ok(self.adt_result(f.returns, recv))
            }
            Expr::Agg(agg) => self.infer_aggregate(agg),
            Expr::SetLit(items) => {
                let mut elem = unknown();
                for i in items {
                    let q = self.infer(i)?;
                    elem = self.unify(&elem, &q)?;
                }
                Ok(QualType::own(Type::Set(Box::new(elem))))
            }
            Expr::TupleLit(fields) => {
                let mut attrs = Vec::with_capacity(fields.len());
                for (n, e) in fields {
                    attrs.push(extra_model::Attribute {
                        name: n.clone(),
                        qty: self.infer(e)?,
                    });
                }
                Ok(QualType::own(Type::Tuple(attrs)))
            }
        }
    }

    fn infer_call(&self, recv: Option<&Expr>, name: &str, args: &[Expr]) -> SemaResult<QualType> {
        // ADT literal constructor: Date("8/29/1988").
        if recv.is_none() && self.adts.contains(name) && args.len() == 1 {
            if let Expr::Lit(Lit::Str(_)) = &args[0] {
                return Ok(QualType::own(Type::Adt(self.adts.lookup(name)?)));
            }
        }
        // Effective argument list: receiver first (the paper's symmetric
        // syntax makes x.f(y) and f(x, y) identical).
        let mut all: Vec<&Expr> = Vec::with_capacity(args.len() + 1);
        if let Some(r) = recv {
            all.push(r);
        }
        all.extend(args.iter());
        let first_ty = all.first().map(|e| self.infer(e)).transpose()?;
        // ADT function dispatch on the first argument's ADT.
        if let Some(QualType {
            ty: Type::Adt(id), ..
        }) = &first_ty
        {
            let f = self.adts.function(*id, name).map_err(|_| {
                SemaError::Function(format!(
                    "ADT '{}' has no function '{name}'",
                    self.adts.get(*id).name()
                ))
            })?;
            if f.arity != all.len() {
                return Err(SemaError::Function(format!(
                    "'{name}' takes {} arguments, got {}",
                    f.arity,
                    all.len()
                )));
            }
            // Remaining args only need to be inferable.
            for a in &all[1..] {
                self.infer(a)?;
            }
            return Ok(self.adt_result(f.returns, *id));
        }
        // EXCESS function (inherited through the lattice).
        let def = self.resolve_excess_function(name, first_ty.as_ref(), all.len())?;
        for (arg, (pname, pty)) in all.iter().zip(def.params.iter()) {
            let got = self.infer(arg)?;
            // Numeric literals/expressions coerce across widths (the
            // runtime conformance check enforces ranges).
            let numeric_ok = is_numeric(&got.ty)
                && is_numeric(&pty.ty)
                && !(matches!(&pty.ty, Type::Base(b) if b.is_integer())
                    && matches!(&got.ty, Type::Base(b) if b.is_float()));
            if !self.types.assignable(&got.ty, &pty.ty) && !numeric_ok {
                return Err(SemaError::TypeMismatch {
                    expected: format!("{} (parameter '{pname}' of '{name}')", self.display(pty)),
                    got: self.display(&got),
                });
            }
        }
        Ok(def.returns)
    }

    fn infer_binary(&self, op: BinOp, a: &Expr, b: &Expr) -> SemaResult<QualType> {
        let qa = self.infer(a)?;
        let qb = self.infer(b)?;
        let opname = op.to_string();
        match op {
            BinOp::Or | BinOp::And => {
                for q in [&qa, &qb] {
                    if !matches!(q.ty, Type::Base(BaseType::Boolean) | Type::Unknown) {
                        return Err(SemaError::TypeMismatch {
                            expected: "boolean".into(),
                            got: self.display(q),
                        });
                    }
                }
                Ok(boolean())
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                // ADT operator overload (e.g. Complex +).
                for q in [&qa, &qb] {
                    if let Type::Adt(id) = q.ty {
                        let cand = self
                            .adts
                            .operator_candidates(&opname)
                            .iter()
                            .find(|(cid, o)| *cid == id && o.arity == 2);
                        return match cand {
                            Some((_, o)) => {
                                let f = self.adts.function(id, &o.function)?;
                                Ok(self.adt_result(f.returns, id))
                            }
                            None => Err(SemaError::Function(format!(
                                "operator '{opname}' is not defined for {}",
                                self.adts.get(id).name()
                            ))),
                        };
                    }
                }
                for q in [&qa, &qb] {
                    if !is_numeric(&q.ty) {
                        return Err(SemaError::TypeMismatch {
                            expected: "a number".into(),
                            got: self.display(q),
                        });
                    }
                }
                if op == BinOp::Mod && (!is_integer(&qa.ty) || !is_integer(&qb.ty)) {
                    return Err(SemaError::TypeMismatch {
                        expected: "integers for %".into(),
                        got: format!("{} % {}", self.display(&qa), self.display(&qb)),
                    });
                }
                Ok(if is_integer(&qa.ty) && is_integer(&qb.ty) {
                    int8()
                } else {
                    float8()
                })
            }
            BinOp::Eq | BinOp::Ne => {
                // "the only comparison operators applicable to references
                // are is/isnot".
                if self.is_ref_valued(&qa) || self.is_ref_valued(&qb) {
                    return Err(SemaError::RefComparison(opname));
                }
                if !self.eq_comparable(&qa, &qb) {
                    return Err(SemaError::TypeMismatch {
                        expected: self.display(&qa),
                        got: self.display(&qb),
                    });
                }
                Ok(boolean())
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                if self.is_ref_valued(&qa) || self.is_ref_valued(&qb) {
                    return Err(SemaError::RefComparison(opname));
                }
                if !self.eq_comparable(&qa, &qb) {
                    return Err(SemaError::TypeMismatch {
                        expected: self.display(&qa),
                        got: self.display(&qb),
                    });
                }
                if !self.is_ordered(&qa.ty) || !self.is_ordered(&qb.ty) {
                    return Err(SemaError::TypeMismatch {
                        expected: "an ordered type".into(),
                        got: self.display(&qa),
                    });
                }
                Ok(boolean())
            }
            BinOp::Is | BinOp::IsNot => {
                for q in [&qa, &qb] {
                    if !self.is_ref_valued(q) && !matches!(q.ty, Type::Unknown) {
                        return Err(SemaError::IsOnValue(self.display(q)));
                    }
                }
                Ok(boolean())
            }
            BinOp::In | BinOp::Contains => {
                let (member, set) = if op == BinOp::In {
                    (&qa, &qb)
                } else {
                    (&qb, &qa)
                };
                match &set.ty {
                    Type::Set(elem) => {
                        // Identity membership for ref-sets, value for own.
                        if elem.mode != Ownership::Own
                            && !self.is_ref_valued(member)
                            && !matches!(member.ty, Type::Unknown)
                        {
                            return Err(SemaError::TypeMismatch {
                                expected: "a reference (the set holds objects)".into(),
                                got: self.display(member),
                            });
                        }
                        if elem.mode == Ownership::Own && !self.eq_comparable(member, elem) {
                            return Err(SemaError::TypeMismatch {
                                expected: self.display(elem),
                                got: self.display(member),
                            });
                        }
                        Ok(boolean())
                    }
                    Type::Unknown => Ok(boolean()),
                    _ => Err(SemaError::TypeMismatch {
                        expected: "a set".into(),
                        got: self.display(set),
                    }),
                }
            }
            BinOp::Union | BinOp::Intersect | BinOp::SetMinus => match (&qa.ty, &qb.ty) {
                (Type::Set(ea), Type::Set(eb)) => {
                    let elem = self.unify(ea, eb)?;
                    Ok(QualType::own(Type::Set(Box::new(elem))))
                }
                (Type::Unknown, _) => Ok(qb),
                (_, Type::Unknown) => Ok(qa),
                _ => Err(SemaError::TypeMismatch {
                    expected: "sets".into(),
                    got: format!("{} {opname} {}", self.display(&qa), self.display(&qb)),
                }),
            },
        }
    }

    fn infer_aggregate(&self, agg: &Aggregate) -> SemaResult<QualType> {
        // `over` names must be visible range variables.
        for v in &agg.over {
            if !self.vars.contains_key(v) {
                return Err(SemaError::Aggregate(format!(
                    "'over {v}': no such range variable in scope"
                )));
            }
        }
        for e in &agg.by {
            self.infer(e)?;
        }
        if let Some(q) = &agg.qual {
            let qt = self.infer(q)?;
            if !matches!(qt.ty, Type::Base(BaseType::Boolean) | Type::Unknown) {
                return Err(SemaError::Aggregate(
                    "aggregate 'where' must be boolean".into(),
                ));
            }
        }
        let arg_ty = agg.arg.as_ref().map(|a| self.infer(a)).transpose()?;
        match agg.func.as_str() {
            "count" => Ok(int8()),
            "sum" | "avg" => {
                let at = arg_ty.ok_or_else(|| {
                    SemaError::Aggregate(format!("{} needs an argument", agg.func))
                })?;
                if !is_numeric(&at.ty) {
                    return Err(SemaError::Aggregate(format!(
                        "{} requires a numeric argument, got {}",
                        agg.func,
                        self.display(&at)
                    )));
                }
                if agg.func == "avg" {
                    Ok(float8())
                } else {
                    Ok(if is_integer(&at.ty) { int8() } else { float8() })
                }
            }
            "min" | "max" => {
                let at = arg_ty.ok_or_else(|| {
                    SemaError::Aggregate(format!("{} needs an argument", agg.func))
                })?;
                if !self.is_ordered(&at.ty) {
                    return Err(SemaError::Aggregate(format!(
                        "{} requires an ordered argument, got {}",
                        agg.func,
                        self.display(&at)
                    )));
                }
                Ok(at)
            }
            "unique" => {
                let at = arg_ty
                    .ok_or_else(|| SemaError::Aggregate("unique needs an argument".into()))?;
                Ok(QualType::own(Type::Set(Box::new(at))))
            }
            // User-defined set function: a function over a set of the
            // argument type (the E-generic mechanism of §4.3).
            other => {
                let at = arg_ty.unwrap_or_else(unknown);
                let set_of = QualType::own(Type::Set(Box::new(at)));
                let def = self.resolve_excess_function(other, Some(&set_of), 1)?;
                let (pname, pty) = &def.params[0];
                if !self.types.assignable(&set_of.ty, &pty.ty) {
                    return Err(SemaError::Aggregate(format!(
                        "set function '{other}' parameter '{pname}' expects {}, got {}",
                        self.display(pty),
                        self.display(&set_of)
                    )));
                }
                Ok(def.returns)
            }
        }
    }
}
