//! Semantic-analysis errors.

use std::fmt;

use extra_model::ModelError;

/// Errors raised during semantic analysis.
#[derive(Debug)]
pub enum SemaError {
    /// An identifier that is neither a range variable, parameter, nor
    /// named database object.
    UnknownName(String),
    /// An attribute missing from a type.
    UnknownAttribute {
        /// The type being accessed.
        ty: String,
        /// The missing attribute.
        attr: String,
    },
    /// A range or from-clause path that does not end in a set or array.
    NotIterable(String),
    /// A value comparison applied to references — the paper allows only
    /// `is`/`isnot` on references.
    RefComparison(String),
    /// `is`/`isnot` applied to non-references.
    IsOnValue(String),
    /// Operand/argument type mismatch.
    TypeMismatch {
        /// What the context required.
        expected: String,
        /// What was found.
        got: String,
    },
    /// Misuse of an aggregate (bad `over` variable, non-numeric `sum`...).
    Aggregate(String),
    /// Unknown or mis-applied function/procedure.
    Function(String),
    /// An error from the data-model layer (type definition, etc.).
    Model(ModelError),
    /// Anything else.
    Other(String),
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemaError::UnknownName(n) => {
                write!(
                    f,
                    "'{n}' is not a range variable, parameter or named object"
                )
            }
            SemaError::UnknownAttribute { ty, attr } => {
                write!(f, "type '{ty}' has no attribute '{attr}'")
            }
            SemaError::NotIterable(p) => {
                write!(
                    f,
                    "'{p}' is not a set or array; range variables need a collection"
                )
            }
            SemaError::RefComparison(op) => write!(
                f,
                "'{op}' cannot be applied to references; use 'is' or 'isnot' \
                 (the only comparisons applicable to references)"
            ),
            SemaError::IsOnValue(k) => {
                write!(
                    f,
                    "'is'/'isnot' compare object identity; operands are {k}, not references"
                )
            }
            SemaError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            SemaError::Aggregate(m) => write!(f, "aggregate error: {m}"),
            SemaError::Function(m) => write!(f, "function error: {m}"),
            SemaError::Model(e) => write!(f, "{e}"),
            SemaError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SemaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SemaError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SemaError {
    fn from(e: ModelError) -> Self {
        SemaError::Model(e)
    }
}

/// Convenience alias.
pub type SemaResult<T> = Result<T, SemaError>;
