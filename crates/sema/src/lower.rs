//! Lowering syntactic type expressions to EXTRA types.

use excess_lang::{Mode, QualTypeExpr, TypeExpr};
use extra_model::{AdtRegistry, Attribute, BaseType, Ownership, QualType, Type, TypeRegistry};

use crate::error::{SemaError, SemaResult};

/// Lower a syntactic ownership mode.
pub fn lower_mode(m: Mode) -> Ownership {
    match m {
        Mode::Own => Ownership::Own,
        Mode::Ref => Ownership::Ref,
        Mode::OwnRef => Ownership::OwnRef,
    }
}

/// Resolve a type name: base type, ADT, or schema type (in that order —
/// base-type names are reserved in practice).
pub fn lower_named(name: &str, types: &TypeRegistry, adts: &AdtRegistry) -> SemaResult<Type> {
    let base = match name {
        "int1" => Some(BaseType::Int1),
        "int2" => Some(BaseType::Int2),
        "int4" | "int" => Some(BaseType::Int4),
        "int8" => Some(BaseType::Int8),
        "float4" => Some(BaseType::Float4),
        "float8" | "float" => Some(BaseType::Float8),
        "boolean" | "bool" => Some(BaseType::Boolean),
        "varchar" | "string" => Some(BaseType::Varchar),
        _ => None,
    };
    if let Some(b) = base {
        return Ok(Type::Base(b));
    }
    if adts.contains(name) {
        return Ok(Type::Adt(adts.lookup(name)?));
    }
    if types.contains(name) {
        return Ok(Type::Schema(types.lookup(name)?));
    }
    Err(SemaError::UnknownName(name.into()))
}

/// Lower a syntactic type expression.
pub fn lower_type(te: &TypeExpr, types: &TypeRegistry, adts: &AdtRegistry) -> SemaResult<Type> {
    match te {
        TypeExpr::Named(n) => lower_named(n, types, adts),
        TypeExpr::Char(n) => Ok(Type::Base(BaseType::Char(*n))),
        TypeExpr::Enum(syms) => Ok(Type::Base(BaseType::Enum(syms.clone()))),
        TypeExpr::Set(e) => Ok(Type::Set(Box::new(lower_qual(e, types, adts)?))),
        TypeExpr::Array(n, e) => Ok(Type::Array(*n, Box::new(lower_qual(e, types, adts)?))),
        TypeExpr::Tuple(attrs) => {
            let mut out = Vec::with_capacity(attrs.len());
            for a in attrs {
                out.push(Attribute {
                    name: a.name.clone(),
                    qty: lower_qual(&a.qty, types, adts)?,
                });
            }
            Ok(Type::Tuple(out))
        }
    }
}

/// Lower a qualified type expression.
pub fn lower_qual(
    qte: &QualTypeExpr,
    types: &TypeRegistry,
    adts: &AdtRegistry,
) -> SemaResult<QualType> {
    Ok(QualType {
        mode: lower_mode(qte.mode),
        ty: lower_type(&qte.ty, types, adts)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_types_and_aliases() {
        let types = TypeRegistry::new();
        let adts = AdtRegistry::with_builtins();
        assert_eq!(lower_named("int4", &types, &adts).unwrap(), Type::int4());
        assert_eq!(lower_named("int", &types, &adts).unwrap(), Type::int4());
        assert_eq!(
            lower_named("float8", &types, &adts).unwrap(),
            Type::float8()
        );
        assert!(matches!(
            lower_named("Date", &types, &adts).unwrap(),
            Type::Adt(_)
        ));
        assert!(matches!(
            lower_named("Nothing", &types, &adts),
            Err(SemaError::UnknownName(_))
        ));
    }

    #[test]
    fn constructors_lower_recursively() {
        let mut types = TypeRegistry::new();
        let adts = AdtRegistry::new();
        let person = types
            .define(
                "Person",
                vec![],
                vec![Attribute::own("name", Type::varchar())],
            )
            .unwrap();
        let te = TypeExpr::Set(Box::new(QualTypeExpr {
            mode: Mode::OwnRef,
            ty: TypeExpr::Named("Person".into()),
        }));
        assert_eq!(
            lower_type(&te, &types, &adts).unwrap(),
            Type::Set(Box::new(QualType::own_ref(Type::Schema(person))))
        );
        let te = TypeExpr::Array(
            Some(3),
            Box::new(QualTypeExpr {
                mode: Mode::Own,
                ty: TypeExpr::Char(8),
            }),
        );
        assert_eq!(
            lower_type(&te, &types, &adts).unwrap(),
            Type::Array(
                Some(3),
                Box::new(QualType::own(Type::Base(BaseType::Char(8))))
            )
        );
    }
}
