//! Range resolution and statement checking.
//!
//! EXCESS variables range over named sets, nested-set paths, or other
//! variables' set-valued attributes. Two subtleties from the paper:
//!
//! * **Implicit range variables**: using a set's name in a path
//!   (`Employees.dept.floor = 2`) implicitly ranges over its members, and
//!   `range of C is Employees.kids` shares that implicit employee — "for
//!   each employee object in the Employees set, C will iterate over all
//!   the children of the employee".
//! * **Universal quantification**: `range of E is all Employees` makes the
//!   qualification implicitly universally quantified over `E`.

use std::collections::{HashMap, HashSet};

use excess_lang::{Aggregate, Expr, FromBinding, Stmt};
use extra_model::{Ownership, QualType, Type};

use crate::catalog::NamedObject;
use crate::error::{SemaError, SemaResult};
use crate::infer::SemaCtx;

/// Where a range variable's iteration starts.
#[derive(Debug, Clone)]
pub enum RootSource {
    /// Iterating the members of a named collection.
    Collection(NamedObject),
    /// Starting from a named single object (no iteration at the root).
    Object(NamedObject),
    /// Starting from another range variable's current binding.
    Var(String),
    /// Iterating a `sys.<name>` virtual collection, materialized from
    /// live engine state by the catalog's system-view providers.
    System(String),
}

/// A resolved range binding.
#[derive(Debug, Clone)]
pub struct ResolvedRange {
    /// Variable name (a collection's own name for implicit bindings).
    pub var: String,
    /// Universally quantified (`all`).
    pub universal: bool,
    /// Iteration root.
    pub root: RootSource,
    /// Attribute steps from the root to the iterated set.
    pub steps: Vec<String>,
    /// Element type each iteration binds.
    pub elem: QualType,
}

impl ResolvedRange {
    /// The variable this binding depends on, if any.
    pub fn depends_on(&self) -> Option<&str> {
        match &self.root {
            RootSource::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// Session-level range declarations (`range of V is ...`), in order.
#[derive(Debug, Clone, Default)]
pub struct RangeEnv {
    /// `(var, universal, path)` declarations; later declarations shadow
    /// earlier ones for the same variable.
    pub ranges: Vec<(String, bool, Expr)>,
}

impl RangeEnv {
    /// Record a `range of` statement.
    pub fn declare(&mut self, var: &str, universal: bool, path: Expr) {
        self.ranges.retain(|(v, _, _)| v != var);
        self.ranges.push((var.into(), universal, path));
    }

    /// Look up a declaration.
    pub fn get(&self, var: &str) -> Option<&(String, bool, Expr)> {
        self.ranges.iter().find(|(v, _, _)| v == var)
    }
}

/// A fully checked retrieve: dependency-ordered bindings plus the output
/// schema.
#[derive(Debug, Clone)]
pub struct CheckedRetrieve {
    /// Bindings in evaluation (dependency) order.
    pub bindings: Vec<ResolvedRange>,
    /// Output column names and types.
    pub output: Vec<(String, QualType)>,
}

/// Flatten a range path to `(root name, attribute steps)`.
fn flatten_path(e: &Expr) -> SemaResult<(String, Vec<String>)> {
    match e {
        Expr::Var(n) => Ok((n.clone(), Vec::new())),
        Expr::Path(base, attr) => {
            let (root, mut steps) = flatten_path(base)?;
            steps.push(attr.clone());
            Ok((root, steps))
        }
        other => Err(SemaError::Other(format!(
            "a range path may contain only attribute steps, found {other}"
        ))),
    }
}

/// Walk an expression, calling `on_var` for every bare variable reference
/// and `on_agg` for aggregates.
fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Path(b, _) => walk_expr(b, f),
        Expr::Index(b, i) => {
            walk_expr(b, f);
            walk_expr(i, f);
        }
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                walk_expr(r, f);
            }
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Unary(_, a) => walk_expr(a, f),
        Expr::Binary(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::UserOp(_, args) | Expr::SetLit(args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Agg(Aggregate { arg, by, qual, .. }) => {
            if let Some(a) = arg {
                walk_expr(a, f);
            }
            for b in by {
                walk_expr(b, f);
            }
            if let Some(q) = qual {
                walk_expr(q, f);
            }
        }
        Expr::TupleLit(fields) => {
            for (_, v) in fields {
                walk_expr(v, f);
            }
        }
        Expr::Var(_) | Expr::Lit(_) => {}
    }
}

/// Free variable-position names of an expression. Aggregate `over`
/// variables are *consumed* by the aggregate — they iterate inside it and
/// are not free in the enclosing query (so `sum(E.salary over E ...)` as a
/// target does not join `E` into the outer query).
pub fn free_names(e: &Expr) -> HashSet<String> {
    let mut out = HashSet::new();
    collect_free(e, &mut out);
    out
}

fn collect_free(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Var(n) => {
            out.insert(n.clone());
        }
        Expr::Agg(Aggregate {
            arg,
            over,
            by,
            qual,
            ..
        }) => {
            let mut inner = HashSet::new();
            if let Some(a) = arg {
                collect_free(a, &mut inner);
            }
            for b in by {
                collect_free(b, &mut inner);
            }
            if let Some(q) = qual {
                collect_free(q, &mut inner);
            }
            for v in over {
                inner.remove(v);
            }
            out.extend(inner);
        }
        other => walk_children(other, &mut |c| collect_free(c, out)),
    }
}

fn walk_children(e: &Expr, f: &mut impl FnMut(&Expr)) {
    match e {
        Expr::Path(b, _) => f(b),
        Expr::Index(b, i) => {
            f(b);
            f(i);
        }
        Expr::Call { recv, args, .. } => {
            if let Some(r) = recv {
                f(r);
            }
            for a in args {
                f(a);
            }
        }
        Expr::Unary(_, a) => f(a),
        Expr::Binary(_, a, b) => {
            f(a);
            f(b);
        }
        Expr::UserOp(_, args) | Expr::SetLit(args) => {
            for a in args {
                f(a);
            }
        }
        Expr::TupleLit(fields) => {
            for (_, v) in fields {
                f(v);
            }
        }
        Expr::Var(_) | Expr::Lit(_) | Expr::Agg(_) => {}
    }
}

/// Collect every name referenced freely in variable position (candidates
/// for session ranges and implicit collection bindings).
fn referenced_names(exprs: &[&Expr]) -> HashSet<String> {
    let mut names = HashSet::new();
    for e in exprs {
        names.extend(free_names(e));
    }
    names
}

/// The resolver: builds bindings for a statement's expressions.
pub struct Resolver<'a> {
    ctx: &'a SemaCtx<'a>,
    env: &'a RangeEnv,
}

impl<'a> Resolver<'a> {
    /// New resolver over a context and session ranges.
    pub fn new(ctx: &'a SemaCtx<'a>, env: &'a RangeEnv) -> Self {
        Resolver { ctx, env }
    }

    /// Resolve one range declaration into a binding. `known` maps already
    /// visible variables to their element types (for `range of C is
    /// E.kids` style dependencies).
    /// Resolve one range declaration. Multi-level set paths
    /// (`Roots.mids.leaves`) produce synthetic intermediate bindings
    /// (named `var#0`, `var#1`, ...) preceding the final one — the paper's
    /// "path syntax for handling deeply nested queries".
    fn resolve_range(
        &self,
        var: &str,
        universal: bool,
        path: &Expr,
        known: &HashMap<String, QualType>,
    ) -> SemaResult<Vec<ResolvedRange>> {
        let (root_name, steps) = flatten_path(path)?;
        // `sys.<view>` ranges over a virtual system collection — but only
        // when nothing shadows `sys` (a variable or catalog object named
        // `sys` keeps its ordinary meaning) and the catalog actually
        // provides system views (so minimal test catalogs are unaffected).
        if root_name == "sys"
            && !known.contains_key("sys")
            && !self.ctx.vars.contains_key("sys")
            && self.ctx.catalog.named("sys").is_none()
        {
            if let Some(first) = steps.first() {
                if let Some(def) = self.ctx.catalog.system_view(first) {
                    if steps.len() > 1 {
                        return Err(SemaError::Other(format!(
                            "cannot range over 'sys.{first}.{}': system views \
                             have no nested set attributes",
                            steps[1..].join(".")
                        )));
                    }
                    return Ok(vec![ResolvedRange {
                        var: var.into(),
                        universal,
                        root: RootSource::System(first.clone()),
                        steps: Vec::new(),
                        elem: def.elem,
                    }]);
                }
                let mut views: Vec<String> = self
                    .ctx
                    .catalog
                    .system_views()
                    .into_iter()
                    .map(|v| v.name)
                    .collect();
                if !views.is_empty() {
                    views.sort();
                    return Err(SemaError::Other(format!(
                        "no system view 'sys.{first}'; available: {}",
                        views.join(", ")
                    )));
                }
            }
        }
        // A stepless range over a collection name iterates that collection
        // directly — even when an implicit member binding of the same name
        // exists (`range of E is Employees` alongside `Employees.kids`).
        // With steps, a known variable (including the shared implicit
        // member) takes precedence, giving the paper's shared-parent
        // semantics for `range of C is Employees.kids`.
        let collection = self
            .ctx
            .catalog
            .named(&root_name)
            .filter(|o| o.is_collection);
        if steps.is_empty() {
            if let Some(obj) = collection {
                let elem = match &obj.qty.ty {
                    Type::Set(e) => (**e).clone(),
                    other => {
                        return Err(SemaError::Other(format!(
                            "collection '{root_name}' has non-set type {}",
                            self.ctx.types.display_type(other)
                        )))
                    }
                };
                return Ok(vec![ResolvedRange {
                    var: var.into(),
                    universal,
                    root: RootSource::Collection(obj),
                    steps,
                    elem,
                }]);
            }
        }
        // Root: another declared variable, or an outer-scope variable
        // (function/procedure parameter)?
        let (root, mut cur, iterate_root): (RootSource, QualType, bool) =
            if let Some(q) = known.get(&root_name) {
                (RootSource::Var(root_name.clone()), q.clone(), false)
            } else if let Some(q) = self.ctx.vars.get(&root_name) {
                (RootSource::Var(root_name.clone()), q.clone(), false)
            } else if let Some(obj) = self.ctx.catalog.named(&root_name) {
                if obj.is_collection {
                    let elem = match &obj.qty.ty {
                        Type::Set(e) => (**e).clone(),
                        other => {
                            return Err(SemaError::Other(format!(
                                "collection '{root_name}' has non-set type {}",
                                self.ctx.types.display_type(other)
                            )))
                        }
                    };
                    (RootSource::Collection(obj), elem, true)
                } else {
                    (RootSource::Object(obj.clone()), obj.qty.clone(), false)
                }
            } else {
                return Err(SemaError::UnknownName(root_name));
            };

        if steps.is_empty() {
            if iterate_root {
                return Ok(vec![ResolvedRange {
                    var: var.into(),
                    universal,
                    root,
                    steps,
                    elem: cur,
                }]);
            }
            // A named set/array object (`range of X is TopTen`) or a
            // set-valued variable (a set-typed function parameter)
            // iterates its elements.
            if let (RootSource::Object(_) | RootSource::Var(_), Some(e)) = (&root, cur.ty.element())
            {
                let elem = e.clone();
                return Ok(vec![ResolvedRange {
                    var: var.into(),
                    universal,
                    root,
                    steps,
                    elem,
                }]);
            }
            return Err(SemaError::NotIterable(format!("{path}")));
        }
        // Walk attribute steps. The final step must land on a set/array;
        // each *intermediate* set/array becomes a synthetic binding the
        // final one depends on.
        let mut out: Vec<ResolvedRange> = Vec::new();
        let mut seg_root = root;
        let mut seg_steps: Vec<String> = Vec::new();
        let mut synth = 0usize;
        for (i, st) in steps.iter().enumerate() {
            cur = self.ctx.attr_type(&cur, st)?;
            seg_steps.push(st.clone());
            let last = i + 1 == steps.len();
            match (&cur.ty, last) {
                (Type::Set(e) | Type::Array(_, e), true) => {
                    let elem = (**e).clone();
                    out.push(ResolvedRange {
                        var: var.into(),
                        universal,
                        root: seg_root,
                        steps: seg_steps,
                        elem,
                    });
                    return Ok(out);
                }
                (Type::Set(e) | Type::Array(_, e), false) => {
                    let elem = (**e).clone();
                    let name = format!("{var}#{synth}");
                    synth += 1;
                    out.push(ResolvedRange {
                        var: name.clone(),
                        universal,
                        root: seg_root,
                        steps: std::mem::take(&mut seg_steps),
                        elem: elem.clone(),
                    });
                    seg_root = RootSource::Var(name);
                    cur = elem;
                }
                (_, true) => return Err(SemaError::NotIterable(format!("{path}"))),
                (_, false) => {}
            }
        }
        unreachable!("loop returns on the last step")
    }

    /// Build the dependency-ordered binding list for a set of expressions
    /// plus explicit from-clauses.
    pub fn bindings_for(
        &self,
        exprs: &[&Expr],
        from: &[FromBinding],
    ) -> SemaResult<Vec<ResolvedRange>> {
        let referenced = referenced_names(exprs);

        // Candidate declarations: from-clauses and session ranges (when
        // the variable occurs free — a variable consumed entirely by
        // aggregate `over` clauses does not join the outer query), and
        // implicit collection ranges (when used member-wise).
        let mut decls: Vec<(String, bool, Expr)> = Vec::new();
        for fb in from {
            if referenced.contains(&fb.var) {
                decls.push((fb.var.clone(), false, fb.path.clone()));
            }
        }
        for (v, u, p) in &self.env.ranges {
            if referenced.contains(v) && !decls.iter().any(|(dv, _, _)| dv == v) {
                decls.push((v.clone(), *u, p.clone()));
            }
        }
        // Names used by declared paths also pull in session ranges and
        // implicit collections (e.g. from C in E.kids needs E).
        let mut queue: Vec<String> = decls
            .iter()
            .filter_map(|(_, _, p)| flatten_path(p).ok().map(|(r, _)| r))
            .chain(referenced.iter().cloned())
            .collect();
        let mut seen: HashSet<String> = decls.iter().map(|(v, _, _)| v.clone()).collect();
        while let Some(name) = queue.pop() {
            if seen.contains(&name) {
                continue;
            }
            seen.insert(name.clone());
            if let Some((v, u, p)) = self.env.get(&name) {
                if let Ok((root, _)) = flatten_path(p) {
                    queue.push(root);
                }
                decls.push((v.clone(), *u, p.clone()));
            } else if let Some(obj) = self.ctx.catalog.named(&name) {
                if obj.is_collection && self.is_used_as_member(&name, exprs, &decls) {
                    // Implicit range over the collection's members.
                    decls.push((name.clone(), false, Expr::Var(name.clone())));
                }
            }
        }

        // Resolve with iterative dependency satisfaction (a small, stable
        // topological sort). A declaration is ready when its path root is
        // already resolved, is itself (implicit collection binding), or is
        // not a declared variable at all (a catalog name).
        let decl_names: HashSet<String> = decls.iter().map(|(v, _, _)| v.clone()).collect();
        let mut resolved: Vec<ResolvedRange> = Vec::new();
        let mut known: HashMap<String, QualType> = HashMap::new();
        let mut pending = decls;
        while !pending.is_empty() {
            let mut progressed = false;
            let mut next_pending = Vec::new();
            for (v, u, p) in pending {
                let (root, _) = flatten_path(&p)?;
                let ready = root == v || known.contains_key(&root) || !decl_names.contains(&root);
                if ready {
                    for r in self.resolve_range(&v, u, &p, &known)? {
                        known.insert(r.var.clone(), r.elem.clone());
                        resolved.push(r);
                    }
                    progressed = true;
                } else {
                    next_pending.push((v, u, p));
                }
            }
            if !progressed {
                return Err(SemaError::Other(format!(
                    "circular range declarations involving '{}'",
                    next_pending[0].0
                )));
            }
            pending = next_pending;
        }

        // Order so that every binding follows the one it depends on.
        let order: HashMap<String, usize> = resolved
            .iter()
            .enumerate()
            .map(|(i, r)| (r.var.clone(), i))
            .collect();
        let mut sorted = resolved.clone();
        sorted.sort_by_key(|r| depth_of(r, &resolved, &order));
        Ok(sorted)
    }

    /// Whether a collection name is used member-wise (as a path root or in
    /// an `over` clause) rather than as a whole-set value.
    fn is_used_as_member(
        &self,
        name: &str,
        exprs: &[&Expr],
        decls: &[(String, bool, Expr)],
    ) -> bool {
        let mut used = false;
        for e in exprs {
            walk_expr(e, &mut |x| match x {
                Expr::Path(base, _) => {
                    if matches!(&**base, Expr::Var(n) if n == name) {
                        used = true;
                    }
                }
                Expr::Agg(a) if a.over.iter().any(|v| v == name) => {
                    used = true;
                }
                _ => {}
            });
        }
        // Or used as the root of a declared range path.
        for (_, _, p) in decls {
            if let Ok((root, steps)) = flatten_path(p) {
                if root == name && !steps.is_empty() {
                    used = true;
                }
            }
        }
        used
    }

    /// Check a retrieve statement, producing bindings and output schema.
    pub fn check_retrieve(&self, stmt: &Stmt) -> SemaResult<CheckedRetrieve> {
        let Stmt::Retrieve {
            targets,
            from,
            qual,
            order_by,
            ..
        } = stmt
        else {
            return Err(SemaError::Other("not a retrieve statement".into()));
        };
        let mut exprs: Vec<&Expr> = targets.iter().map(|t| &t.expr).collect();
        if let Some(q) = qual {
            exprs.push(q);
        }
        if let Some((e, _)) = order_by {
            exprs.push(e);
        }
        let bindings = self.bindings_for(&exprs, from)?;

        // Type-check with all bindings in scope, plus the types of
        // aggregate `over` variables (consumed inside aggregates, so not
        // necessarily outer bindings).
        let mut ctx = SemaCtx::new(self.ctx.types, self.ctx.adts, self.ctx.catalog);
        ctx.vars = self.ctx.vars.clone();
        for b in &bindings {
            ctx.vars.insert(b.var.clone(), b.elem.clone());
        }
        let mut over_vars: HashSet<String> = HashSet::new();
        for e in &exprs {
            walk_expr(e, &mut |x| {
                if let Expr::Agg(a) = x {
                    over_vars.extend(a.over.iter().cloned());
                }
            });
        }
        over_vars.retain(|v| !ctx.vars.contains_key(v));
        if !over_vars.is_empty() {
            let pseudo: Vec<Expr> = over_vars.iter().map(|v| Expr::Var(v.clone())).collect();
            let refs: Vec<&Expr> = pseudo.iter().collect();
            let extra = self.bindings_for(&refs, from)?;
            for b in extra {
                ctx.vars.entry(b.var).or_insert(b.elem);
            }
        }
        let mut output = Vec::with_capacity(targets.len());
        for (i, t) in targets.iter().enumerate() {
            let qty = ctx.infer(&t.expr)?;
            let name = t.name.clone().unwrap_or_else(|| derive_name(&t.expr, i));
            output.push((name, qty));
        }
        if let Some(q) = qual {
            let qt = ctx.infer(q)?;
            if !matches!(
                qt.ty,
                Type::Base(extra_model::BaseType::Boolean) | Type::Unknown
            ) {
                return Err(SemaError::TypeMismatch {
                    expected: "boolean qualification".into(),
                    got: self.ctx.types.display_qual(&qt),
                });
            }
        }
        if let Some((e, _)) = order_by {
            ctx.infer(e)?;
        }
        Ok(CheckedRetrieve { bindings, output })
    }
}

fn depth_of(
    r: &ResolvedRange,
    all: &[ResolvedRange],
    order: &HashMap<String, usize>,
) -> (usize, usize) {
    let mut depth = 0;
    let mut cur = r;
    while let Some(parent) = cur.depends_on() {
        depth += 1;
        match all.iter().find(|b| b.var == parent) {
            Some(p) => cur = p,
            None => break,
        }
        if depth > all.len() {
            break; // cycle guard; reported elsewhere
        }
    }
    (depth, order.get(&r.var).copied().unwrap_or(0))
}

/// Derive an output column name from a target expression.
pub fn derive_name(e: &Expr, i: usize) -> String {
    match e {
        Expr::Var(n) => n.clone(),
        Expr::Path(_, attr) => attr.clone(),
        Expr::Call { name, .. } => name.clone(),
        Expr::Agg(a) => a.func.clone(),
        Expr::Index(b, _) => derive_name(b, i),
        _ => format!("expr{}", i + 1),
    }
}

/// Element runtime mode of a binding: whether iteration yields references.
pub fn binding_is_ref(elem: &QualType) -> bool {
    elem.mode != Ownership::Own
}
