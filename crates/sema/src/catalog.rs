//! The catalog interface the analyzer resolves names against.
//!
//! The concrete catalog lives in `exodus-db`; sema (and the optimizer)
//! see it through [`CatalogLookup`], keeping the layering acyclic.

use excess_lang::Stmt;
use exodus_storage::Oid;
use extra_model::{QualType, TypeId};

/// A named persistent database object (`create <type> <Name>`).
#[derive(Debug, Clone)]
pub struct NamedObject {
    /// Its name.
    pub name: String,
    /// Its OID (collections: the anchor OID).
    pub oid: Oid,
    /// Its declared type.
    pub qty: QualType,
    /// Whether it is a top-level set (stored as a collection).
    pub is_collection: bool,
}

/// An EXCESS function definition (`define function`).
///
/// A function whose first parameter is a schema type is *attached* to that
/// type: invocable with method syntax and inherited through the lattice.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, QualType)>,
    /// Return type.
    pub returns: QualType,
    /// Body — a `retrieve` statement.
    pub body: Stmt,
    /// The schema type the function is attached to (the first parameter's
    /// type, when it is a schema type).
    pub attached_to: Option<TypeId>,
}

/// An EXCESS procedure definition (`define procedure`).
#[derive(Debug, Clone)]
pub struct ProcedureDef {
    /// Procedure name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, QualType)>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A secondary index over one attribute of a collection's members.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// Index name.
    pub name: String,
    /// Indexed collection.
    pub collection: String,
    /// Indexed member attribute.
    pub attr: String,
    /// B+-tree root page.
    pub root: u64,
    /// Whether the index enforces key uniqueness (paper: keys are
    /// associated with set instances).
    pub unique: bool,
}

/// Name-resolution services provided by the database catalog.
pub trait CatalogLookup {
    /// Look up a named persistent object.
    fn named(&self, name: &str) -> Option<NamedObject>;

    /// All function definitions sharing `name` (receiver-type overloads).
    fn functions_named(&self, name: &str) -> Vec<FunctionDef>;

    /// Look up a procedure.
    fn procedure(&self, name: &str) -> Option<ProcedureDef>;

    /// An index on `collection(attr)`, if one exists.
    fn index_on(&self, collection: &str, attr: &str) -> Option<IndexInfo>;

    /// Member count of a named collection (optimizer statistics).
    fn collection_size(&self, name: &str) -> Option<u64>;
}

/// An empty catalog, for tests that only need range variables.
#[derive(Debug, Default)]
pub struct EmptyCatalog;

impl CatalogLookup for EmptyCatalog {
    fn named(&self, _name: &str) -> Option<NamedObject> {
        None
    }
    fn functions_named(&self, _name: &str) -> Vec<FunctionDef> {
        Vec::new()
    }
    fn procedure(&self, _name: &str) -> Option<ProcedureDef> {
        None
    }
    fn index_on(&self, _collection: &str, _attr: &str) -> Option<IndexInfo> {
        None
    }
    fn collection_size(&self, _name: &str) -> Option<u64> {
        None
    }
}
