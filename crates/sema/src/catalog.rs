//! The catalog interface the analyzer resolves names against.
//!
//! The concrete catalog lives in `exodus-db`; sema (and the optimizer)
//! see it through [`CatalogLookup`], keeping the layering acyclic.

use excess_lang::Stmt;
use exodus_storage::Oid;
use extra_model::{QualType, TypeId, Value};

/// A named persistent database object (`create <type> <Name>`).
#[derive(Debug, Clone)]
pub struct NamedObject {
    /// Its name.
    pub name: String,
    /// Its OID (collections: the anchor OID).
    pub oid: Oid,
    /// Its declared type.
    pub qty: QualType,
    /// Whether it is a top-level set (stored as a collection).
    pub is_collection: bool,
}

/// An EXCESS function definition (`define function`).
///
/// A function whose first parameter is a schema type is *attached* to that
/// type: invocable with method syntax and inherited through the lattice.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, QualType)>,
    /// Return type.
    pub returns: QualType,
    /// Body — a `retrieve` statement.
    pub body: Stmt,
    /// The schema type the function is attached to (the first parameter's
    /// type, when it is a schema type).
    pub attached_to: Option<TypeId>,
}

/// An EXCESS procedure definition (`define procedure`).
#[derive(Debug, Clone)]
pub struct ProcedureDef {
    /// Procedure name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, QualType)>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A secondary index over one attribute of a collection's members.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// Index name.
    pub name: String,
    /// Indexed collection.
    pub collection: String,
    /// Indexed member attribute.
    pub attr: String,
    /// B+-tree root page.
    pub root: u64,
    /// Whether the index enforces key uniqueness (paper: keys are
    /// associated with set instances).
    pub unique: bool,
}

/// Number of equi-depth histogram buckets `analyze` collects per
/// attribute.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Per-attribute optimizer statistics collected by `analyze <collection>`.
///
/// Histograms are kept in a normalized `f64` key space (ints and floats
/// cast; other types carry only distinct/null counts), which is all the
/// cost model needs for comparison selectivities.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// Attribute name.
    pub attr: String,
    /// Estimated number of distinct non-null values.
    pub distinct: u64,
    /// Fraction of members with a null value for this attribute.
    pub null_frac: f64,
    /// Equi-depth histogram boundaries: `bounds[0]` is the minimum and
    /// `bounds[i]` the upper bound of bucket `i`, each bucket holding an
    /// equal share of the non-null rows. Empty when the attribute's type
    /// has no numeric key space (or the collection had no non-null rows).
    pub bounds: Vec<f64>,
}

impl AttrStats {
    /// Selectivity of `attr = <const>`: uniform share of one distinct
    /// value among the non-null rows.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            return 0.0;
        }
        ((1.0 - self.null_frac) / self.distinct as f64).clamp(0.0, 1.0)
    }

    /// Fraction of non-null rows with value `<= v`, interpolated linearly
    /// inside the containing equi-depth bucket. `None` when no histogram
    /// was collected for this attribute.
    pub fn fraction_le(&self, v: f64) -> Option<f64> {
        let b = &self.bounds;
        if b.len() < 2 {
            return None;
        }
        if v < b[0] {
            return Some(0.0);
        }
        let last = b.len() - 1;
        if v >= b[last] {
            return Some(1.0);
        }
        let buckets = last as f64;
        for i in 0..last {
            let (lo, hi) = (b[i], b[i + 1]);
            if v < hi {
                let within = if hi > lo { (v - lo) / (hi - lo) } else { 1.0 };
                return Some((i as f64 + within) / buckets);
            }
        }
        Some(1.0)
    }

    /// Selectivity of a comparison `attr <op> v` using the histogram,
    /// scaled by the non-null fraction. `None` when no histogram exists.
    pub fn cmp_selectivity(&self, op: StatOp, v: f64) -> Option<f64> {
        let le = self.fraction_le(v)?;
        let eq = self.eq_selectivity();
        let notnull = 1.0 - self.null_frac;
        let sel = match op {
            StatOp::Eq => return Some(eq),
            StatOp::Ne => notnull - eq,
            StatOp::Le => le * notnull,
            StatOp::Lt => (le * notnull - eq).max(0.0),
            StatOp::Gt => (1.0 - le) * notnull,
            StatOp::Ge => ((1.0 - le) * notnull + eq).min(notnull),
        };
        Some(sel.clamp(0.0, 1.0))
    }
}

/// Comparison shape the cost model asks statistics about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Statistics for one analyzed collection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CollectionStats {
    /// Member count at analyze time.
    pub row_count: u64,
    /// Per-attribute statistics (tuple-valued members only).
    pub attrs: Vec<AttrStats>,
}

impl CollectionStats {
    /// Statistics for `attr`, if collected.
    pub fn attr(&self, name: &str) -> Option<&AttrStats> {
        self.attrs.iter().find(|a| a.attr == name)
    }

    /// Serialize to a self-describing byte payload (persisted through a
    /// logged unit so recovery covers it). Format: `row_count:u64`,
    /// `n_attrs:u32`, then per attribute `name_len:u32 name_bytes
    /// distinct:u64 null_frac:f64 n_bounds:u32 bounds:f64*`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.row_count.to_le_bytes());
        out.extend_from_slice(&(self.attrs.len() as u32).to_le_bytes());
        for a in &self.attrs {
            out.extend_from_slice(&(a.attr.len() as u32).to_le_bytes());
            out.extend_from_slice(a.attr.as_bytes());
            out.extend_from_slice(&a.distinct.to_le_bytes());
            out.extend_from_slice(&a.null_frac.to_le_bytes());
            out.extend_from_slice(&(a.bounds.len() as u32).to_le_bytes());
            for b in &a.bounds {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        out
    }

    /// Decode a payload produced by [`CollectionStats::to_bytes`].
    /// Returns `None` on any framing violation (truncation, overlong
    /// counts) rather than panicking — recovery feeds us raw bytes.
    pub fn from_bytes(data: &[u8]) -> Option<CollectionStats> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let s = data.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        };
        let u64_at = |pos: &mut usize| -> Option<u64> {
            Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
        };
        let u32_at = |pos: &mut usize| -> Option<u32> {
            Some(u32::from_le_bytes(take(pos, 4)?.try_into().ok()?))
        };
        let f64_at = |pos: &mut usize| -> Option<f64> {
            Some(f64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
        };
        let row_count = u64_at(&mut pos)?;
        let n_attrs = u32_at(&mut pos)? as usize;
        if n_attrs > data.len() {
            return None;
        }
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let name_len = u32_at(&mut pos)? as usize;
            let attr = String::from_utf8(take(&mut pos, name_len)?.to_vec()).ok()?;
            let distinct = u64_at(&mut pos)?;
            let null_frac = f64_at(&mut pos)?;
            let n_bounds = u32_at(&mut pos)? as usize;
            if n_bounds > data.len() {
                return None;
            }
            let mut bounds = Vec::with_capacity(n_bounds);
            for _ in 0..n_bounds {
                bounds.push(f64_at(&mut pos)?);
            }
            attrs.push(AttrStats {
                attr,
                distinct,
                null_frac,
                bounds,
            });
        }
        if pos != data.len() {
            return None;
        }
        Some(CollectionStats { row_count, attrs })
    }
}

/// A read-only virtual collection in the reserved `sys` schema,
/// materialized on demand from live engine state rather than storage.
#[derive(Debug, Clone)]
pub struct SystemViewDef {
    /// View name without the `sys.` prefix (e.g. `metrics`).
    pub name: String,
    /// Element type each row binds — always an owned tuple, so attribute
    /// inference and projection work exactly as for stored collections.
    pub elem: QualType,
}

/// Name-resolution services provided by the database catalog.
pub trait CatalogLookup {
    /// Look up a named persistent object.
    fn named(&self, name: &str) -> Option<NamedObject>;

    /// All function definitions sharing `name` (receiver-type overloads).
    fn functions_named(&self, name: &str) -> Vec<FunctionDef>;

    /// Look up a procedure.
    fn procedure(&self, name: &str) -> Option<ProcedureDef>;

    /// An index on `collection(attr)`, if one exists.
    fn index_on(&self, collection: &str, attr: &str) -> Option<IndexInfo>;

    /// Member count of a named collection (optimizer statistics).
    fn collection_size(&self, name: &str) -> Option<u64>;

    /// Statistics recorded by `analyze <collection>`, when present.
    /// The default (no statistics) keeps the cost model on its fixed
    /// selectivity constants.
    fn stats_for(&self, _collection: &str) -> Option<CollectionStats> {
        None
    }

    /// Every named collection, for planner rules that must discover the
    /// target collection of a reference-valued attribute. The default
    /// (none) disables such rewrites.
    fn collections(&self) -> Vec<NamedObject> {
        Vec::new()
    }

    /// Definition of the `sys.<name>` virtual collection, when this
    /// catalog exposes one. The default (no system views) leaves `sys`
    /// an ordinary unknown name.
    fn system_view(&self, _name: &str) -> Option<SystemViewDef> {
        None
    }

    /// Materialize the rows of `sys.<name>` as a consistent snapshot of
    /// the provider's state at call time. `None` when no such view
    /// exists.
    fn system_view_rows(&self, _name: &str) -> Option<Vec<Value>> {
        None
    }

    /// Every system view this catalog exposes (for diagnostics).
    fn system_views(&self) -> Vec<SystemViewDef> {
        Vec::new()
    }
}

/// An empty catalog, for tests that only need range variables.
#[derive(Debug, Default)]
pub struct EmptyCatalog;

impl CatalogLookup for EmptyCatalog {
    fn named(&self, _name: &str) -> Option<NamedObject> {
        None
    }
    fn functions_named(&self, _name: &str) -> Vec<FunctionDef> {
        Vec::new()
    }
    fn procedure(&self, _name: &str) -> Option<ProcedureDef> {
        None
    }
    fn index_on(&self, _collection: &str, _attr: &str) -> Option<IndexInfo> {
        None
    }
    fn collection_size(&self, _name: &str) -> Option<u64> {
        None
    }
}
