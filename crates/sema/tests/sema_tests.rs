//! Semantic-analysis tests over the paper's university/employee schema.

use std::collections::HashMap;

use excess_lang::{parse_statement, OperatorTable, Stmt};
use excess_sema::resolve::Resolver;
use excess_sema::{
    CatalogLookup, FunctionDef, IndexInfo, NamedObject, RangeEnv, RootSource, SemaCtx, SemaError,
};
use exodus_storage::Oid;
use extra_model::schema::InheritSpec;
use extra_model::{AdtRegistry, Attribute, QualType, Type, TypeRegistry};

/// In-memory catalog with the paper's schema.
struct MockCatalog {
    named: HashMap<String, NamedObject>,
    functions: Vec<FunctionDef>,
}

impl CatalogLookup for MockCatalog {
    fn named(&self, name: &str) -> Option<NamedObject> {
        self.named.get(name).cloned()
    }
    fn functions_named(&self, name: &str) -> Vec<FunctionDef> {
        self.functions
            .iter()
            .filter(|f| f.name == name)
            .cloned()
            .collect()
    }
    fn procedure(&self, _name: &str) -> Option<excess_sema::ProcedureDef> {
        None
    }
    fn index_on(&self, _collection: &str, _attr: &str) -> Option<IndexInfo> {
        None
    }
    fn collection_size(&self, _name: &str) -> Option<u64> {
        Some(100)
    }
}

struct Fixture {
    types: TypeRegistry,
    adts: AdtRegistry,
    catalog: MockCatalog,
}

fn fixture() -> Fixture {
    let mut types = TypeRegistry::new();
    let adts = AdtRegistry::with_builtins();
    let date = Type::Adt(adts.lookup("Date").unwrap());
    let person = types
        .define(
            "Person",
            vec![],
            vec![
                Attribute::own("name", Type::varchar()),
                Attribute::own("age", Type::int4()),
                Attribute::own("birthday", date),
            ],
        )
        .unwrap();
    let dept = types
        .define(
            "Department",
            vec![],
            vec![
                Attribute::own("dname", Type::varchar()),
                Attribute::own("floor", Type::int4()),
            ],
        )
        .unwrap();
    let employee = types
        .define(
            "Employee",
            vec![InheritSpec::plain("Person")],
            vec![
                Attribute::own("salary", Type::float8()),
                Attribute::reference("dept", Type::Schema(dept)),
                Attribute::own(
                    "kids",
                    Type::Set(Box::new(QualType::own_ref(Type::Schema(person)))),
                ),
                Attribute::own(
                    "ratings",
                    Type::Array(Some(4), Box::new(QualType::own(Type::float8()))),
                ),
            ],
        )
        .unwrap();

    let mut named = HashMap::new();
    named.insert(
        "Employees".to_string(),
        NamedObject {
            name: "Employees".into(),
            oid: Oid(1),
            qty: QualType::own(Type::Set(Box::new(QualType::own_ref(Type::Schema(
                employee,
            ))))),
            is_collection: true,
        },
    );
    named.insert(
        "Departments".to_string(),
        NamedObject {
            name: "Departments".into(),
            oid: Oid(2),
            qty: QualType::own(Type::Set(Box::new(QualType::own_ref(Type::Schema(dept))))),
            is_collection: true,
        },
    );
    named.insert(
        "StarEmployee".to_string(),
        NamedObject {
            name: "StarEmployee".into(),
            oid: Oid(3),
            qty: QualType::own(Type::Schema(employee)),
            is_collection: false,
        },
    );
    named.insert(
        "TopTen".to_string(),
        NamedObject {
            name: "TopTen".into(),
            oid: Oid(4),
            qty: QualType::own(Type::Array(
                Some(10),
                Box::new(QualType::reference(Type::Schema(employee))),
            )),
            is_collection: false,
        },
    );

    let functions = vec![FunctionDef {
        name: "earns".into(),
        params: vec![("e".into(), QualType::reference(Type::Schema(employee)))],
        returns: QualType::own(Type::float8()),
        body: parse_statement("retrieve (e.salary)", &OperatorTable::new()).unwrap(),
        attached_to: Some(employee),
    }];

    Fixture {
        types,
        adts,
        catalog: MockCatalog { named, functions },
    }
}

fn check(src: &str) -> Result<excess_sema::CheckedRetrieve, SemaError> {
    check_with_ranges(src, &[])
}

fn check_with_ranges(
    src: &str,
    ranges: &[(&str, bool, &str)],
) -> Result<excess_sema::CheckedRetrieve, SemaError> {
    let f = fixture();
    let ctx = SemaCtx::new(&f.types, &f.adts, &f.catalog);
    let mut env = RangeEnv::default();
    for (v, u, p) in ranges {
        let stmt = parse_statement(
            &format!("range of {v} is {}{p}", if *u { "all " } else { "" }),
            &OperatorTable::new(),
        )
        .unwrap();
        match stmt {
            Stmt::RangeOf {
                var,
                universal,
                path,
            } => env.declare(&var, universal, path),
            _ => unreachable!(),
        }
    }
    let stmt = parse_statement(src, &OperatorTable::new()).unwrap();
    Resolver::new(&ctx, &env).check_retrieve(&stmt)
}

#[test]
fn simple_range_query() {
    let checked = check_with_ranges(
        "retrieve (E.name, E.salary) where E.age > 30",
        &[("E", false, "Employees")],
    )
    .unwrap();
    assert_eq!(checked.bindings.len(), 1);
    assert_eq!(checked.bindings[0].var, "E");
    assert!(matches!(
        checked.bindings[0].root,
        RootSource::Collection(_)
    ));
    assert_eq!(checked.output.len(), 2);
    assert_eq!(checked.output[0].0, "name");
    assert_eq!(checked.output[0].1, QualType::own(Type::varchar()));
    assert_eq!(checked.output[1].1, QualType::own(Type::float8()));
}

#[test]
fn unused_session_ranges_do_not_join() {
    let checked = check_with_ranges(
        "retrieve (E.name)",
        &[("E", false, "Employees"), ("D", false, "Departments")],
    )
    .unwrap();
    assert_eq!(checked.bindings.len(), 1, "D is unused and must not join");
}

#[test]
fn figure4_nested_set_query() {
    // retrieve (C.name) from C in Employees.kids
    // where Employees.dept.floor = 2
    let checked =
        check("retrieve (C.name) from C in Employees.kids where Employees.dept.floor = 2").unwrap();
    // Two bindings: the implicit Employees member and C over its kids.
    assert_eq!(checked.bindings.len(), 2);
    assert_eq!(checked.bindings[0].var, "Employees");
    assert!(matches!(
        checked.bindings[0].root,
        RootSource::Collection(_)
    ));
    assert_eq!(checked.bindings[1].var, "C");
    assert_eq!(checked.bindings[1].depends_on(), Some("Employees"));
    assert_eq!(checked.bindings[1].steps, vec!["kids".to_string()]);
}

#[test]
fn implicit_join_through_path() {
    // E.dept.floor steps through a ref attribute transparently.
    let checked = check_with_ranges(
        "retrieve (E.dept.dname) where E.dept.floor = 2",
        &[("E", false, "Employees")],
    )
    .unwrap();
    assert_eq!(checked.output[0].0, "dname");
}

#[test]
fn dependent_range_on_variable() {
    let checked = check_with_ranges(
        "retrieve (C.name) where C.age < 10",
        &[("E", false, "Employees"), ("C", false, "E.kids")],
    )
    .unwrap();
    assert_eq!(checked.bindings.len(), 2);
    assert_eq!(checked.bindings[0].var, "E");
    assert_eq!(checked.bindings[1].var, "C");
    assert_eq!(checked.bindings[1].depends_on(), Some("E"));
}

#[test]
fn direct_retrieval_of_named_objects() {
    let checked = check("retrieve (StarEmployee.name, StarEmployee.salary)").unwrap();
    assert!(checked.bindings.is_empty(), "no iteration needed");
    assert_eq!(checked.output[0].1, QualType::own(Type::varchar()));
    // Array-of-refs indexing: TopTen[1].name.
    let checked = check("retrieve (TopTen[1].name, TopTen[1].salary)").unwrap();
    assert_eq!(checked.output[0].0, "name");
}

#[test]
fn refs_compare_only_with_is() {
    let err = check_with_ranges(
        "retrieve (E.name) where E.dept = E.dept",
        &[("E", false, "Employees")],
    )
    .unwrap_err();
    assert!(matches!(err, SemaError::RefComparison(_)), "{err}");
    // is works on refs.
    check_with_ranges(
        "retrieve (E.name) where E.dept is D",
        &[("E", false, "Employees"), ("D", false, "Departments")],
    )
    .unwrap();
    // is on values is rejected.
    let err = check_with_ranges(
        "retrieve (E.name) where E.age is E.age",
        &[("E", false, "Employees")],
    )
    .unwrap_err();
    assert!(matches!(err, SemaError::IsOnValue(_)), "{err}");
}

#[test]
fn unknown_names_and_attributes() {
    let err = check("retrieve (Nobody.name)").unwrap_err();
    assert!(matches!(err, SemaError::UnknownName(_)), "{err}");
    let err = check_with_ranges("retrieve (E.wages)", &[("E", false, "Employees")]).unwrap_err();
    assert!(matches!(err, SemaError::UnknownAttribute { .. }), "{err}");
}

#[test]
fn aggregates_type_and_scope() {
    let checked = check_with_ranges(
        "retrieve (avg(E.salary over E))",
        &[("E", false, "Employees")],
    )
    .unwrap();
    assert_eq!(checked.output[0].1, QualType::own(Type::float8()));
    let checked = check_with_ranges(
        "retrieve (count(E over E by E.dept.dname))",
        &[("E", false, "Employees")],
    )
    .unwrap();
    assert_eq!(
        checked.output[0].1,
        QualType::own(Type::Base(extra_model::BaseType::Int8))
    );
    // over an unknown variable.
    let err = check_with_ranges(
        "retrieve (avg(E.salary over Z))",
        &[("E", false, "Employees")],
    )
    .unwrap_err();
    assert!(matches!(err, SemaError::Aggregate(_)), "{err}");
    // sum of a string.
    let err = check_with_ranges(
        "retrieve (sum(E.name over E))",
        &[("E", false, "Employees")],
    )
    .unwrap_err();
    assert!(matches!(err, SemaError::Aggregate(_)), "{err}");
    // unique returns a set.
    let checked = check_with_ranges(
        "retrieve (unique(E.dept.dname over E))",
        &[("E", false, "Employees")],
    )
    .unwrap();
    assert!(matches!(checked.output[0].1.ty, Type::Set(_)));
}

#[test]
fn adt_functions_and_literals() {
    // Date constructor literal + comparison.
    check_with_ranges(
        "retrieve (E.name) where E.birthday < Date(\"1/1/1960\")",
        &[("E", false, "Employees")],
    )
    .unwrap();
    // Both call syntaxes type-check (Figure 7).
    let a =
        check_with_ranges("retrieve (E.birthday.Year())", &[("E", false, "Employees")]).unwrap();
    let b = check_with_ranges("retrieve (Year(E.birthday))", &[("E", false, "Employees")]).unwrap();
    assert_eq!(a.output[0].1, b.output[0].1);
    // Unknown ADT function.
    let err = check_with_ranges(
        "retrieve (E.birthday.Wobble())",
        &[("E", false, "Employees")],
    )
    .unwrap_err();
    assert!(matches!(err, SemaError::Function(_)), "{err}");
}

#[test]
fn excess_function_inherited_through_lattice() {
    // earns is defined for Employee; E ranges over Employees — fine.
    let checked = check_with_ranges("retrieve (earns(E))", &[("E", false, "Employees")]).unwrap();
    assert_eq!(checked.output[0].1, QualType::own(Type::float8()));
    // Method syntax too.
    check_with_ranges("retrieve (E.earns())", &[("E", false, "Employees")]).unwrap();
    // Not applicable to a Department.
    let err =
        check_with_ranges("retrieve (D.earns())", &[("D", false, "Departments")]).unwrap_err();
    assert!(matches!(err, SemaError::Function(_)), "{err}");
}

#[test]
fn arithmetic_and_set_ops() {
    let checked = check_with_ranges(
        "retrieve (E.salary * 1.1 + 500.0)",
        &[("E", false, "Employees")],
    )
    .unwrap();
    assert_eq!(checked.output[0].1, QualType::own(Type::float8()));
    let checked = check_with_ranges("retrieve ({1, 2} union {3})", &[]).unwrap();
    assert!(matches!(checked.output[0].1.ty, Type::Set(_)));
    let err = check_with_ranges("retrieve (1 union 2)", &[]).unwrap_err();
    assert!(matches!(err, SemaError::TypeMismatch { .. }), "{err}");
    // Membership against a ref-set uses identity.
    check_with_ranges(
        "retrieve (E.name) where C in E.kids",
        &[("E", false, "Employees"), ("C", false, "Employees.kids")],
    )
    .unwrap();
}

#[test]
fn qualification_must_be_boolean() {
    let err = check_with_ranges(
        "retrieve (E.name) where E.age + 1",
        &[("E", false, "Employees")],
    )
    .unwrap_err();
    assert!(matches!(err, SemaError::TypeMismatch { .. }), "{err}");
}

#[test]
fn universal_quantification_flag() {
    let checked = check_with_ranges(
        "retrieve (E.name) where E.salary > C.age",
        &[("E", false, "Employees"), ("C", true, "Employees.kids")],
    )
    .unwrap();
    let c = checked.bindings.iter().find(|b| b.var == "C").unwrap();
    assert!(c.universal);
}

#[test]
fn range_over_non_set_rejected() {
    let err = check_with_ranges("retrieve (X.name)", &[("X", false, "StarEmployee")]).unwrap_err();
    assert!(matches!(err, SemaError::NotIterable(_)), "{err}");
}
