//! Offline shim for the `criterion` crate.
//!
//! Provides `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::{iter, iter_with_setup}`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark runs a short warm-up, then `sample_size` timed samples, and
//! prints the median/min per-iteration time. No statistics beyond that —
//! enough to compare implementations, not to publish confidence intervals.

#![deny(rustdoc::broken_intra_doc_links)]
use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    group: String,
    value: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            group: function_name.to_string(),
            value: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            group: String::new(),
            value: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.group.is_empty() {
            write!(f, "{}", self.value)
        } else {
            write!(f, "{}/{}", self.group, self.value)
        }
    }
}

/// Accepts both `&str` and `BenchmarkId` where criterion does.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

pub struct Bencher {
    /// Measured per-iteration durations for the current sample pass.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, then timed samples; each sample is one closure call.
        for _ in 0..2 {
            black_box(f());
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        black_box(f(input));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            self.samples.push(t.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, setup: S, f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iter_with_setup(setup, f);
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(group: &str, id: String, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    let mut s = b.samples;
    if s.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    s.sort();
    let median = s[s.len() / 2];
    let min = s[0];
    println!(
        "{group}/{id}  median {}  min {}  ({} samples)",
        fmt_duration(median),
        fmt_duration(min),
        s.len()
    );
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&self.name, id.into_id(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&self.name, id.into_id(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("# group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _c: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one("bench", id.into_id(), 10, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            let _ = $cfg;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
