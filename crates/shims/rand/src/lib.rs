//! Offline shim for the `rand` crate (0.8 API subset): `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over the integer
//! ranges the workspace's seeded workload generators use. The generator
//! is splitmix64 — deterministic, fast, and plenty for test workloads;
//! it makes no cryptographic claims.

#![deny(rustdoc::broken_intra_doc_links)]
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng() as u128) % span;
                (start as i128 + v as i128) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample_from(&mut draw)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// splitmix64-based deterministic generator standing in for `rand::rngs::StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}

pub mod rngs {
    pub use super::StdRng;
}

pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = a.gen_range(1..18);
            let y: i64 = b.gen_range(1..18);
            assert_eq!(x, y);
            assert!((1..18).contains(&x));
        }
        let v: u32 = a.gen_range(0..45u32);
        assert!(v < 45);
        let u: usize = a.gen_range(0..3usize);
        assert!(u < 3);
    }
}
