//! Offline shim for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use —
//! `proptest!`, `prop_oneof!`, `prop_assert*!`, `prop_assume!`,
//! `Strategy`/`prop_map`, ranges, tuples, string patterns,
//! `collection::vec`, `sample::select`, `any::<T>()` — over a
//! deterministic splitmix64 generator. No shrinking: failures report the
//! case number, and the fixed per-test seed makes every failure
//! reproducible by rerunning the test.

#![deny(rustdoc::broken_intra_doc_links)]
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a generated case did not pass: a genuine failure, or a
    /// `prop_assume!`/filter rejection (the case is skipped, not failed).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 stream, seeded from the test name and case
    /// index so every test has an independent, reproducible sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
            assert!(range.start < range.end, "empty range");
            range.start + self.below((range.end - range.start) as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Value-generation strategy. Unlike real proptest there is no
    /// shrinking tree; `Value` hangs directly off the trait, matching the
    /// `impl Strategy<Value = T>` spelling tests use.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Bounded retry; falls through with the last draw rather than
            // spinning forever on a hopeless filter.
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive draws");
        }
    }

    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $ty
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    /// `&str` acts as a generation pattern, supporting the regex subset the
    /// workspace uses: `.`, `[a-z0-9_]` classes, literal chars, and the
    /// quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    enum Atom {
        Any,
        Class(Vec<(char, char)>),
        Literal(char),
    }

    fn random_char(rng: &mut TestRng) -> char {
        match rng.below(20) {
            // Mostly printable ASCII: the interesting space for parsers.
            0..=16 => (0x20u8 + rng.below(95) as u8) as char,
            17 => ['\n', '\t', '\r', '\0'][rng.below(4) as usize],
            _ => {
                // Arbitrary scalar value, skipping the surrogate gap.
                let v = rng.below(0x11_0000 - 0x800) as u32;
                char::from_u32(if v >= 0xD800 { v + 0x800 } else { v }).unwrap_or('\u{FFFD}')
            }
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    Atom::Class(ranges)
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap();
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                    None => {
                        let m: usize = body.trim().parse().unwrap();
                        (m, m)
                    }
                }
            } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            let n = if min == max {
                min
            } else {
                rng.usize_in(min..max + 1)
            };
            for _ in 0..n {
                match &atom {
                    Atom::Any => out.push(random_char(rng)),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = hi as u32 - lo as u32 + 1;
                        out.push(
                            char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap(),
                        );
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias toward boundary values, which find more bugs than
                    // uniform draws.
                    match rng.below(8) {
                        0 => 0 as $ty,
                        1 => <$ty>::MAX,
                        2 => <$ty>::MIN,
                        3 => 1 as $ty,
                        _ => rng.next_u64() as $ty,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            match rng.below(10) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                4 => f64::NAN,
                5 => f64::from_bits(rng.next_u64()),
                _ => {
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    (unit - 0.5) * 2e12
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let v = rng.below(0x11_0000 - 0x800) as u32;
            char::from_u32(if v >= 0xD800 { v + 0x800 } else { v }).unwrap_or('\u{FFFD}')
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.below(48) as usize;
            (0..len)
                .map(|_| {
                    if rng.below(10) < 8 {
                        (0x20u8 + rng.below(95) as u8) as char
                    } else {
                        char::arbitrary(rng)
                    }
                })
                .collect()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                rng.usize_in(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    /// `proptest::bool::ANY`
    pub const ANY: crate::arbitrary::Any<std::primitive::bool> =
        crate::arbitrary::Any(std::marker::PhantomData);
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        pub struct AnyFinite;
        /// Finite, non-NaN doubles.
        pub const ANY: AnyFinite = AnyFinite;

        impl Strategy for AnyFinite {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (unit - 0.5) * 2e12
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $fmt:tt)* $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<$crate::strategy::BoxedStrategy<_>> =
            vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::OneOf::new(arms)
    }};
}

#[macro_export]
macro_rules! proptest {
    // ---- internal: no more test functions ----
    (@fns ($cfg:expr)) => {};

    // ---- internal: `arg in strategy` form ----
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!("proptest case {} of {} failed: {}", case, stringify!($name), reason)
                    }
                }
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };

    // ---- internal: `arg: Type` form (uses `any::<Type>()`) ----
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(
                    &$crate::arbitrary::any::<$ty>(), &mut rng);)+
                let outcome = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!("proptest case {} of {} failed: {}", case, stringify!($name), reason)
                    }
                }
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };

    // ---- entry: leading `#![proptest_config(..)]` ----
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };

    // ---- entry: default config ----
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
