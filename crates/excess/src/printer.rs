//! Pretty-printer: renders the AST back to EXCESS source.
//!
//! Expressions print fully parenthesized, so re-parsing a printed tree
//! yields the same AST regardless of operator table contents (round-trip
//! property tested in the parser tests).

use std::fmt;

use crate::ast::*;

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Own => Ok(()),
            Mode::Ref => write!(f, "ref "),
            Mode::OwnRef => write!(f, "own ref "),
        }
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Named(n) => write!(f, "{n}"),
            TypeExpr::Char(n) => write!(f, "char({n})"),
            TypeExpr::Enum(syms) => write!(f, "enum({})", syms.join(", ")),
            TypeExpr::Set(e) => write!(f, "{{ {e} }}"),
            TypeExpr::Array(Some(n), e) => write!(f, "[{n}] {e}"),
            TypeExpr::Array(None, e) => write!(f, "[] {e}"),
            TypeExpr::Tuple(attrs) => {
                write!(f, "(")?;
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for QualTypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.mode, self.ty)
    }
}

impl fmt::Display for AttrDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.qty)
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Privilege::Read => "read",
            Privilege::Append => "append",
            Privilege::Delete => "delete",
            Privilege::Replace => "replace",
            Privilege::Execute => "execute",
            Privilege::All => "all",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Is => "is",
            BinOp::IsNot => "isnot",
            BinOp::In => "in",
            BinOp::Contains => "contains",
            BinOp::Union => "union",
            BinOp::Intersect => "intersect",
            BinOp::SetMinus => "minus",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(i) => write!(f, "{i}"),
            Lit::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Lit::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Lit::Bool(b) => write!(f, "{b}"),
            Lit::Null => write!(f, "null"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(l) => write!(f, "{l}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Path(base, attr) => write!(f, "{base}.{attr}"),
            Expr::Index(base, idx) => write!(f, "{base}[{idx}]"),
            Expr::Call {
                recv: Some(r),
                name,
                args,
            } => {
                write!(f, "{r}.{name}({})", comma(args))
            }
            Expr::Call {
                recv: None,
                name,
                args,
            } => write!(f, "{name}({})", comma(args)),
            Expr::Unary(UnOp::Not, e) => write!(f, "(not {e})"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::UserOp(sym, args) => match args.len() {
                1 => write!(f, "({sym}{})", args[0]),
                2 => write!(f, "({} {sym} {})", args[0], args[1]),
                _ => write!(f, "{sym}({})", comma(args)),
            },
            Expr::Agg(a) => write!(f, "{a}"),
            Expr::SetLit(items) => write!(f, "{{{}}}", comma(items)),
            Expr::TupleLit(fields) => {
                write!(f, "(")?;
                for (i, (n, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} = {e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.func)?;
        if let Some(a) = &self.arg {
            write!(f, "{a}")?;
        }
        if !self.over.is_empty() {
            write!(f, " over {}", self.over.join(", "))?;
        }
        if !self.by.is_empty() {
            write!(f, " by {}", comma(&self.by))?;
        }
        if let Some(q) = &self.qual {
            write!(f, " where {q}")?;
        }
        write!(f, ")")
    }
}

fn comma<T: fmt::Display>(items: &[T]) -> String {
    items
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::DefineType {
                name,
                inherits,
                attrs,
            } => {
                write!(f, "define type {name}")?;
                if !inherits.is_empty() {
                    write!(f, " inherits ")?;
                    for (i, c) in inherits.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", c.base)?;
                        for (old, new) in &c.renames {
                            write!(f, " rename {old} to {new}")?;
                        }
                    }
                }
                write!(f, " ({})", comma(attrs))
            }
            Stmt::Create { qty, name, key } => {
                write!(f, "create {qty} {name}")?;
                if let Some(k) = key {
                    write!(f, " key ({k})")?;
                }
                Ok(())
            }
            Stmt::Destroy { name } => write!(f, "destroy {name}"),
            Stmt::DropType { name } => write!(f, "drop type {name}"),
            Stmt::DefineFunction {
                name,
                params,
                returns,
                body,
            } => {
                write!(
                    f,
                    "define function {name} ({}) returns {returns} as {body}",
                    comma_params(params)
                )
            }
            Stmt::DefineProcedure { name, params, body } => {
                write!(f, "define procedure {name} ({}) as ", comma_params(params))?;
                for (i, s) in body.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, " end")
            }
            Stmt::DropFunction { name } => write!(f, "drop function {name}"),
            Stmt::DropProcedure { name } => write!(f, "drop procedure {name}"),
            Stmt::DefineIndex {
                name,
                collection,
                attr,
                unique,
            } => {
                write!(
                    f,
                    "define {}index {name} on {collection} ({attr})",
                    if *unique { "unique " } else { "" }
                )
            }
            Stmt::RangeOf {
                var,
                universal,
                path,
            } => {
                write!(
                    f,
                    "range of {var} is {}{path}",
                    if *universal { "all " } else { "" }
                )
            }
            Stmt::Retrieve {
                into,
                targets,
                from,
                qual,
                order_by,
            } => {
                write!(f, "retrieve")?;
                if let Some(n) = into {
                    write!(f, " into {n}")?;
                }
                write!(f, " (")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if let Some(n) = &t.name {
                        write!(f, "{n} = ")?;
                    }
                    write!(f, "{}", t.expr)?;
                }
                write!(f, ")")?;
                if !from.is_empty() {
                    write!(f, " from ")?;
                    for (i, b) in from.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{} in {}", b.var, b.path)?;
                    }
                }
                if let Some(q) = qual {
                    write!(f, " where {q}")?;
                }
                if let Some((e, asc)) = order_by {
                    write!(f, " order by {e} {}", if *asc { "asc" } else { "desc" })?;
                }
                Ok(())
            }
            Stmt::Append {
                target,
                value,
                qual,
            } => {
                write!(f, "append to {target} ")?;
                match value {
                    AppendValue::Assignments(assigns) => {
                        write!(f, "(")?;
                        for (i, (n, e)) in assigns.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{n} = {e}")?;
                        }
                        write!(f, ")")?;
                    }
                    AppendValue::Expr(e) => write!(f, "{e}")?,
                }
                if let Some(q) = qual {
                    write!(f, " where {q}")?;
                }
                Ok(())
            }
            Stmt::Delete { target, qual } => {
                write!(f, "delete {target}")?;
                if let Some(q) = qual {
                    write!(f, " where {q}")?;
                }
                Ok(())
            }
            Stmt::Replace {
                target,
                assignments,
                qual,
            } => {
                write!(f, "replace {target} (")?;
                for (i, (n, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} = {e}")?;
                }
                write!(f, ")")?;
                if let Some(q) = qual {
                    write!(f, " where {q}")?;
                }
                Ok(())
            }
            Stmt::Execute { proc, args, qual } => {
                write!(f, "execute {proc}({})", comma(args))?;
                if let Some(q) = qual {
                    write!(f, " where {q}")?;
                }
                Ok(())
            }
            Stmt::Grant {
                privileges,
                object,
                grantees,
            } => {
                write!(
                    f,
                    "grant {} on {object} to {}",
                    comma(privileges),
                    grantees.join(", ")
                )
            }
            Stmt::Revoke {
                privileges,
                object,
                grantees,
            } => {
                write!(
                    f,
                    "revoke {} on {object} from {}",
                    comma(privileges),
                    grantees.join(", ")
                )
            }
            Stmt::CreateUser { name } => write!(f, "create user {name}"),
            Stmt::CreateGroup { name } => write!(f, "create group {name}"),
            Stmt::AddToGroup { user, group } => write!(f, "add user {user} to group {group}"),
            Stmt::Explain { analyze, stmt } => {
                write!(
                    f,
                    "explain {}{stmt}",
                    if *analyze { "analyze " } else { "" }
                )
            }
            Stmt::Observe { stmt } => write!(f, "observe {stmt}"),
            Stmt::Analyze { collection } => write!(f, "analyze {collection}"),
            Stmt::Begin => write!(f, "begin"),
            Stmt::Commit => write!(f, "commit"),
            Stmt::Abort => write!(f, "abort"),
        }
    }
}

fn comma_params(params: &[Param]) -> String {
    params
        .iter()
        .map(|p| format!("{}: {}", p.name, p.qty))
        .collect::<Vec<_>>()
        .join(", ")
}
