//! # excess-lang
//!
//! Front end for the **EXCESS query language** of "A Data Model and Query
//! Language for EXODUS" (Carey, DeWitt & Vandenberg, SIGMOD 1988).
//!
//! EXCESS is QUEL-derived, extended with the GEM/POSTGRES/NF² ideas the
//! paper synthesizes:
//!
//! * `range of V is <path>` range statements, including paths over nested
//!   sets (`range of C is Employees.kids`) and universal quantification
//!   (`range of E is all Employees`);
//! * `retrieve [into N] (targets) [from V in path, ...] [where qual]`
//!   with implicit joins through path expressions (`E.dept.floor = 2`);
//! * updates: `append`, `delete`, `replace`; procedure invocation with
//!   `where`-bound parameters (`execute P(...) where ...`);
//! * `is` / `isnot` object-identity comparisons; set operators `union`,
//!   `intersect`, `minus`, `in`, `contains`;
//! * aggregates with `over` (nesting-level control) and `by`
//!   (partitioning) clauses;
//! * DDL: `define type` (multiple inheritance with renaming), `create` /
//!   `destroy` named instances, `define function` / `define procedure`,
//!   `grant` / `revoke`, `define index`;
//! * **runtime-extensible operators**: the lexer and parser consult an
//!   operator table that ADT registration extends (new punctuation
//!   operators with definer-chosen precedence and associativity).
//!
//! The crate is purely syntactic: names are resolved and types checked in
//! `excess-sema`.

#![deny(rustdoc::broken_intra_doc_links)]
pub mod ast;
pub mod error;
pub mod lexer;
pub mod ops;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::*;
pub use error::{ParseError, ParseResult};
pub use ops::OperatorTable;
pub use parser::{parse_program, parse_statement, Parser};
