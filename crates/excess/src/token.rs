//! Token kinds produced by the lexer.

use std::fmt;

/// EXCESS keywords. Keywords are reserved and lower-case (QUEL lineage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Kw {
    Abort,
    Add,
    All,
    Analyze,
    And,
    Append,
    As,
    Asc,
    Begin,
    By,
    Char,
    Commit,
    Contains,
    Create,
    Define,
    Delete,
    Desc,
    Destroy,
    Drop,
    End,
    Enum,
    Execute,
    Explain,
    False,
    For,
    From,
    Function,
    Grant,
    Group,
    In,
    Index,
    Inherits,
    Intersect,
    Into,
    Is,
    Isnot,
    Minus,
    Not,
    Null,
    Observe,
    Of,
    On,
    Or,
    Order,
    Over,
    Own,
    Procedure,
    Range,
    Ref,
    Rename,
    Replace,
    Retrieve,
    Returns,
    Revoke,
    To,
    True,
    Type,
    Union,
    Unique,
    User,
    Where,
}

impl Kw {
    /// Keyword for an identifier, if reserved.
    pub fn lookup(s: &str) -> Option<Kw> {
        Some(match s {
            "abort" => Kw::Abort,
            "add" => Kw::Add,
            "all" => Kw::All,
            "analyze" => Kw::Analyze,
            "and" => Kw::And,
            "append" => Kw::Append,
            "as" => Kw::As,
            "asc" => Kw::Asc,
            "begin" => Kw::Begin,
            "by" => Kw::By,
            "char" => Kw::Char,
            "commit" => Kw::Commit,
            "contains" => Kw::Contains,
            "create" => Kw::Create,
            "define" => Kw::Define,
            "delete" => Kw::Delete,
            "desc" => Kw::Desc,
            "destroy" => Kw::Destroy,
            "drop" => Kw::Drop,
            "end" => Kw::End,
            "enum" => Kw::Enum,
            "execute" => Kw::Execute,
            "explain" => Kw::Explain,
            "false" => Kw::False,
            "for" => Kw::For,
            "from" => Kw::From,
            "function" => Kw::Function,
            "grant" => Kw::Grant,
            "group" => Kw::Group,
            "in" => Kw::In,
            "index" => Kw::Index,
            "inherits" => Kw::Inherits,
            "intersect" => Kw::Intersect,
            "into" => Kw::Into,
            "is" => Kw::Is,
            "isnot" => Kw::Isnot,
            "minus" => Kw::Minus,
            "not" => Kw::Not,
            "null" => Kw::Null,
            "observe" => Kw::Observe,
            "of" => Kw::Of,
            "on" => Kw::On,
            "or" => Kw::Or,
            "order" => Kw::Order,
            "over" => Kw::Over,
            "own" => Kw::Own,
            "procedure" => Kw::Procedure,
            "range" => Kw::Range,
            "ref" => Kw::Ref,
            "rename" => Kw::Rename,
            "replace" => Kw::Replace,
            "retrieve" => Kw::Retrieve,
            "returns" => Kw::Returns,
            "revoke" => Kw::Revoke,
            "to" => Kw::To,
            "true" => Kw::True,
            "type" => Kw::Type,
            "union" => Kw::Union,
            "unique" => Kw::Unique,
            "user" => Kw::User,
            "where" => Kw::Where,
            _ => return None,
        })
    }

    /// The keyword's source spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Kw::Abort => "abort",
            Kw::Add => "add",
            Kw::All => "all",
            Kw::Analyze => "analyze",
            Kw::And => "and",
            Kw::Append => "append",
            Kw::As => "as",
            Kw::Asc => "asc",
            Kw::Begin => "begin",
            Kw::By => "by",
            Kw::Char => "char",
            Kw::Commit => "commit",
            Kw::Contains => "contains",
            Kw::Create => "create",
            Kw::Define => "define",
            Kw::Delete => "delete",
            Kw::Desc => "desc",
            Kw::Destroy => "destroy",
            Kw::Drop => "drop",
            Kw::End => "end",
            Kw::Enum => "enum",
            Kw::Execute => "execute",
            Kw::Explain => "explain",
            Kw::False => "false",
            Kw::For => "for",
            Kw::From => "from",
            Kw::Function => "function",
            Kw::Grant => "grant",
            Kw::Group => "group",
            Kw::In => "in",
            Kw::Index => "index",
            Kw::Inherits => "inherits",
            Kw::Intersect => "intersect",
            Kw::Into => "into",
            Kw::Is => "is",
            Kw::Isnot => "isnot",
            Kw::Minus => "minus",
            Kw::Not => "not",
            Kw::Null => "null",
            Kw::Observe => "observe",
            Kw::Of => "of",
            Kw::On => "on",
            Kw::Or => "or",
            Kw::Order => "order",
            Kw::Over => "over",
            Kw::Own => "own",
            Kw::Procedure => "procedure",
            Kw::Range => "range",
            Kw::Ref => "ref",
            Kw::Rename => "rename",
            Kw::Replace => "replace",
            Kw::Retrieve => "retrieve",
            Kw::Returns => "returns",
            Kw::Revoke => "revoke",
            Kw::To => "to",
            Kw::True => "true",
            Kw::Type => "type",
            Kw::Union => "union",
            Kw::Unique => "unique",
            Kw::User => "user",
            Kw::Where => "where",
        }
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (type, variable, attribute, function name...).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes processed).
    Str(String),
    /// Reserved keyword.
    Kw(Kw),
    /// Punctuation symbol or operator (longest-match from the operator
    /// table, e.g. `<=`, `&&&`).
    Sym(String),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier '{s}'"),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Float(x) => write!(f, "float {x}"),
            Tok::Str(s) => write!(f, "string \"{s}\""),
            Tok::Kw(k) => write!(f, "keyword '{}'", k.as_str()),
            Tok::Sym(s) => write!(f, "'{s}'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Byte offset in the source.
    pub offset: usize,
}
