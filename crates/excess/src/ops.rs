//! The operator table: built-in EXCESS operators plus runtime
//! registrations from ADTs.
//!
//! The paper requires that new operators ("any legal EXCESS identifier or
//! sequence of punctuation characters") carry a definer-specified
//! precedence and associativity. The lexer asks the table for the set of
//! punctuation symbols to maximal-munch; the Pratt parser asks it for
//! binding powers.

use std::collections::HashMap;

/// Operator associativity (mirrors `extra_model::adt::Assoc`; kept
/// separate so this crate stays independent of value semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpAssoc {
    /// Groups left-to-right.
    Left,
    /// Groups right-to-left.
    Right,
}

/// One operator's parse properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpInfo {
    /// Binding power; higher binds tighter. Built-in levels:
    /// comparisons = 30, set ops = 35, `+ -` = 40, `* / %` = 50.
    pub precedence: u8,
    /// Associativity.
    pub assoc: OpAssoc,
    /// Whether a prefix (unary) form exists.
    pub prefix: bool,
}

/// Built-in and registered operators.
#[derive(Debug, Clone)]
pub struct OperatorTable {
    infix: HashMap<String, OpInfo>,
    /// All punctuation symbols (structural + operators), longest first.
    symbols: Vec<String>,
}

/// Structural (non-operator) punctuation the lexer always recognizes.
const STRUCTURAL: &[&str] = &["(", ")", "{", "}", "[", "]", ",", ";", ".", ":"];

/// Built-in infix operators with QUEL-standard precedences.
const BUILTINS: &[(&str, u8)] = &[
    ("=", 30),
    ("!=", 30),
    ("<>", 30),
    ("<", 30),
    ("<=", 30),
    (">", 30),
    (">=", 30),
    ("+", 40),
    ("-", 40),
    ("*", 50),
    ("/", 50),
    ("%", 50),
];

impl Default for OperatorTable {
    fn default() -> Self {
        Self::new()
    }
}

impl OperatorTable {
    /// A table with only the built-in EXCESS operators.
    pub fn new() -> OperatorTable {
        let mut t = OperatorTable {
            infix: HashMap::new(),
            symbols: Vec::new(),
        };
        for s in STRUCTURAL {
            t.symbols.push((*s).to_string());
        }
        for (sym, prec) in BUILTINS {
            t.infix.insert(
                (*sym).to_string(),
                OpInfo {
                    precedence: *prec,
                    assoc: OpAssoc::Left,
                    prefix: *sym == "-",
                },
            );
            if !t.symbols.iter().any(|s| s == sym) {
                t.symbols.push((*sym).to_string());
            }
        }
        t.sort_symbols();
        t
    }

    fn sort_symbols(&mut self) {
        // Longest-first for maximal munch.
        self.symbols
            .sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
    }

    /// Register an operator (ADT registration). `precedence` is on the
    /// paper's 1–5 scale and is mapped onto the built-in scale (×10), so
    /// e.g. a level-3 user operator binds like a comparison. Re-registering
    /// an existing symbol (overloading `+` for Complex, say) keeps the
    /// original parse properties — overload resolution happens at
    /// evaluation, not parse, time.
    pub fn register(&mut self, symbol: &str, precedence: u8, assoc: OpAssoc, prefix: bool) {
        if self.infix.contains_key(symbol) {
            return; // overloading an existing operator: parse info fixed
        }
        self.infix.insert(
            symbol.to_string(),
            OpInfo {
                precedence: precedence.saturating_mul(10),
                assoc,
                prefix,
            },
        );
        if !self.symbols.iter().any(|s| s == symbol) {
            self.symbols.push(symbol.to_string());
            self.sort_symbols();
        }
    }

    /// Parse properties for an infix symbol.
    pub fn infix(&self, symbol: &str) -> Option<OpInfo> {
        self.infix.get(symbol).copied()
    }

    /// All punctuation symbols, longest first (for the lexer).
    pub fn symbols(&self) -> &[String] {
        &self.symbols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_present() {
        let t = OperatorTable::new();
        assert_eq!(t.infix("<=").unwrap().precedence, 30);
        assert_eq!(t.infix("*").unwrap().precedence, 50);
        assert!(t.infix("-").unwrap().prefix);
        assert!(t.infix("&&&").is_none());
    }

    #[test]
    fn registration_scales_precedence() {
        let mut t = OperatorTable::new();
        t.register("&&&", 3, OpAssoc::Left, false);
        assert_eq!(t.infix("&&&").unwrap().precedence, 30);
        // Overloading + does not change its parse properties.
        t.register("+", 1, OpAssoc::Right, false);
        assert_eq!(t.infix("+").unwrap().precedence, 40);
        assert_eq!(t.infix("+").unwrap().assoc, OpAssoc::Left);
    }

    #[test]
    fn symbols_longest_first() {
        let mut t = OperatorTable::new();
        t.register("&&&", 3, OpAssoc::Left, false);
        t.register("&&", 2, OpAssoc::Left, false);
        let syms = t.symbols();
        let i3 = syms.iter().position(|s| s == "&&&").unwrap();
        let i2 = syms.iter().position(|s| s == "&&").unwrap();
        assert!(i3 < i2, "longer symbol must be matched first");
    }
}
