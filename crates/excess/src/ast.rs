//! Abstract syntax of EXCESS statements and expressions.

/// Ownership qualifier as written in the source (mirrors
/// `extra_model::types::Ownership`; duplicated to keep this crate purely
/// syntactic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// `own` (the default when unwritten).
    #[default]
    Own,
    /// `ref`.
    Ref,
    /// `own ref`.
    OwnRef,
}

/// A syntactic type expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// A name: base type (`int4`), ADT (`Date`), or schema type
    /// (`Person`). Resolved in sema.
    Named(String),
    /// `char(n)`.
    Char(usize),
    /// `enum(a, b, c)`.
    Enum(Vec<String>),
    /// `{ T }`.
    Set(Box<QualTypeExpr>),
    /// `[n] T` (fixed) or `[] T` (variable).
    Array(Option<usize>, Box<QualTypeExpr>),
    /// Anonymous tuple `( a: T, ... )`.
    Tuple(Vec<AttrDecl>),
}

/// A type expression with an ownership qualifier.
#[derive(Debug, Clone, PartialEq)]
pub struct QualTypeExpr {
    /// Ownership mode.
    pub mode: Mode,
    /// The type.
    pub ty: TypeExpr,
}

/// One attribute declaration: `name : [own|ref|own ref] type`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Qualified type.
    pub qty: QualTypeExpr,
}

/// One `inherits` clause with optional renames.
#[derive(Debug, Clone, PartialEq)]
pub struct InheritClause {
    /// Base type name.
    pub base: String,
    /// `rename old to new` pairs.
    pub renames: Vec<(String, String)>,
}

/// A function/procedure parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub qty: QualTypeExpr,
}

/// A retrieve target: `[name =] expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Output column name (defaults to a derived name in sema).
    pub name: Option<String>,
    /// The expression.
    pub expr: Expr,
}

/// A `from V in path` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct FromBinding {
    /// The variable.
    pub var: String,
    /// The path it ranges over.
    pub path: Expr,
}

/// Privileges for `grant` / `revoke` (System R / IDM style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Read (retrieve).
    Read,
    /// Append members / objects.
    Append,
    /// Delete members / objects.
    Delete,
    /// Replace attribute values.
    Replace,
    /// Execute a function or procedure.
    Execute,
    /// Everything.
    All,
}

/// Built-in binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Object identity (the only comparisons applicable to references).
    Is,
    IsNot,
    /// Set membership / containment.
    In,
    Contains,
    /// Set operators.
    Union,
    Intersect,
    SetMinus,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Built-in unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
}

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// An aggregate call: `agg(expr [over V, ...] [by e, ...] [where q])`.
///
/// `over` names the range variables the aggregate consumes (controlling
/// which nesting level it aggregates); `by` partitions; the inner `where`
/// filters the aggregated bindings — the QUEL aggregate forms extended as
/// in the paper (§3.4, rendering SQL-style `unique` clauses unnecessary).
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Function name: count, sum, avg, min, max, unique, or a registered
    /// set function.
    pub func: String,
    /// The aggregated expression (`None` for bare `count(V)`... the
    /// expression still exists — a bare variable — so this is always
    /// `Some` after parsing; kept optional for user-defined 0-ary
    /// set functions).
    pub arg: Option<Box<Expr>>,
    /// Range variables consumed by this aggregate.
    pub over: Vec<String>,
    /// Partitioning expressions.
    pub by: Vec<Expr>,
    /// Inner qualification.
    pub qual: Option<Box<Expr>>,
}

/// An EXCESS expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Lit(Lit),
    /// Bare identifier: range variable or named database object (resolved
    /// in sema).
    Var(String),
    /// Attribute path step: `e.attr` (implicit joins ride on these).
    Path(Box<Expr>, String),
    /// Array indexing: `e[i]` (1-based).
    Index(Box<Expr>, Box<Expr>),
    /// Function call `f(args)`; with `recv`, method syntax `x.f(args)`.
    /// Covers EXCESS functions, ADT functions (both call syntaxes of
    /// §4.1) and ADT literal constructors (`Date("8/29/1988")`).
    Call {
        /// Receiver for method syntax.
        recv: Option<Box<Expr>>,
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Built-in unary operation.
    Unary(UnOp, Box<Expr>),
    /// Built-in binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Registered (ADT) operator application.
    UserOp(String, Vec<Expr>),
    /// Aggregate.
    Agg(Aggregate),
    /// Set literal `{ e1, e2, ... }`.
    SetLit(Vec<Expr>),
    /// Tuple literal `( a = e1, b = e2 )`.
    TupleLit(Vec<(String, Expr)>),
}

impl Expr {
    /// Helper: `Var(name)`.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.into())
    }

    /// Helper: path chain `base.a.b...`.
    pub fn path(base: Expr, steps: &[&str]) -> Expr {
        steps
            .iter()
            .fold(base, |e, s| Expr::Path(Box::new(e), (*s).to_string()))
    }
}

/// The value side of an `append`.
#[derive(Debug, Clone, PartialEq)]
pub enum AppendValue {
    /// `append Employees (name = "x", age = 3)` — attribute assignments.
    Assignments(Vec<(String, Expr)>),
    /// `append Employees E2` / `append TopTen[3] expr` — a whole value.
    Expr(Expr),
}

/// An EXCESS statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `define type Name [inherits ...] ( attrs )`.
    DefineType {
        /// New type name.
        name: String,
        /// Inherits clauses.
        inherits: Vec<InheritClause>,
        /// Attribute declarations.
        attrs: Vec<AttrDecl>,
    },
    /// `create <qual type> <Name> [key (attr)]` — a named persistent
    /// instance. The paper associates key specifications with *set
    /// instances* ("the specification of which will be associated with
    /// set instances"); a key builds a unique index over the member
    /// attribute.
    Create {
        /// The instance's type.
        qty: QualTypeExpr,
        /// Its name.
        name: String,
        /// Key attribute of a set instance, if declared.
        key: Option<String>,
    },
    /// `destroy Name`.
    Destroy {
        /// Named instance to destroy.
        name: String,
    },
    /// `drop type Name`.
    DropType {
        /// The type to drop.
        name: String,
    },
    /// `define function name (params) returns T as retrieve ...`.
    DefineFunction {
        /// Function name.
        name: String,
        /// Parameters (first parameter of a schema type makes the
        /// function invocable with method syntax and inheritable).
        params: Vec<Param>,
        /// Return type.
        returns: QualTypeExpr,
        /// Body (a retrieve).
        body: Box<Stmt>,
    },
    /// `define procedure name (params) as stmt; stmt; ...`.
    DefineProcedure {
        /// Procedure name.
        name: String,
        /// Parameters.
        params: Vec<Param>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `drop function name` / `drop procedure name`.
    DropFunction {
        /// The function's name.
        name: String,
    },
    /// `drop procedure name`.
    DropProcedure {
        /// The procedure's name.
        name: String,
    },
    /// `define [unique] index name on Collection (attr)`.
    DefineIndex {
        /// Index name.
        name: String,
        /// Collection the index covers.
        collection: String,
        /// Attribute path within a member (single attribute).
        attr: String,
        /// Whether the index enforces uniqueness.
        unique: bool,
    },
    /// `range of V is [all] path`.
    RangeOf {
        /// The variable.
        var: String,
        /// Universal quantification (`all`).
        universal: bool,
        /// The path ranged over.
        path: Expr,
    },
    /// `retrieve [into N] (targets) [from ...] [where ...] [order by ...]`.
    Retrieve {
        /// Materialize results into a new named set.
        into: Option<String>,
        /// Target list.
        targets: Vec<Target>,
        /// `from` bindings (query-local ranges).
        from: Vec<FromBinding>,
        /// Qualification.
        qual: Option<Expr>,
        /// Ordering: expression and ascending flag.
        order_by: Option<(Expr, bool)>,
    },
    /// `append [to] path ( assignments | expr ) [where q]`.
    Append {
        /// The set/array being appended to.
        target: Expr,
        /// What to append.
        value: AppendValue,
        /// Qualification (binds range variables used in the target or
        /// value).
        qual: Option<Expr>,
    },
    /// `delete V [where q]`.
    Delete {
        /// Range variable or path naming what to delete.
        target: Expr,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `replace V (attr = e, ...) [where q]`.
    Replace {
        /// Range variable or path naming what to update.
        target: Expr,
        /// Attribute assignments.
        assignments: Vec<(String, Expr)>,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `execute proc(args) [where q]` — invoked for *all* satisfying
    /// bindings (the paper's generalization of IDM stored commands).
    Execute {
        /// Procedure name.
        proc: String,
        /// Arguments (may mention range variables bound by the `where`).
        args: Vec<Expr>,
        /// Binding qualification.
        qual: Option<Expr>,
    },
    /// `grant privs on Name to grantee, ...`.
    Grant {
        /// Privileges granted.
        privileges: Vec<Privilege>,
        /// Protected object (named instance, type, function...).
        object: String,
        /// Users/groups receiving the privileges.
        grantees: Vec<String>,
    },
    /// `revoke privs on Name from grantee, ...`.
    Revoke {
        /// Privileges revoked.
        privileges: Vec<Privilege>,
        /// Protected object.
        object: String,
        /// Users/groups losing the privileges.
        grantees: Vec<String>,
    },
    /// `create user name`.
    CreateUser {
        /// The user name.
        name: String,
    },
    /// `create group name`.
    CreateGroup {
        /// The group name.
        name: String,
    },
    /// `add user U to group G`.
    AddToGroup {
        /// The user.
        user: String,
        /// The group.
        group: String,
    },
    /// `explain [analyze] <statement>` — show the plan for the wrapped
    /// statement; with `analyze`, execute it and report per-operator
    /// metrics.
    Explain {
        /// `explain analyze` (execute and profile) vs plain `explain`.
        analyze: bool,
        /// The statement being explained.
        stmt: Box<Stmt>,
    },
    /// `observe <statement>` — execute the wrapped statement and report
    /// the metric activity it caused (wall-clock time plus counter
    /// deltas).
    Observe {
        /// The statement being observed.
        stmt: Box<Stmt>,
    },
    /// `analyze <Collection>` — scan the collection and record optimizer
    /// statistics (row count, distinct counts, equi-depth histograms,
    /// null fractions) in the catalog.
    Analyze {
        /// The collection to analyze.
        collection: String,
    },
    /// `begin` — open an explicit multi-statement transaction. Reads
    /// inside it see a single snapshot plus the transaction's own
    /// writes; writes become visible to others only at `commit`.
    Begin,
    /// `commit` — durably publish the open transaction's writes.
    Commit,
    /// `abort` — discard the open transaction's writes.
    Abort,
}
