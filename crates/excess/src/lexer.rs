//! The EXCESS lexer.
//!
//! Punctuation is tokenized by maximal munch against the
//! [`OperatorTable`]'s symbol list, so ADT-registered operators like `&&&`
//! lex as single tokens the moment they are registered — the paper's
//! dynamic operator extensibility.

use crate::error::{ParseError, ParseResult};
use crate::ops::OperatorTable;
use crate::token::{Kw, Tok, Token};

/// Tokenize `src` using the operator symbols in `ops`.
pub fn lex(src: &str, ops: &OperatorTable) -> ParseResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: `--` to end of line.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &src[start..i];
            let tok = match Kw::lookup(word) {
                Some(kw) => Tok::Kw(kw),
                None => Tok::Ident(word.to_string()),
            };
            toks.push(Token { tok, offset: start });
            continue;
        }
        // Numbers: integer or float (a dot must be followed by a digit so
        // `TopTen[1].name` lexes the dot as punctuation).
        if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i + 1 < bytes.len() && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            // Exponent.
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &src[start..i];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|e| {
                    ParseError::at(src, start, format!("bad float literal '{text}': {e}"))
                })?)
            } else {
                Tok::Int(text.parse().map_err(|e| {
                    ParseError::at(src, start, format!("bad integer literal '{text}': {e}"))
                })?)
            };
            toks.push(Token { tok, offset: start });
            continue;
        }
        // Strings.
        if c == '"' {
            let mut out = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(ParseError::at(src, start, "unterminated string literal"));
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        match bytes.get(i) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            other => {
                                return Err(ParseError::at(
                                    src,
                                    i,
                                    format!("bad string escape {other:?}"),
                                ))
                            }
                        }
                        i += 1;
                    }
                    b => {
                        // Multi-byte UTF-8 sequences pass through intact.
                        let ch_len = utf8_len(b);
                        out.push_str(&src[i..i + ch_len]);
                        i += ch_len;
                    }
                }
            }
            toks.push(Token {
                tok: Tok::Str(out),
                offset: start,
            });
            continue;
        }
        // Punctuation: maximal munch over the operator table.
        let rest = &src[i..];
        let mut matched = None;
        for sym in ops.symbols() {
            if rest.starts_with(sym.as_str()) {
                matched = Some(sym.clone());
                break; // symbols are longest-first
            }
        }
        match matched {
            Some(sym) => {
                i += sym.len();
                toks.push(Token {
                    tok: Tok::Sym(sym),
                    offset: start,
                });
            }
            None => {
                return Err(ParseError::at(
                    src,
                    i,
                    format!("unexpected character '{c}'"),
                ));
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        offset: src.len(),
    });
    Ok(toks)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        let ops = OperatorTable::new();
        lex(src, &ops).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_vs_identifiers() {
        let t = kinds("retrieve Employees name Range");
        assert_eq!(
            t,
            vec![
                Tok::Kw(Kw::Retrieve),
                Tok::Ident("Employees".into()),
                Tok::Ident("name".into()),
                Tok::Ident("Range".into()), // keywords are lower-case
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_array_paths() {
        // `TopTen[1].name` — the dot after ] is punctuation, not a float.
        let t = kinds("TopTen[1].name 2.5 1e3 7");
        assert_eq!(
            t,
            vec![
                Tok::Ident("TopTen".into()),
                Tok::Sym("[".into()),
                Tok::Int(1),
                Tok::Sym("]".into()),
                Tok::Sym(".".into()),
                Tok::Ident("name".into()),
                Tok::Float(2.5),
                Tok::Float(1000.0),
                Tok::Int(7),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let t = kinds(r#""hello \"world\"\n""#);
        assert_eq!(t[0], Tok::Str("hello \"world\"\n".into()));
    }

    #[test]
    fn comments_skipped() {
        let t = kinds("retrieve -- the works\n(x)");
        assert_eq!(t.len(), 5); // retrieve ( x ) eof
    }

    #[test]
    fn maximal_munch_builtin() {
        let t = kinds("a <= b < c");
        assert!(t.contains(&Tok::Sym("<=".into())));
        assert!(t.contains(&Tok::Sym("<".into())));
    }

    #[test]
    fn registered_operator_lexes_after_registration() {
        let mut ops = OperatorTable::new();
        // Before registration, `&&&` is an error.
        assert!(lex("a &&& b", &ops).is_err());
        ops.register("&&&", 3, crate::ops::OpAssoc::Left, false);
        let t: Vec<Tok> = lex("a &&& b", &ops)
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect();
        assert_eq!(t[1], Tok::Sym("&&&".into()));
    }

    #[test]
    fn error_positions() {
        let ops = OperatorTable::new();
        let err = lex("abc\n  $", &ops).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 3);
    }
}
