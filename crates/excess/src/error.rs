//! Front-end errors with source positions.

use std::fmt;

/// A lexing or parsing error, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the source text.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl ParseError {
    /// Build an error at a byte offset, computing line/column from `src`.
    pub fn at(src: &str, offset: usize, message: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut column = 1;
        for (i, c) in src.char_indices() {
            if i >= offset {
                break;
            }
            if c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        ParseError {
            message: message.into(),
            offset,
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias for front-end results.
pub type ParseResult<T> = Result<T, ParseError>;
