//! Recursive-descent / Pratt parser for EXCESS.
//!
//! Construct a [`Parser`] with an [`OperatorTable`] — the table carries any
//! ADT-registered operators, which parse with their registered precedence
//! and associativity.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::lexer::lex;
use crate::ops::{OpAssoc, OperatorTable};
use crate::token::{Kw, Tok, Token};

/// Binding powers of keyword operators.
const P_OR: u8 = 10;
const P_AND: u8 = 20;
const P_NOT: u8 = 25;
const P_CMP: u8 = 30;
const P_SET: u8 = 35;
const P_NEG: u8 = 55;

/// Names parsed as aggregate functions even without over/by/where clauses.
const AGG_NAMES: &[&str] = &["count", "sum", "avg", "min", "max"];

/// The EXCESS parser.
pub struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
    ops: &'a OperatorTable,
}

/// Parse a single statement.
pub fn parse_statement(src: &str, ops: &OperatorTable) -> ParseResult<Stmt> {
    let mut p = Parser::new(src, ops)?;
    let stmt = p.statement()?;
    p.skip_semis();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a whole program: statements separated by optional `;`.
pub fn parse_program(src: &str, ops: &OperatorTable) -> ParseResult<Vec<Stmt>> {
    let mut p = Parser::new(src, ops)?;
    let mut stmts = Vec::new();
    loop {
        p.skip_semis();
        if p.at_eof() {
            return Ok(stmts);
        }
        stmts.push(p.statement()?);
    }
}

impl<'a> Parser<'a> {
    /// Lex `src` and prepare to parse.
    pub fn new(src: &'a str, ops: &'a OperatorTable) -> ParseResult<Parser<'a>> {
        Ok(Parser {
            src,
            toks: lex(src, ops)?,
            pos: 0,
            ops,
        })
    }

    // -- token plumbing ----------------------------------------------------

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> ParseResult<T> {
        Err(ParseError::at(self.src, self.offset(), msg))
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn expect_eof(&self) -> ParseResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            self.err(format!("expected end of input, found {}", self.peek()))
        }
    }

    fn skip_semis(&mut self) {
        while matches!(self.peek(), Tok::Sym(s) if s == ";") {
            self.bump();
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if matches!(self.peek(), Tok::Kw(k) if *k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> ParseResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected '{}', found {}", kw.as_str(), self.peek()))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(t) if t == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> ParseResult<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            self.err(format!("expected '{s}', found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> ParseResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected an identifier, found {other}")),
        }
    }

    fn integer(&mut self) -> ParseResult<i64> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(i)
            }
            other => self.err(format!("expected an integer, found {other}")),
        }
    }

    // -- statements ----------------------------------------------------------

    /// Parse one statement.
    pub fn statement(&mut self) -> ParseResult<Stmt> {
        match self.peek().clone() {
            Tok::Kw(Kw::Define) => self.define_stmt(),
            Tok::Kw(Kw::Create) => self.create_stmt(),
            Tok::Kw(Kw::Destroy) => {
                self.bump();
                Ok(Stmt::Destroy {
                    name: self.ident()?,
                })
            }
            Tok::Kw(Kw::Drop) => self.drop_stmt(),
            Tok::Kw(Kw::Add) => {
                self.bump();
                self.expect_kw(Kw::User)?;
                let user = self.ident()?;
                self.expect_kw(Kw::To)?;
                self.expect_kw(Kw::Group)?;
                let group = self.ident()?;
                Ok(Stmt::AddToGroup { user, group })
            }
            Tok::Kw(Kw::Range) => self.range_stmt(),
            Tok::Kw(Kw::Retrieve) => self.retrieve_stmt(),
            Tok::Kw(Kw::Append) => self.append_stmt(),
            Tok::Kw(Kw::Delete) => {
                self.bump();
                let target = self.path_expr()?;
                let qual = self.optional_where()?;
                Ok(Stmt::Delete { target, qual })
            }
            Tok::Kw(Kw::Replace) => {
                self.bump();
                let target = self.path_expr()?;
                self.expect_sym("(")?;
                let assignments = self.assignments()?;
                self.expect_sym(")")?;
                let qual = self.optional_where()?;
                Ok(Stmt::Replace {
                    target,
                    assignments,
                    qual,
                })
            }
            Tok::Kw(Kw::Execute) => {
                self.bump();
                let proc = self.ident()?;
                self.expect_sym("(")?;
                let args = self.expr_list(")")?;
                self.expect_sym(")")?;
                let qual = self.optional_where()?;
                Ok(Stmt::Execute { proc, args, qual })
            }
            Tok::Kw(Kw::Grant) => self.grant_revoke(true),
            Tok::Kw(Kw::Revoke) => self.grant_revoke(false),
            Tok::Kw(Kw::Explain) => {
                self.bump();
                let analyze = self.eat_kw(Kw::Analyze);
                if matches!(self.peek(), Tok::Kw(Kw::Explain)) {
                    return self.err("explain cannot be nested");
                }
                if matches!(self.peek(), Tok::Kw(Kw::Observe)) {
                    return self.err("explain cannot wrap observe");
                }
                if let Tok::Kw(k @ (Kw::Begin | Kw::Commit | Kw::Abort)) = self.peek() {
                    return self.err(format!(
                        "explain cannot wrap '{}': transaction control has no plan",
                        k.as_str()
                    ));
                }
                let stmt = Box::new(self.statement()?);
                Ok(Stmt::Explain { analyze, stmt })
            }
            Tok::Kw(Kw::Observe) => {
                self.bump();
                if matches!(self.peek(), Tok::Kw(Kw::Observe)) {
                    return self.err("observe cannot be nested");
                }
                if matches!(self.peek(), Tok::Kw(Kw::Explain)) {
                    return self.err("observe cannot wrap explain");
                }
                if let Tok::Kw(k @ (Kw::Begin | Kw::Commit | Kw::Abort)) = self.peek() {
                    return self.err(format!(
                        "observe cannot wrap '{}': transaction control is not a \
                         metered statement",
                        k.as_str()
                    ));
                }
                let stmt = Box::new(self.statement()?);
                Ok(Stmt::Observe { stmt })
            }
            Tok::Kw(Kw::Analyze) => {
                self.bump();
                let collection = self.ident()?;
                Ok(Stmt::Analyze { collection })
            }
            Tok::Kw(Kw::Begin) => {
                self.bump();
                Ok(Stmt::Begin)
            }
            Tok::Kw(Kw::Commit) => {
                self.bump();
                Ok(Stmt::Commit)
            }
            Tok::Kw(Kw::Abort) => {
                self.bump();
                Ok(Stmt::Abort)
            }
            other => self.err(format!("expected a statement, found {other}")),
        }
    }

    fn define_stmt(&mut self) -> ParseResult<Stmt> {
        self.expect_kw(Kw::Define)?;
        match self.peek().clone() {
            Tok::Kw(Kw::Type) => {
                self.bump();
                let name = self.ident()?;
                let mut inherits = Vec::new();
                if self.eat_kw(Kw::Inherits) {
                    loop {
                        inherits.push(self.inherit_clause()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                }
                self.expect_sym("(")?;
                let attrs = self.attr_decls()?;
                self.expect_sym(")")?;
                Ok(Stmt::DefineType {
                    name,
                    inherits,
                    attrs,
                })
            }
            Tok::Kw(Kw::Function) => {
                self.bump();
                let name = self.ident()?;
                self.expect_sym("(")?;
                let params = self.params()?;
                self.expect_sym(")")?;
                self.expect_kw(Kw::Returns)?;
                let returns = self.qual_type()?;
                self.expect_kw(Kw::As)?;
                let body = self.retrieve_stmt()?;
                Ok(Stmt::DefineFunction {
                    name,
                    params,
                    returns,
                    body: Box::new(body),
                })
            }
            Tok::Kw(Kw::Procedure) => {
                self.bump();
                let name = self.ident()?;
                self.expect_sym("(")?;
                let params = self.params()?;
                self.expect_sym(")")?;
                self.expect_kw(Kw::As)?;
                let mut body = vec![self.statement()?];
                while self.eat_sym(";") {
                    if matches!(self.peek(), Tok::Kw(Kw::End)) {
                        break;
                    }
                    body.push(self.statement()?);
                }
                self.expect_kw(Kw::End)?;
                Ok(Stmt::DefineProcedure { name, params, body })
            }
            Tok::Kw(Kw::Index) | Tok::Kw(Kw::Unique) => {
                let unique = self.eat_kw(Kw::Unique);
                self.expect_kw(Kw::Index)?;
                let name = self.ident()?;
                self.expect_kw(Kw::On)?;
                let collection = self.ident()?;
                self.expect_sym("(")?;
                let attr = self.ident()?;
                self.expect_sym(")")?;
                Ok(Stmt::DefineIndex {
                    name,
                    collection,
                    attr,
                    unique,
                })
            }
            other => self.err(format!(
                "expected 'type', 'function', 'procedure' or 'index' after 'define', found {other}"
            )),
        }
    }

    fn inherit_clause(&mut self) -> ParseResult<InheritClause> {
        let base = self.ident()?;
        let mut renames = Vec::new();
        if self.eat_kw(Kw::Rename) {
            loop {
                let old = self.ident()?;
                self.expect_kw(Kw::To)?;
                let new = self.ident()?;
                renames.push((old, new));
                // `rename a to b rename c to d` or `rename a to b, Base2`:
                // a comma continues the inherits list, so renames chain via
                // the `rename` keyword.
                if !self.eat_kw(Kw::Rename) {
                    break;
                }
            }
        }
        Ok(InheritClause { base, renames })
    }

    fn attr_decls(&mut self) -> ParseResult<Vec<AttrDecl>> {
        let mut attrs = Vec::new();
        if matches!(self.peek(), Tok::Sym(s) if s == ")") {
            return Ok(attrs);
        }
        loop {
            let name = self.ident()?;
            self.expect_sym(":")?;
            let qty = self.qual_type()?;
            attrs.push(AttrDecl { name, qty });
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(attrs)
    }

    fn params(&mut self) -> ParseResult<Vec<Param>> {
        let mut params = Vec::new();
        if matches!(self.peek(), Tok::Sym(s) if s == ")") {
            return Ok(params);
        }
        loop {
            let name = self.ident()?;
            self.expect_sym(":")?;
            let qty = self.qual_type()?;
            params.push(Param { name, qty });
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(params)
    }

    /// Parse `[own [ref] | ref] <type>`.
    fn qual_type(&mut self) -> ParseResult<QualTypeExpr> {
        let mode = if self.eat_kw(Kw::Own) {
            if self.eat_kw(Kw::Ref) {
                Mode::OwnRef
            } else {
                Mode::Own
            }
        } else if self.eat_kw(Kw::Ref) {
            Mode::Ref
        } else {
            Mode::Own
        };
        Ok(QualTypeExpr {
            mode,
            ty: self.type_expr()?,
        })
    }

    fn type_expr(&mut self) -> ParseResult<TypeExpr> {
        match self.peek().clone() {
            Tok::Ident(_) => Ok(TypeExpr::Named(self.ident()?)),
            Tok::Kw(Kw::Char) => {
                self.bump();
                self.expect_sym("(")?;
                let n = self.integer()?;
                self.expect_sym(")")?;
                if n <= 0 {
                    return self.err("char length must be positive");
                }
                Ok(TypeExpr::Char(n as usize))
            }
            Tok::Kw(Kw::Enum) => {
                self.bump();
                self.expect_sym("(")?;
                let mut syms = vec![self.ident()?];
                while self.eat_sym(",") {
                    syms.push(self.ident()?);
                }
                self.expect_sym(")")?;
                Ok(TypeExpr::Enum(syms))
            }
            Tok::Sym(s) if s == "{" => {
                self.bump();
                let elem = self.qual_type()?;
                self.expect_sym("}")?;
                Ok(TypeExpr::Set(Box::new(elem)))
            }
            Tok::Sym(s) if s == "[" => {
                self.bump();
                let len = if matches!(self.peek(), Tok::Int(_)) {
                    let n = self.integer()?;
                    if n <= 0 {
                        return self.err("array length must be positive");
                    }
                    Some(n as usize)
                } else {
                    None
                };
                self.expect_sym("]")?;
                let elem = self.qual_type()?;
                Ok(TypeExpr::Array(len, Box::new(elem)))
            }
            Tok::Sym(s) if s == "(" => {
                self.bump();
                let attrs = self.attr_decls()?;
                self.expect_sym(")")?;
                Ok(TypeExpr::Tuple(attrs))
            }
            other => self.err(format!("expected a type, found {other}")),
        }
    }

    fn create_stmt(&mut self) -> ParseResult<Stmt> {
        self.expect_kw(Kw::Create)?;
        if self.eat_kw(Kw::User) {
            return Ok(Stmt::CreateUser {
                name: self.ident()?,
            });
        }
        if self.eat_kw(Kw::Group) {
            return Ok(Stmt::CreateGroup {
                name: self.ident()?,
            });
        }
        let qty = self.qual_type()?;
        let name = self.ident()?;
        let key = if matches!(self.peek(), Tok::Ident(k) if k == "key") {
            self.bump();
            self.expect_sym("(")?;
            let attr = self.ident()?;
            self.expect_sym(")")?;
            Some(attr)
        } else {
            None
        };
        Ok(Stmt::Create { qty, name, key })
    }

    fn drop_stmt(&mut self) -> ParseResult<Stmt> {
        self.expect_kw(Kw::Drop)?;
        if self.eat_kw(Kw::Type) {
            return Ok(Stmt::DropType {
                name: self.ident()?,
            });
        }
        if self.eat_kw(Kw::Function) {
            return Ok(Stmt::DropFunction {
                name: self.ident()?,
            });
        }
        if self.eat_kw(Kw::Procedure) {
            return Ok(Stmt::DropProcedure {
                name: self.ident()?,
            });
        }
        self.err("expected 'type', 'function' or 'procedure' after 'drop'")
    }

    fn range_stmt(&mut self) -> ParseResult<Stmt> {
        self.expect_kw(Kw::Range)?;
        self.expect_kw(Kw::Of)?;
        let var = self.ident()?;
        self.expect_kw(Kw::Is)?;
        let universal = self.eat_kw(Kw::All);
        let path = self.path_expr()?;
        Ok(Stmt::RangeOf {
            var,
            universal,
            path,
        })
    }

    fn retrieve_stmt(&mut self) -> ParseResult<Stmt> {
        self.expect_kw(Kw::Retrieve)?;
        let into = if self.eat_kw(Kw::Into) {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect_sym("(")?;
        let mut targets = Vec::new();
        loop {
            // `name = expr` names the output column; disambiguate from an
            // expression starting with `ident =` (comparison) by checking
            // what follows: a name is followed by `=` and the overall
            // target ends at `,` or `)` — we accept the naming reading,
            // matching QUEL target-list convention.
            let name = if matches!(self.peek(), Tok::Ident(_))
                && matches!(self.peek2(), Tok::Sym(s) if s == "=")
            {
                let n = self.ident()?;
                self.bump(); // '='
                Some(n)
            } else {
                None
            };
            let expr = self.expr()?;
            targets.push(Target { name, expr });
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        let mut from = Vec::new();
        if self.eat_kw(Kw::From) {
            loop {
                let var = self.ident()?;
                self.expect_kw(Kw::In)?;
                let path = self.path_expr()?;
                from.push(FromBinding { var, path });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let qual = self.optional_where()?;
        let order_by = if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            let e = self.expr()?;
            let asc = if self.eat_kw(Kw::Desc) {
                false
            } else {
                self.eat_kw(Kw::Asc);
                true
            };
            Some((e, asc))
        } else {
            None
        };
        Ok(Stmt::Retrieve {
            into,
            targets,
            from,
            qual,
            order_by,
        })
    }

    fn append_stmt(&mut self) -> ParseResult<Stmt> {
        self.expect_kw(Kw::Append)?;
        self.eat_kw(Kw::To);
        let target = self.path_expr()?;
        // `(a = e, ...)` is an assignments form; anything else is a value
        // expression.
        if matches!(self.peek(), Tok::Sym(s) if s == "(")
            && matches!(self.peek2(), Tok::Ident(_))
            && matches!(&self.toks[(self.pos + 2).min(self.toks.len() - 1)].tok,
                        Tok::Sym(s) if s == "=")
        {
            self.bump(); // '('
            let assignments = self.assignments()?;
            self.expect_sym(")")?;
            let qual = self.optional_where()?;
            Ok(Stmt::Append {
                target,
                value: AppendValue::Assignments(assignments),
                qual,
            })
        } else {
            let value = self.expr()?;
            let qual = self.optional_where()?;
            Ok(Stmt::Append {
                target,
                value: AppendValue::Expr(value),
                qual,
            })
        }
    }

    fn assignments(&mut self) -> ParseResult<Vec<(String, Expr)>> {
        let mut out = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect_sym("=")?;
            let e = self.expr()?;
            out.push((name, e));
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(out)
    }

    fn grant_revoke(&mut self, grant: bool) -> ParseResult<Stmt> {
        self.bump(); // grant/revoke
        let mut privileges = vec![self.privilege()?];
        while self.eat_sym(",") {
            privileges.push(self.privilege()?);
        }
        self.expect_kw(Kw::On)?;
        let object = self.ident()?;
        if grant {
            self.expect_kw(Kw::To)?;
        } else {
            self.expect_kw(Kw::From)?;
        }
        let mut grantees = vec![self.ident()?];
        while self.eat_sym(",") {
            grantees.push(self.ident()?);
        }
        if grant {
            Ok(Stmt::Grant {
                privileges,
                object,
                grantees,
            })
        } else {
            Ok(Stmt::Revoke {
                privileges,
                object,
                grantees,
            })
        }
    }

    fn privilege(&mut self) -> ParseResult<Privilege> {
        let p = match self.peek().clone() {
            Tok::Ident(s) if s == "read" => Privilege::Read,
            Tok::Kw(Kw::Append) => Privilege::Append,
            Tok::Kw(Kw::Delete) => Privilege::Delete,
            Tok::Kw(Kw::Replace) => Privilege::Replace,
            Tok::Kw(Kw::Execute) => Privilege::Execute,
            Tok::Kw(Kw::All) => Privilege::All,
            other => return self.err(format!("expected a privilege, found {other}")),
        };
        self.bump();
        Ok(p)
    }

    fn optional_where(&mut self) -> ParseResult<Option<Expr>> {
        if self.eat_kw(Kw::Where) {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    // -- expressions ---------------------------------------------------------

    /// Parse a path expression: `Name(.attr | [index])*` — the restricted
    /// form used by range statements and update targets.
    pub fn path_expr(&mut self) -> ParseResult<Expr> {
        let mut e = Expr::Var(self.ident()?);
        loop {
            if self.eat_sym(".") {
                e = Expr::Path(Box::new(e), self.ident()?);
            } else if self.eat_sym("[") {
                let idx = self.expr()?;
                self.expect_sym("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                return Ok(e);
            }
        }
    }

    /// Parse a full expression.
    pub fn expr(&mut self) -> ParseResult<Expr> {
        self.expr_bp(0)
    }

    fn keyword_op(&self) -> Option<(BinOp, u8)> {
        match self.peek() {
            Tok::Kw(Kw::Or) => Some((BinOp::Or, P_OR)),
            Tok::Kw(Kw::And) => Some((BinOp::And, P_AND)),
            Tok::Kw(Kw::Is) => Some((BinOp::Is, P_CMP)),
            Tok::Kw(Kw::Isnot) => Some((BinOp::IsNot, P_CMP)),
            Tok::Kw(Kw::In) => Some((BinOp::In, P_CMP)),
            Tok::Kw(Kw::Contains) => Some((BinOp::Contains, P_CMP)),
            Tok::Kw(Kw::Union) => Some((BinOp::Union, P_SET)),
            Tok::Kw(Kw::Intersect) => Some((BinOp::Intersect, P_SET)),
            Tok::Kw(Kw::Minus) => Some((BinOp::SetMinus, P_SET)),
            _ => None,
        }
    }

    fn builtin_sym_op(sym: &str) -> Option<BinOp> {
        Some(match sym {
            "=" => BinOp::Eq,
            "!=" | "<>" => BinOp::Ne,
            "<" => BinOp::Lt,
            "<=" => BinOp::Le,
            ">" => BinOp::Gt,
            ">=" => BinOp::Ge,
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "/" => BinOp::Div,
            "%" => BinOp::Mod,
            _ => return None,
        })
    }

    fn expr_bp(&mut self, min_bp: u8) -> ParseResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            // Keyword operators.
            if let Some((op, prec)) = self.keyword_op() {
                if prec < min_bp {
                    break;
                }
                self.bump();
                let rhs = self.expr_bp(prec + 1)?;
                lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
                continue;
            }
            // Symbol operators (built-in or registered).
            let sym = match self.peek() {
                Tok::Sym(s) => s.clone(),
                _ => break,
            };
            let Some(info) = self.ops.infix(&sym) else {
                break;
            };
            if info.precedence < min_bp {
                break;
            }
            self.bump();
            let next_bp = match info.assoc {
                OpAssoc::Left => info.precedence + 1,
                OpAssoc::Right => info.precedence,
            };
            let rhs = self.expr_bp(next_bp)?;
            lhs = match Self::builtin_sym_op(&sym) {
                Some(op) => Expr::Binary(op, Box::new(lhs), Box::new(rhs)),
                None => Expr::UserOp(sym, vec![lhs, rhs]),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> ParseResult<Expr> {
        if self.eat_kw(Kw::Not) {
            let e = self.expr_bp(P_NOT + 1)?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        if matches!(self.peek(), Tok::Sym(s) if s == "-") {
            self.bump();
            let e = self.expr_bp(P_NEG)?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        // Registered prefix operators.
        if let Tok::Sym(s) = self.peek().clone() {
            if let Some(info) = self.ops.infix(&s) {
                if info.prefix && Self::builtin_sym_op(&s).is_none() {
                    self.bump();
                    let e = self.expr_bp(P_NEG)?;
                    return Ok(Expr::UserOp(s, vec![e]));
                }
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> ParseResult<Expr> {
        let mut e = self.atom()?;
        loop {
            if self.eat_sym(".") {
                let name = self.ident()?;
                if self.eat_sym("(") {
                    // Method syntax: x.f(args).
                    let args = self.expr_list(")")?;
                    self.expect_sym(")")?;
                    e = Expr::Call {
                        recv: Some(Box::new(e)),
                        name,
                        args,
                    };
                } else {
                    e = Expr::Path(Box::new(e), name);
                }
            } else if self.eat_sym("[") {
                let idx = self.expr()?;
                self.expect_sym("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                return Ok(e);
            }
        }
    }

    fn expr_list(&mut self, close: &str) -> ParseResult<Vec<Expr>> {
        let mut out = Vec::new();
        if matches!(self.peek(), Tok::Sym(s) if s == close) {
            return Ok(out);
        }
        loop {
            out.push(self.expr()?);
            if !self.eat_sym(",") {
                return Ok(out);
            }
        }
    }

    fn atom(&mut self) -> ParseResult<Expr> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Lit(Lit::Int(i)))
            }
            Tok::Float(f) => {
                self.bump();
                Ok(Expr::Lit(Lit::Float(f)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Lit::Str(s)))
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                Ok(Expr::Lit(Lit::Bool(true)))
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                Ok(Expr::Lit(Lit::Bool(false)))
            }
            Tok::Kw(Kw::Null) => {
                self.bump();
                Ok(Expr::Lit(Lit::Null))
            }
            Tok::Kw(Kw::Unique) => {
                // `unique(expr over ... )` — a set-returning aggregate.
                self.bump();
                self.expect_sym("(")?;
                let agg = self.aggregate_body("unique".into())?;
                Ok(Expr::Agg(agg))
            }
            Tok::Sym(s) if s == "(" => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Sym(s) if s == "{" => {
                self.bump();
                let items = self.expr_list("}")?;
                self.expect_sym("}")?;
                Ok(Expr::SetLit(items))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_sym("(") {
                    // Aggregate or function call.
                    if AGG_NAMES.contains(&name.as_str()) {
                        let agg = self.aggregate_body(name)?;
                        return Ok(Expr::Agg(agg));
                    }
                    let args = self.expr_list(")")?;
                    // A call can still be an aggregate-form user set
                    // function if over/by/where follow the single arg.
                    if args.len() == 1
                        && matches!(
                            self.peek(),
                            Tok::Kw(Kw::Over) | Tok::Kw(Kw::By) | Tok::Kw(Kw::Where)
                        )
                    {
                        let agg = self.aggregate_tail(name, args.into_iter().next())?;
                        return Ok(Expr::Agg(agg));
                    }
                    self.expect_sym(")")?;
                    Ok(Expr::Call {
                        recv: None,
                        name,
                        args,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    /// Parse `expr [over ...] [by ...] [where ...] )` after `agg(`.
    fn aggregate_body(&mut self, func: String) -> ParseResult<Aggregate> {
        let arg = self.expr()?;
        self.aggregate_tail(func, Some(arg))
    }

    fn aggregate_tail(&mut self, func: String, arg: Option<Expr>) -> ParseResult<Aggregate> {
        let mut over = Vec::new();
        if self.eat_kw(Kw::Over) {
            over.push(self.ident()?);
            while self.eat_sym(",") {
                over.push(self.ident()?);
            }
        }
        let mut by = Vec::new();
        if self.eat_kw(Kw::By) {
            by.push(self.expr()?);
            while self.eat_sym(",") {
                by.push(self.expr()?);
            }
        }
        let qual = if self.eat_kw(Kw::Where) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_sym(")")?;
        Ok(Aggregate {
            func,
            arg: arg.map(Box::new),
            over,
            by,
            qual,
        })
    }
}
