//! Robustness: arbitrary input must never panic the front end — it
//! either parses or returns a positioned error.

use excess_lang::{parse_program, parse_statement, OperatorTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_input_never_panics(src in ".{0,200}") {
        let ops = OperatorTable::new();
        let _ = parse_program(&src, &ops);
    }

    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "retrieve", "range", "of", "is", "from", "where", "define",
            "type", "append", "to", "delete", "replace", "(", ")", "{",
            "}", "[", "]", ",", ";", ".", "=", "<", ">", "+", "-", "*",
            "E", "x", "Employees", "1", "2.5", "\"s\"", "and", "or",
            "not", "over", "by", "in", "union", "all", "null", "key",
        ]),
        0..40,
    )) {
        let src = tokens.join(" ");
        let ops = OperatorTable::new();
        let _ = parse_program(&src, &ops);
    }

    /// Statements that do parse round-trip through the printer.
    #[test]
    fn parsed_statements_round_trip(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "retrieve", "(", ")", "E", ".", "name", ",", "salary",
            "where", "from", "in", "Employees", "=", "1", "+", "2",
            "and", "or", "count", "over", "order", "by", "asc",
        ]),
        1..25,
    )) {
        let src = tokens.join(" ");
        let ops = OperatorTable::new();
        if let Ok(stmt) = parse_statement(&src, &ops) {
            let printed = stmt.to_string();
            let again = parse_statement(&printed, &ops)
                .unwrap_or_else(|e| panic!("printed form must re-parse: {printed:?}: {e}"));
            prop_assert_eq!(stmt, again);
        }
    }
}
